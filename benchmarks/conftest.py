"""Shared machinery for the figure/table benchmarks.

Every benchmark regenerates one table or figure of the paper at laptop
scale (see DESIGN.md for the scaling rationale). Results are printed
(visible with ``pytest -s``) *and* appended to ``benchmarks/results/`` so
``--benchmark-only`` runs leave the paper-style rows on disk.

Conventions mirroring Section VII:

* time limits replace the paper's 1e4 s with seconds-level budgets;
* runaway enumerations are capped at ``EMBEDDING_CAP`` results (the
  existing-works convention of stopping at 1e5, scaled down);
* each configuration averages several sampled patterns.
"""

from __future__ import annotations

import os

import pytest

from repro.bench.tables import format_table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")

#: Default dataset scale for benchmarks (fractions of the stand-in sizes).
SCALE = 0.25
#: Wall-clock budget per (engine, pattern) task.
TIME_LIMIT = 1.5
#: Result cap standing in for the 1e5 cap used by existing works.
EMBEDDING_CAP = 20_000
#: Patterns sampled per configuration (paper: 10).
PATTERNS_PER_CONFIG = 2


@pytest.fixture(scope="session")
def report():
    """Append a titled text block to the per-run results file and stdout."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    path = os.path.join(RESULTS_DIR, "experiments.txt")
    # Start fresh per session.
    with open(path, "w", encoding="utf-8") as handle:
        handle.write("CSCE reproduction benchmark results\n")

    def _report(title: str, rows: list[dict], columns=None) -> None:
        text = f"\n=== {title} ===\n{format_table(rows, columns)}\n"
        print(text)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(text)

    return _report


def record_rows(records):
    """ExperimentRecords -> printable rows."""
    return [r.row() for r in records]
