"""Ablation benches for the design choices DESIGN.md §5 calls out.

Not figures from the paper — these isolate the contribution of each
mechanism so a reader can see *why* the headline numbers hold:

1. SCE on/off — candidate memoization + count factorization;
2. compressed vs standard row index — the Section IV space bound;
3. GCF cluster tie-breaking — data-aware vs data-oblivious ordering;
4. first-vertex pool choice — smallest cluster side vs label scan.
"""

import statistics
import time

from conftest import EMBEDDING_CAP, SCALE, TIME_LIMIT
from repro.ccsr import CCSRStore
from repro.core import CSCE
from repro.core.executor import MatchOptions, execute
from repro.datasets import load_dataset
from repro.graph.sampling import sample_pattern_suite


def test_ablation_sce(benchmark, report):
    """SCE on vs off: same plans, same counts, fewer candidate computations
    and less time with SCE."""
    graph = load_dataset("yeast", scale=1.0)
    engine = CSCE(graph)
    suite = sample_pattern_suite(graph, (8, 12, 16), per_size=3, style="dense", seed=41)
    patterns = [p for size in (8, 12, 16) for p in suite[size]]

    def run():
        rows = []
        for use_sce in (True, False):
            computed = []
            times = []
            counts = []
            for pattern in patterns:
                plan = engine.build_plan(pattern, "edge_induced")
                start = time.perf_counter()
                result = execute(
                    plan,
                    MatchOptions(
                        count_only=True,
                        use_sce=use_sce,
                        time_limit=TIME_LIMIT,
                    ),
                )
                times.append(time.perf_counter() - start)
                computed.append(result.stats.get("computed", 0))
                counts.append(result.count)
            rows.append(
                {
                    "sce": use_sce,
                    "mean_s": round(statistics.fmean(times), 5),
                    "mean_candidate_computations": round(
                        statistics.fmean(computed), 1
                    ),
                    "counts": tuple(counts),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Ablation: SCE on/off (yeast, edge-induced)", [
        {k: v for k, v in row.items() if k != "counts"} for row in rows
    ])
    with_sce, without = rows
    assert with_sce["counts"] == without["counts"]
    assert (
        with_sce["mean_candidate_computations"]
        <= without["mean_candidate_computations"]
    )


def test_ablation_row_compression(benchmark, report):
    """Compressed vs standard row-index storage across label counts."""
    def run():
        rows = []
        for labels in (0, 20, 200, 2000):
            graph = load_dataset("patent", scale=SCALE, num_labels=max(labels, 1))
            if labels == 0:
                graph = graph.relabeled([0] * graph.num_vertices)
            store = CCSRStore(graph)
            rows.append(
                {
                    "labels": labels,
                    "clusters": store.num_clusters,
                    "compressed_rows": store.total_compressed_row_entries(),
                    "standard_rows": store.total_standard_row_entries(),
                    "savings": round(
                        store.total_standard_row_entries()
                        / max(store.total_compressed_row_entries(), 1),
                        1,
                    ),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Ablation: compressed vs standard row index", rows)
    # Run-length compression wins once the store fragments into many
    # clusters; a near-monolithic store (few clusters) is the one regime
    # where the standard layout can be smaller.
    for row in rows:
        assert row["compressed_rows"] <= row["standard_rows"] or row["clusters"] <= 2
    assert rows[-1]["savings"] > rows[0]["savings"]


def test_ablation_planner_tiebreaks(benchmark, report):
    """ri vs ri_cluster vs csce on a label-skewed graph: all correct; the
    cluster tie-break never loses badly."""
    graph = load_dataset("hprd", scale=0.5)
    engine = CSCE(graph)
    suite = sample_pattern_suite(graph, (8, 12), per_size=3, style="dense", seed=42)
    patterns = [p for size in (8, 12) for p in suite[size]]

    def run():
        rows = []
        for planner in ("ri", "ri_cluster", "csce"):
            times = []
            counts = []
            for pattern in patterns:
                plan = engine.build_plan(pattern, "edge_induced", planner=planner)
                result = execute(
                    plan,
                    MatchOptions(
                        count_only=True,
                        max_embeddings=EMBEDDING_CAP,
                        time_limit=TIME_LIMIT,
                    ),
                )
                times.append(
                    TIME_LIMIT if result.timed_out else result.total_seconds
                )
                counts.append(result.count)
            rows.append(
                {
                    "planner": planner,
                    "mean_s": round(statistics.fmean(times), 5),
                    "counts": tuple(counts),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Ablation: planner tie-breaks (hprd)", [
        {k: v for k, v in row.items() if k != "counts"} for row in rows
    ])
    reference = rows[0]["counts"]
    assert all(row["counts"] == reference for row in rows)
    means = {row["planner"]: row["mean_s"] for row in rows}
    assert means["csce"] <= max(means.values())
