"""Table IV: dataset statistics, regenerated from the synthetic stand-ins.

Absolute vertex/edge counts are scaled down (DESIGN.md); the properties the
evaluation actually varies — directedness, label counts, density ordering —
must match the paper.
"""

from conftest import SCALE
from repro.datasets import dataset_table


def test_table4_dataset_statistics(benchmark, report):
    rows = benchmark.pedantic(
        lambda: dataset_table(scale=SCALE), rounds=1, iterations=1
    )
    report(
        f"Table IV: dataset statistics (scale={SCALE})",
        rows,
        [
            "Data Graph",
            "Edge Direction",
            "Vertex Count",
            "Edge Count",
            "Label Count",
            "Average Degree",
            "Max In Degree",
            "Max Out Degree",
            "Paper Label Count",
            "Paper Average Degree",
        ],
    )
    by_name = {row["Data Graph"]: row for row in rows}

    # Directedness column matches the paper exactly.
    directed = {name for name, row in by_name.items() if row["Edge Direction"] == "D"}
    assert directed == {"subcategory", "livejournal"}

    # Unlabeled datasets stay unlabeled.
    for name in ("dip", "roadca", "livejournal"):
        assert by_name[name]["Label Count"] == 0

    # Density ordering: roadca sparsest, orkut densest (paper: 2.8 vs 76.3).
    degrees = {name: row["Average Degree"] for name, row in by_name.items()}
    assert degrees["roadca"] == min(degrees.values())
    assert degrees["orkut"] == max(degrees.values())

    # Heavy-tailed graphs show hub degrees far above the average.
    assert by_name["orkut"]["Max In Degree"] > 3 * degrees["orkut"]
