"""Extension benchmark: continuous (delta) matching vs re-enumeration.

Not a paper figure — this measures the continuous-query extension
(:mod:`repro.core.continuous`) built on incremental CCSR updates and seeded
execution. A standing query reports its result *embeddings*, so the honest
from-scratch baseline re-enumerates them after every update; delta
maintenance instead enumerates only the embeddings each new edge creates.
The claim to verify: deltas are much cheaper per update, and the
incrementally maintained total stays exact.
"""

import random
import time

from conftest import SCALE
from repro.core import CSCE, ContinuousMatcher
from repro.datasets import load_dataset
from repro.graph.patterns import by_name

STREAM_LENGTH = 10


def _insert_stream(graph, length: int, seed: int = 99):
    rng = random.Random(seed)
    existing = {
        (min(e.src, e.dst), max(e.src, e.dst)) for e in graph.edges()
    }
    inserts = []
    while len(inserts) < length:
        a, b = rng.randrange(graph.num_vertices), rng.randrange(graph.num_vertices)
        if a == b or (min(a, b), max(a, b)) in existing:
            continue
        existing.add((min(a, b), max(a, b)))
        inserts.append((a, b))
    return inserts


def test_continuous_vs_reenumeration(benchmark, report):
    base = load_dataset("dip", scale=2 * SCALE)
    pattern = by_name("triangle")
    inserts = _insert_stream(base, STREAM_LENGTH)

    def run():
        # Delta maintenance: only new embeddings are enumerated.
        matcher = ContinuousMatcher(
            CSCE(load_dataset("dip", scale=2 * SCALE)), pattern
        )
        start = time.perf_counter()
        created = 0
        for a, b in inserts:
            created += matcher.insert(a, b).count
        delta_seconds = time.perf_counter() - start
        delta_total = matcher.total

        # Re-enumeration maintenance: full embedding list after each update.
        engine = CSCE(load_dataset("dip", scale=2 * SCALE))
        start = time.perf_counter()
        recount_total = engine.match(pattern).count
        for a, b in inserts:
            engine.store.insert_edge(a, b)
            recount_total = engine.match(pattern).count
        recount_seconds = time.perf_counter() - start
        return {
            "stream_length": len(inserts),
            "created_embeddings": created,
            "delta_seconds": round(delta_seconds, 4),
            "reenum_seconds": round(recount_seconds, 4),
            "delta_total": delta_total,
            "reenum_total": recount_total,
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Extension: continuous matching vs re-enumeration", [stats])

    # Exactness: the incrementally maintained total equals the recount.
    assert stats["delta_total"] == stats["reenum_total"]
    # The point of the extension: deltas beat re-enumerating every update.
    assert stats["delta_seconds"] < stats["reenum_seconds"]
