"""Fig. 6: total time per engine across datasets, variants, pattern sizes.

Each parametrized case regenerates one panel of the figure: the same
sampled patterns run on every applicable engine (Table III governs
applicability), reporting total time with timeouts recorded at the limit.

Scaling: datasets at SCALE, pattern sizes trimmed, embedding caps applied
(DESIGN.md). The shape assertions check the paper's Finding 1 — CSCE is
never the overall loser, and on labeled panels it leads — rather than
absolute numbers.
"""

import pytest

from conftest import EMBEDDING_CAP, PATTERNS_PER_CONFIG, SCALE, TIME_LIMIT, record_rows
from repro.bench.harness import average_by, sweep
from repro.datasets import load_dataset
from repro.graph.sampling import sample_pattern_suite

EDGE_ENGINES_UNLABELED = ["CSCE", "GraphPi", "GuP", "RapidMatch", "VEQ"]
EDGE_ENGINES_LABELED = ["CSCE", "GuP", "RapidMatch", "VEQ"]
VERTEX_ENGINES = ["CSCE", "GuP", "VF3"]
HOMO_ENGINES = ["CSCE", "Graphflow"]

# (panel, dataset, variant, engines, sizes, style)
PANELS = [
    ("a", "dip", "edge_induced", EDGE_ENGINES_UNLABELED, (4, 8), "dense"),
    ("b", "dip", "vertex_induced", VERTEX_ENGINES, (4, 8), "dense"),
    ("c", "roadca", "edge_induced", EDGE_ENGINES_UNLABELED, (4, 8), "induced"),
    ("d", "roadca", "vertex_induced", VERTEX_ENGINES, (4, 8), "induced"),
    ("e", "yeast", "edge_induced", EDGE_ENGINES_LABELED, (8, 12), "dense"),
    ("f", "yeast", "edge_induced", EDGE_ENGINES_LABELED, (8, 12), "sparse"),
    ("g", "hprd", "edge_induced", EDGE_ENGINES_LABELED, (8, 12), "dense"),
    ("h", "human", "edge_induced", EDGE_ENGINES_LABELED, (6, 8), "dense"),
    ("i", "orkut", "edge_induced", EDGE_ENGINES_LABELED, (6, 8), "induced"),
    ("j", "patent", "edge_induced", EDGE_ENGINES_LABELED, (8, 12), "induced"),
    ("k", "human", "vertex_induced", VERTEX_ENGINES, (6, 8), "dense"),
    ("l", "livejournal", "homomorphic", HOMO_ENGINES, (4, 6), "induced"),
    ("m", "subcategory", "homomorphic", HOMO_ENGINES, (4, 6), "induced"),
    ("n", "subcategory", "vertex_induced", VERTEX_ENGINES, (4, 6), "induced"),
]


#: Panels where Finding 1 claims CSCE leads outright (the paper concedes
#: short-running panels and VF3's unlabeled vertex-induced strongholds).
DOMINANT_PANELS = frozenset("acefhijl")


@pytest.mark.parametrize(
    "panel,dataset,variant,engines,sizes,style",
    PANELS,
    ids=[f"fig6{p[0]}-{p[1]}-{p[2]}" for p in PANELS],
)
def test_fig6_panel(benchmark, report, panel, dataset, variant, engines, sizes, style):
    graph = load_dataset(dataset, scale=SCALE)
    suite = sample_pattern_suite(
        graph, sizes, per_size=PATTERNS_PER_CONFIG, style=style, seed=6
    )
    patterns = [p for size in sizes for p in suite[size]]
    for i, p in enumerate(patterns):
        p.name = f"{p.name}#{i}"

    def run():
        return sweep(
            f"fig6{panel}",
            graph,
            patterns,
            engines,
            variant,
            time_limit=TIME_LIMIT,
            max_embeddings=EMBEDDING_CAP,
        )

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        f"Fig. 6({panel}): {dataset} / {variant} / {style} patterns {sizes}",
        record_rows(records),
    )

    # Applicable engines that finish cleanly must agree on counts.
    clean = [r for r in records if not (r.unsupported or r.timed_out or r.truncated)]
    counts_by_task: dict[tuple, set[int]] = {}
    for r in clean:
        counts_by_task.setdefault((r.pattern_name, r.pattern_size), set()).add(
            r.embeddings
        )
    for task, counts in counts_by_task.items():
        assert len(counts) == 1, f"engines disagree on {task}: {counts}"

    # Finding 1 (shape): on the panels where the paper claims dominance
    # (it concedes the easy/short-running cases of panels g and m, and
    # vertex-induced unlabeled graphs are VF3's home turf), CSCE completes
    # at least as many tasks within the limit as any other engine.
    if panel in DOMINANT_PANELS:
        finished = {
            name: sum(
                1
                for r in records
                if r.engine == name and not (r.timed_out or r.unsupported)
            )
            for name in engines
        }
        assert finished["CSCE"] == max(finished.values()), finished

    summary = average_by(records, key=lambda r: (r.engine,))
    if ("CSCE",) in summary and len(summary) > 1:
        csce_time = summary[("CSCE",)]["total_s"]
        worst = max(stats["total_s"] for stats in summary.values())
        assert csce_time <= worst * 1.01
