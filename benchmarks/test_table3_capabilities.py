"""Table III: algorithm capability matrix.

Static in the paper; here regenerated from the baseline classes' metadata
so the table can never drift from what the code actually supports.
"""

from repro.baselines import ALL_BASELINES


CSCE_ROW = {
    "Algorithm": "CSCE",
    "Variant": "E, H, V",
    "Vertex Labels": "Yes",
    "Edge Labels": "Yes",
    "Edge Direction": "U and D",
    "Pattern Size": "Up to 2000",
}


def test_table3_capabilities(benchmark, report):
    def build():
        rows = [cls.capability_row() for cls in ALL_BASELINES]
        rows.append(CSCE_ROW)
        return rows

    rows = benchmark(build)
    report("Table III: algorithms compared", rows)

    by_name = {row["Algorithm"]: row for row in rows}
    # The paper's capability claims, verified against the implementations.
    assert by_name["GraphPi"]["Vertex Labels"] == "No"
    assert by_name["Graphflow"]["Variant"] == "H"
    assert by_name["VF3"]["Variant"] == "V"
    assert by_name["CSCE"]["Variant"] == "E, H, V"
    assert by_name["CSCE"]["Edge Direction"] == "U and D"
