"""Memory footprint measurements (the paper's RAM columns).

Finding 1's second clause: because CSCE keeps candidate sets per pattern
vertex (space O(d * |V_P|)), its peak matching memory stays low. This bench
records peak traced allocations for CSCE and the baselines on a shared
workload and checks that CSCE's execution memory stays within the scaled
budget and does not dwarf the baselines'.
"""

from conftest import EMBEDDING_CAP, SCALE, TIME_LIMIT
from repro.bench.harness import make_engine, run_task
from repro.datasets import load_dataset
from repro.graph.sampling import sample_pattern

ENGINES = ["CSCE", "GuP", "RapidMatch", "VEQ"]


def test_matching_memory(benchmark, report):
    graph = load_dataset("yeast", scale=1.0)
    patterns = [
        sample_pattern(graph, size, rng=size, style="dense") for size in (8, 16)
    ]

    def run():
        rows = []
        for name in ENGINES:
            engine = make_engine(name, graph)
            for pattern in patterns:
                record = run_task(
                    "memory",
                    name,
                    engine,
                    graph.name,
                    pattern,
                    "edge_induced",
                    time_limit=TIME_LIMIT,
                    max_embeddings=EMBEDDING_CAP,
                    track_memory=True,
                )
                rows.append(
                    {
                        "engine": name,
                        "size": pattern.num_vertices,
                        "embeddings": record.embeddings,
                        "peak_mb": record.peak_mb,
                        "status": record.row()["status"],
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Memory: peak matching allocations (yeast)", rows)

    csce_peaks = [row["peak_mb"] for row in rows if row["engine"] == "CSCE"]
    assert csce_peaks and all(peak is not None for peak in csce_peaks)
    # Scaled counterpart of "less than 14 GB in all test cases": the
    # matching stage allocates at most tens of MB at this scale.
    assert max(csce_peaks) < 64.0
    # CSCE's peak is in the same ballpark as the baselines' (not 10x worse).
    other_peaks = [
        row["peak_mb"]
        for row in rows
        if row["engine"] != "CSCE" and row["peak_mb"] is not None
    ]
    if other_peaks:
        assert max(csce_peaks) <= 10 * max(other_peaks)
