"""Memory footprint measurements (the paper's RAM columns).

Finding 1's second clause: because CSCE keeps candidate sets per pattern
vertex (space O(d * |V_P|)), its peak matching memory stays low. This bench
records peak traced allocations for CSCE and the baselines on a shared
workload and checks that CSCE's execution memory stays within the scaled
budget and does not dwarf the baselines'.

The numbers come from the observability layer's tracemalloc profiling
hooks — ``run_task(track_memory=True)`` runs each task under a
:class:`repro.obs.Profiler` and records its ``peak_mb`` — so this figure
benchmark and ``--profile`` run-reports report literally the same quantity
(one definition of "peak memory" across the repo).
"""

from conftest import EMBEDDING_CAP, SCALE, TIME_LIMIT
from repro.bench.harness import make_engine, run_task
from repro.datasets import load_dataset
from repro.graph.sampling import sample_pattern
from repro.obs import Observation

ENGINES = ["CSCE", "GuP", "RapidMatch", "VEQ"]


def test_matching_memory(benchmark, report):
    graph = load_dataset("yeast", scale=1.0)
    patterns = [
        sample_pattern(graph, size, rng=size, style="dense") for size in (8, 16)
    ]

    def run():
        rows = []
        for name in ENGINES:
            engine = make_engine(name, graph)
            for pattern in patterns:
                record = run_task(
                    "memory",
                    name,
                    engine,
                    graph.name,
                    pattern,
                    "edge_induced",
                    time_limit=TIME_LIMIT,
                    max_embeddings=EMBEDDING_CAP,
                    track_memory=True,
                )
                rows.append(
                    {
                        "engine": name,
                        "size": pattern.num_vertices,
                        "embeddings": record.embeddings,
                        "peak_mb": record.peak_mb,
                        "status": record.row()["status"],
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Memory: peak matching allocations (yeast)", rows)

    csce_peaks = [row["peak_mb"] for row in rows if row["engine"] == "CSCE"]
    assert csce_peaks and all(peak is not None for peak in csce_peaks)
    # Scaled counterpart of "less than 14 GB in all test cases": the
    # matching stage allocates at most tens of MB at this scale.
    assert max(csce_peaks) < 64.0
    # CSCE's peak is in the same ballpark as the baselines' (not 10x worse).
    other_peaks = [
        row["peak_mb"]
        for row in rows
        if row["engine"] != "CSCE" and row["peak_mb"] is not None
    ]
    if other_peaks:
        assert max(csce_peaks) <= 10 * max(other_peaks)


def test_harness_and_profile_report_same_quantity(benchmark, report):
    """The figure benchmark's peak and a ``--profile`` run's peak are the
    same tracemalloc measurement — not two ad-hoc definitions."""
    graph = load_dataset("yeast", scale=SCALE)
    pattern = sample_pattern(graph, 8, rng=8, style="dense")
    engine = make_engine("CSCE", graph)

    def run():
        record = run_task(
            "memory",
            "CSCE",
            engine,
            graph.name,
            pattern,
            "edge_induced",
            time_limit=TIME_LIMIT,
            max_embeddings=EMBEDDING_CAP,
            track_memory=True,
        )
        obs = Observation(profile=True)
        result = engine.match(
            pattern,
            "edge_induced",
            count_only=True,
            max_embeddings=EMBEDDING_CAP,
            time_limit=TIME_LIMIT,
            obs=obs,
        )
        obs.finish(result)
        return record.peak_mb, obs.profile.peak_mb

    harness_peak, profile_peak = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "Memory: harness vs --profile peak (same workload)",
        [{"harness_mb": harness_peak, "profile_mb": profile_peak}],
    )
    assert harness_peak is not None and harness_peak > 0
    assert profile_peak > 0
    # Identical code path, identical instrument; allow slack for allocator
    # noise between the two runs.
    ratio = harness_peak / profile_peak
    assert 0.2 < ratio < 5.0
