"""Finding 4's mechanism: equivalence-class structure across datasets.

Finding 4 says VEQ-style equivalence pruning fails on sparse unlabeled
graphs because vertices cannot be grouped into many equivalence classes.
This bench measures syntactic data-vertex equivalence (the BoostISO/VEQ
raw material) on every dataset stand-in and checks the explanation: the
sparse road network and the protein networks offer almost no compression,
so an engine whose pruning depends on it has nothing to work with.
"""

from conftest import SCALE
from repro.analysis import equivalence_statistics
from repro.datasets import DATASET_NAMES, load_dataset


def test_finding4_equivalence_structure(benchmark, report):
    def run():
        rows = []
        for name in DATASET_NAMES:
            graph = load_dataset(name, scale=SCALE)
            stats = equivalence_statistics(graph)
            rows.append(
                {
                    "dataset": name,
                    "vertices": stats.num_vertices,
                    "classes": stats.num_classes,
                    "largest": stats.largest_class,
                    "compression": round(stats.compression, 3),
                    "nontrivial%": round(100 * stats.nontrivial_fraction, 1),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Finding 4: syntactic equivalence across datasets", rows)

    by_name = {row["dataset"]: row for row in rows}
    # The sparse graphs offer (almost) no equivalence compression — the
    # structural reason VEQ's pruning has nothing to grip (Finding 4).
    for sparse in ("dip", "roadca", "yeast", "hprd"):
        assert by_name[sparse]["compression"] < 1.25, sparse
    # No dataset at this scale is dominated by equivalence classes.
    assert all(row["nontrivial%"] < 50 for row in rows)
