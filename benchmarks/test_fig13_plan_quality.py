"""Fig. 13: query-plan quality across planner configurations.

The same engine executes plans from four planners (Finding 13):

* ``rm``         — RapidMatch's backward-connectivity ordering,
* ``ri``         — RI's three rules, no data-graph knowledge,
* ``ri_cluster`` — RI + CCSR cluster-size tie-breaking,
* ``csce``       — RI + clusters + LDSF fine-tuning,
* ``cost``       — Graphflow-style cardinality estimation (extension).

Execution is identical in all runs, so time differences are plan quality.
"""

import statistics

from conftest import EMBEDDING_CAP, SCALE, TIME_LIMIT
from repro.core import CSCE
from repro.core.executor import MatchOptions, execute
from repro.datasets import load_dataset
from repro.graph.sampling import sample_pattern_suite

PLANNERS = ("rm", "ri", "ri_cluster", "csce", "cost")
SIZES = (12, 16, 20)


def test_fig13_plan_quality(benchmark, report):
    graph = load_dataset("patent", scale=SCALE)
    engine = CSCE(graph)
    suite = sample_pattern_suite(graph, SIZES, per_size=3, style="sparse", seed=13)
    patterns = [p for size in SIZES for p in suite[size]]

    def run():
        rows = []
        per_planner: dict[str, list[float]] = {p: [] for p in PLANNERS}
        counts: dict[int, set[int]] = {}
        for planner in PLANNERS:
            for idx, pattern in enumerate(patterns):
                plan = engine.build_plan(pattern, "edge_induced", planner=planner)
                result = execute(
                    plan,
                    MatchOptions(
                        count_only=True,
                        max_embeddings=EMBEDDING_CAP,
                        time_limit=TIME_LIMIT,
                    ),
                )
                total = TIME_LIMIT if result.timed_out else result.total_seconds
                per_planner[planner].append(total)
                if not result.timed_out and not result.truncated:
                    counts.setdefault(idx, set()).add(result.count)
                rows.append(
                    {
                        "planner": planner,
                        "pattern": f"{pattern.name}#{idx}",
                        "total_s": round(total, 4),
                        "embeddings": result.count,
                        "timed_out": result.timed_out,
                    }
                )
        summary = [
            {
                "planner": planner,
                "mean_total_s": round(statistics.fmean(times), 4),
                "timeouts": sum(1 for t in times if t >= TIME_LIMIT),
            }
            for planner, times in per_planner.items()
        ]
        return rows, summary, counts

    rows, summary, counts = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Fig. 13: plan quality (per task)", rows)
    report("Fig. 13: plan quality (averages)", summary)

    # All planners find the same embeddings.
    for idx, values in counts.items():
        assert len(values) == 1, f"pattern {idx}: {values}"

    means = {row["planner"]: row["mean_total_s"] for row in summary}
    # Finding 13's shape: data-aware tie-breaking improves RI, and the full
    # CSCE plan is competitive with the best configuration.
    assert means["ri_cluster"] <= means["ri"] * 1.1, means
    assert means["csce"] <= means["ri"] * 1.1, means
    best = min(means.values())
    assert means["csce"] <= best * 2.5, means
