"""Fig. 7: edge-induced vs vertex-induced on the road graph.

Three panels over pattern size: (a) number of embeddings, (b) total time,
(c) throughput. Finding 6's shape: the edge-induced variant can have *far
more* embeddings (so it is not automatically faster), while its throughput
is higher because it skips the negation filtering.
"""

from conftest import EMBEDDING_CAP, SCALE, TIME_LIMIT, record_rows
from repro.bench.harness import average_by, sweep
from repro.datasets import load_dataset
from repro.graph.sampling import sample_pattern_suite

SIZES = (4, 6, 8, 12)


def test_fig7_edge_vs_vertex_induced(benchmark, report):
    graph = load_dataset("roadca", scale=SCALE)
    suite = sample_pattern_suite(graph, SIZES, per_size=2, style="induced", seed=7)
    patterns = [p for size in SIZES for p in suite[size]]
    for i, p in enumerate(patterns):
        p.name = f"{p.name}#{i}"

    def run():
        records = {}
        for variant in ("edge_induced", "vertex_induced"):
            records[variant] = sweep(
                "fig7",
                graph,
                patterns,
                ["CSCE"],
                variant,
                time_limit=TIME_LIMIT,
                max_embeddings=EMBEDDING_CAP,
            )
        return records

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = record_rows(records["edge_induced"]) + record_rows(
        records["vertex_induced"]
    )
    report(f"Fig. 7: E vs V on roadca, sizes {SIZES}", rows)

    edge = average_by(
        records["edge_induced"], key=lambda r: (r.pattern_size,)
    )
    vertex = average_by(
        records["vertex_induced"], key=lambda r: (r.pattern_size,)
    )

    # (a) Vertex-induced never has more embeddings than edge-induced.
    for size in SIZES:
        if (size,) in edge and (size,) in vertex:
            assert vertex[(size,)]["embeddings"] <= edge[(size,)]["embeddings"]

    # (c) Edge-induced throughput is higher (skips negation filtering) for
    # most sizes.
    wins = sum(
        1
        for size in SIZES
        if (size,) in edge
        and (size,) in vertex
        and edge[(size,)]["throughput"] >= vertex[(size,)]["throughput"]
    )
    assert wins >= len(SIZES) - 1
