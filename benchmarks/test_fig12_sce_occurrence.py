"""Fig. 12: how often Sequential Candidate Equivalence occurs.

Measured as the share of pattern vertices independent of at least one other
vertex under the dependency DAG, with "cluster" sub-bars for the share of
independence supplied label-wise (Definition 1's injectivity-free case).

Finding 12's shape: roughly half of the vertices show SCE in the
edge-induced variant, homomorphism shows at least as much (no injectivity
clause at all), and the vertex-induced variant shows far less because the
negation edges of Algorithm 2 densify the DAG.
"""

import statistics

from conftest import SCALE, record_rows
from repro.core import CSCE, Variant, build_dag, sce_statistics
from repro.core.gcf import gcf_order
from repro.datasets import load_dataset
from repro.graph.sampling import sample_pattern_suite

SIZES = (8, 16, 32, 64)


def test_fig12_sce_occurrence(benchmark, report):
    graph = load_dataset("patent", scale=SCALE)
    engine = CSCE(graph)
    suite = sample_pattern_suite(graph, SIZES, per_size=3, style="induced", seed=12)

    def run():
        rows = []
        averages: dict[tuple, list] = {}
        for variant in (
            Variant.EDGE_INDUCED,
            Variant.HOMOMORPHIC,
            Variant.VERTEX_INDUCED,
        ):
            for size in SIZES:
                occurrences = []
                cluster_ratios = []
                for pattern in suite[size]:
                    task = engine.store.read(pattern, variant)
                    order = gcf_order(pattern, task)
                    # Fig. 12 uses the paper-faithful Algorithm 2.
                    dag = build_dag(
                        pattern, order, variant, task, paper_faithful=True
                    )
                    stats = sce_statistics(pattern, dag)
                    occurrences.append(stats.occurrence)
                    cluster_ratios.append(stats.cluster_ratio)
                rows.append(
                    {
                        "variant": str(variant),
                        "size": size,
                        "sce_occurrence": round(statistics.fmean(occurrences), 3),
                        "cluster_ratio": round(statistics.fmean(cluster_ratios), 3),
                    }
                )
                averages[(str(variant), size)] = occurrences
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Fig. 12: SCE occurrence by variant and pattern size", rows)

    by_key = {(row["variant"], row["size"]): row for row in rows}

    for size in SIZES:
        edge = by_key[("edge_induced", size)]
        homo = by_key[("homomorphic", size)]
        vertex = by_key[("vertex_induced", size)]
        # Homomorphism has no injectivity clause: at least as much SCE.
        assert homo["sce_occurrence"] >= edge["sce_occurrence"]
        # Negation edges densify the vertex-induced DAG: far less SCE.
        assert vertex["sce_occurrence"] <= edge["sce_occurrence"]

    # Finding 12 headline: around half the vertices show SCE for the
    # edge-induced variant on large patterns (paper: 51% on Patent).
    large_edge = by_key[("edge_induced", SIZES[-1])]["sce_occurrence"]
    assert large_edge > 0.3
