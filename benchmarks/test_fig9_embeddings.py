"""Fig. 9: scalability by the number of embeddings (DIP, sizes 8 and 9).

Per size, several sampled patterns are ordered by their embedding count;
total time must broadly increase with the count (Finding 9), with GraphPi
as the exception — its symmetry-breaking optimization cost dominates and is
independent of the embedding count.
"""

import pytest

from conftest import EMBEDDING_CAP, SCALE, TIME_LIMIT, record_rows
from repro.bench.harness import sweep
from repro.datasets import load_dataset
from repro.graph.sampling import sample_pattern_suite

ENGINES = ["CSCE", "GuP", "RapidMatch"]


@pytest.mark.parametrize("size", [8, 9])
def test_fig9_time_tracks_embeddings(benchmark, report, size):
    graph = load_dataset("dip", scale=SCALE)
    suite = sample_pattern_suite(graph, (size,), per_size=4, style="dense", seed=9)
    patterns = suite[size]
    for i, p in enumerate(patterns):
        p.name = f"{p.name}#{i}"

    def run():
        return sweep(
            f"fig9-{size}",
            graph,
            patterns,
            ENGINES,
            "edge_induced",
            time_limit=TIME_LIMIT,
            max_embeddings=EMBEDDING_CAP,
        )

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    ordered = sorted(
        (r for r in records if r.engine == "CSCE"), key=lambda r: r.embeddings
    )
    report(
        f"Fig. 9({'a' if size == 8 else 'b'}): DIP size-{size} patterns by"
        " #embeddings",
        record_rows(sorted(records, key=lambda r: (r.engine, r.embeddings))),
    )

    # Finding 9 shape: across CSCE's completed runs, time correlates with
    # the embedding count (compare cheapest vs most expensive pattern).
    finished = [r for r in ordered if not r.timed_out]
    if len(finished) >= 2:
        cheapest, priciest = finished[0], finished[-1]
        if priciest.embeddings > 4 * max(cheapest.embeddings, 1):
            assert priciest.total_seconds >= cheapest.total_seconds


def test_fig9_graphpi_optimization_dominates(benchmark, report):
    """GraphPi's exception: its automorphism-based optimization time grows
    with pattern size, independent of the embedding count."""
    graph = load_dataset("dip", scale=SCALE)
    from repro.bench.harness import make_engine
    from repro.graph.sampling import sample_pattern

    engine = make_engine("GraphPi", graph)

    def run():
        rows = []
        for size in (4, 6, 8):
            pattern = sample_pattern(graph, size, rng=size, style="dense")
            result = engine.match(
                pattern,
                "edge_induced",
                max_embeddings=None,
                time_limit=TIME_LIMIT,
            )
            rows.append(
                {
                    "size": size,
                    "symmetry_seconds": round(
                        result.stats.get("symmetry_seconds", 0.0), 5
                    ),
                    "automorphisms": result.stats.get("automorphisms", 0),
                    "timed_out": result.timed_out,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Fig. 9: GraphPi optimization cost by pattern size", rows)
    # Optimization cost grows with size (Finding 2 feeding Finding 9).
    assert rows[-1]["symmetry_seconds"] >= rows[0]["symmetry_seconds"]
