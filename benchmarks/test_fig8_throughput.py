"""Fig. 8: edge-induced throughput on the road graph by pattern size.

Finding 8's shape: throughput (embeddings per second of execution) broadly
decreases as patterns grow, and CSCE's throughput leads the baselines on
large patterns.
"""

from conftest import EMBEDDING_CAP, SCALE, TIME_LIMIT, record_rows
from repro.bench.harness import average_by, sweep
from repro.datasets import load_dataset
from repro.graph.sampling import sample_pattern_suite

SIZES = (4, 8, 12, 16)
ENGINES = ["CSCE", "GuP", "RapidMatch", "VEQ"]


def test_fig8_throughput_by_size(benchmark, report):
    graph = load_dataset("roadca", scale=SCALE)
    suite = sample_pattern_suite(graph, SIZES, per_size=2, style="sparse", seed=8)
    patterns = [p for size in SIZES for p in suite[size]]
    for i, p in enumerate(patterns):
        p.name = f"{p.name}#{i}"

    def run():
        return sweep(
            "fig8",
            graph,
            patterns,
            ENGINES,
            "edge_induced",
            time_limit=TIME_LIMIT,
            max_embeddings=EMBEDDING_CAP,
        )

    records = benchmark.pedantic(run, rounds=1, iterations=1)
    report(f"Fig. 8: edge-induced throughput on roadca, sizes {SIZES}", record_rows(records))

    summary = average_by(records, key=lambda r: (r.engine, r.pattern_size))

    # Throughput trend: for each engine, the largest size is slower than
    # the smallest (strict monotonicity is not claimed — Finding 8 says the
    # trend "is not strict").
    for engine in ENGINES:
        small = summary.get((engine, SIZES[0]))
        large = summary.get((engine, SIZES[-1]))
        if small and large and small["throughput"] > 0 and large["throughput"] > 0:
            assert large["throughput"] <= small["throughput"] * 1.5, engine

    # CSCE leads on the largest size among engines that produced results.
    largest = {
        engine: summary[(engine, SIZES[-1])]["throughput"]
        for engine in ENGINES
        if (engine, SIZES[-1]) in summary
    }
    if "CSCE" in largest and len(largest) > 1:
        others = [v for k, v in largest.items() if k != "CSCE"]
        assert largest["CSCE"] >= max(others) * 0.5
