"""Section VII-G case study: higher-order clustering on the email graph.

The paper: edge-based clustering of EMAIL-EU reaches F1 = 0.398; 8-clique
higher-order clustering reaches 0.515; and CSCE finds the 8-clique
instances ~30x faster than the compared approach (11.57 s -> 0.39 s).

Here: the planted-partition stand-in, edge vs 8-clique clustering, and the
clique-finding race between CSCE and the RI-backtracking baseline (both
using the same symmetry restrictions, so the work compared is identical).
"""

import time

from conftest import record_rows
from repro.analysis import (
    clique_restrictions,
    complete_pattern,
    edge_clustering,
    motif_clustering,
    pairwise_f1,
)
from repro.baselines import BacktrackingMatcher
from repro.core import CSCE
from repro.datasets import email_eu

CLIQUE_SIZE = 8


def test_case_study_clustering_f1(benchmark, report):
    graph, truth = email_eu()

    def run():
        edge_labels = edge_clustering(graph)
        motif = motif_clustering(graph, k=CLIQUE_SIZE)
        return {
            "edge_f1": round(pairwise_f1(edge_labels, truth), 3),
            "motif_f1": round(pairwise_f1(motif.labels, truth), 3),
            "num_cliques": motif.num_motifs,
            "motif_seconds": round(motif.seconds, 3),
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "Case study (Sec. VII-G): email clustering",
        [
            {"method": "edge-based", "F1": stats["edge_f1"], "paper F1": 0.398},
            {
                "method": f"{CLIQUE_SIZE}-clique higher-order",
                "F1": stats["motif_f1"],
                "paper F1": 0.515,
            },
        ],
    )
    # The paper's headline shape: higher-order clustering clearly wins.
    assert stats["motif_f1"] > stats["edge_f1"] + 0.1
    assert stats["num_cliques"] > 0


def test_case_study_clique_finding_speed(benchmark, report):
    graph, _ = email_eu()
    pattern = complete_pattern(CLIQUE_SIZE)
    restrictions = clique_restrictions(CLIQUE_SIZE)
    engine = CSCE(graph)
    baseline = BacktrackingMatcher(graph)

    def run():
        start = time.perf_counter()
        ours = engine.match(
            pattern, "edge_induced", count_only=True, restrictions=restrictions
        )
        ours_seconds = time.perf_counter() - start
        start = time.perf_counter()
        theirs = baseline.match(
            pattern, "edge_induced", count_only=True, restrictions=restrictions
        )
        theirs_seconds = time.perf_counter() - start
        return ours, ours_seconds, theirs, theirs_seconds

    ours, ours_seconds, theirs, theirs_seconds = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    report(
        "Case study: 8-clique instance finding",
        [
            {
                "engine": "CSCE",
                "cliques": ours.count,
                "seconds": round(ours_seconds, 4),
            },
            {
                "engine": "RI-Backtracking",
                "cliques": theirs.count,
                "seconds": round(theirs_seconds, 4),
            },
        ],
    )
    assert ours.count == theirs.count
    # The paper reports a large speedup (11.57 s -> 0.39 s); at our scale
    # we assert CSCE is at least not slower.
    assert ours_seconds <= theirs_seconds * 1.2
