"""Fig. 11: CCSR read/decompression overhead by label count and pattern size.

The Patent graph is relabeled with 20 / 200 / 2000 labels; ReadCSR
(Algorithm 1) only touches the clusters a pattern uses, so read time and
bytes grow with pattern size and shrink as labels fragment the clusters.
Finding 11: the overhead stays bounded.
"""

from conftest import SCALE, record_rows
from repro.ccsr import CCSRStore
from repro.datasets import load_dataset
from repro.graph.sampling import sample_pattern

LABEL_COUNTS = (20, 200, 2000)
PATTERN_SIZES = (3, 4, 8, 16, 32, 64)


def test_fig11_read_overhead(benchmark, report):
    stores = {
        labels: CCSRStore(load_dataset("patent", scale=SCALE, num_labels=labels))
        for labels in LABEL_COUNTS
    }

    def run():
        rows = []
        for labels, store in stores.items():
            graph = store.to_graph()
            for size in PATTERN_SIZES:
                pattern = sample_pattern(graph, size, rng=size, style="induced")
                task = store.read(pattern, "edge_induced")
                rows.append(
                    {
                        "labels": labels,
                        "size": size,
                        "clusters_total": store.num_clusters,
                        "clusters_read": task.num_clusters,
                        "read_ms": round(task.read_seconds * 1000, 3),
                        "bytes_read": task.bytes_read,
                    }
                )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Fig. 11: CCSR read overhead by labels x pattern size", rows)

    # More labels -> more clusters in the store (finer index).
    totals = {row["labels"]: row["clusters_total"] for row in rows}
    assert totals[20] < totals[200] < totals[2000]

    # Reading only touches the task's clusters, never the whole store.
    for row in rows:
        assert row["clusters_read"] <= row["clusters_total"]
        assert row["clusters_read"] <= 2 * row["size"] ** 2

    # Finding 11: the overhead is bounded — milliseconds at this scale.
    assert max(row["read_ms"] for row in rows) < 1000

    # Larger patterns read at least as many clusters (within one label
    # configuration, averaged over the sweep's monotone span).
    for labels in LABEL_COUNTS:
        series = [row for row in rows if row["labels"] == labels]
        assert series[-1]["clusters_read"] >= series[0]["clusters_read"]


def test_fig11_store_compression(benchmark, report):
    """The compressed row index beats the standard CSR layout on
    fragmented (many-label) stores — the Section IV space bound."""
    store = CCSRStore(load_dataset("patent", scale=SCALE, num_labels=2000))

    def run():
        return {
            "clusters": store.num_clusters,
            "column_entries": store.total_column_entries(),
            "compressed_rows": store.total_compressed_row_entries(),
            "standard_rows": store.total_standard_row_entries(),
        }

    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Fig. 11: compressed vs standard row index", [stats])
    assert stats["column_entries"] == 2 * store.num_edges
    assert stats["compressed_rows"] <= 4 * store.num_edges
    assert stats["compressed_rows"] < stats["standard_rows"]
