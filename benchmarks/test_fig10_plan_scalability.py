"""Fig. 10: plan-generation scalability with very large patterns.

The paper optimizes plans for patterns up to 2000 vertices on the Patent
graph relabeled with 2000 labels, within 500 s / 40 GB, with homomorphic
plans cheapest (Finding 10; homomorphism needs no negation machinery).

Scaled: patterns up to 256 vertices (pure-Python planning is ~100x slower),
measuring plan time and peak memory via tracemalloc. Only planning runs —
execution is deliberately skipped, exactly as in the paper's figure.
"""

import time
import tracemalloc

import pytest

from conftest import SCALE, record_rows
from repro.core.csce import CSCE
from repro.datasets import load_dataset
from repro.graph.sampling import sample_pattern

SIZES = (8, 16, 32, 64, 128, 256)


@pytest.fixture(scope="module")
def patent_engine():
    graph = load_dataset("patent", scale=SCALE, num_labels=2000)
    return CSCE(graph), graph


@pytest.mark.parametrize("variant", ["edge_induced", "homomorphic", "vertex_induced"])
def test_fig10_plan_generation(benchmark, report, patent_engine, variant):
    engine, graph = patent_engine

    def run():
        rows = []
        for size in SIZES:
            pattern = sample_pattern(graph, size, rng=size, style="induced")
            tracemalloc.start()
            start = time.perf_counter()
            plan = engine.build_plan(pattern, variant)
            seconds = time.perf_counter() - start
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            rows.append(
                {
                    "variant": variant,
                    "size": size,
                    "plan_s": round(seconds, 4),
                    "peak_mb": round(peak / 2**20, 2),
                    "dag_edges": plan.dag.num_edges,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report(f"Fig. 10: plan generation, {variant}", rows)

    # Planning completes for every size within a scaled budget.
    assert all(row["plan_s"] < 60 for row in rows)
    # Cost grows with pattern size.
    assert rows[-1]["plan_s"] >= rows[0]["plan_s"]


def test_fig10_homomorphic_cheapest(benchmark, report, patent_engine):
    """Finding 10: homomorphic plans are the cheapest to generate (no
    injectivity, no negation clusters)."""
    engine, graph = patent_engine
    size = SIZES[-1]
    pattern = sample_pattern(graph, size, rng=size, style="induced")

    def run():
        times = {}
        for variant in ("homomorphic", "vertex_induced"):
            start = time.perf_counter()
            engine.build_plan(pattern, variant)
            times[variant] = time.perf_counter() - start
        return times

    times = benchmark.pedantic(run, rounds=1, iterations=1)
    report(
        "Fig. 10: homomorphic vs vertex-induced plan time",
        [{"variant": k, "plan_s": round(v, 4)} for k, v in times.items()],
    )
    assert times["homomorphic"] <= times["vertex_induced"]
