"""Fig. 14: less effective scenarios on DIP.

(a) Symmetry breaking: its benefit is marginal on small patterns and its
    optimization cost explodes with pattern size (Finding 2) — the reason
    CSCE does not apply it.
(b) Pattern density: throughput drops on denser patterns for every engine,
    but CSCE stays ahead (Section VII-H).
"""

from conftest import EMBEDDING_CAP, SCALE, TIME_LIMIT, record_rows
from repro.bench.harness import average_by, make_engine, sweep
from repro.datasets import load_dataset
from repro.graph.sampling import sample_pattern, sample_pattern_suite


def test_fig14a_symmetry_breaking_cost(benchmark, report):
    graph = load_dataset("dip", scale=SCALE)
    engine = make_engine("GraphPi", graph)
    sizes = (3, 4, 5, 8, 9)

    def run():
        rows = []
        for size in sizes:
            pattern = sample_pattern(graph, size, rng=size, style="dense")
            result = engine.match(
                pattern,
                "edge_induced",
                max_embeddings=None,
                time_limit=TIME_LIMIT,
            )
            rows.append(
                {
                    "size": size,
                    "symmetry_seconds": round(
                        result.stats.get("symmetry_seconds", 0.0), 5
                    ),
                    "automorphisms": result.stats.get("automorphisms", 0),
                    "restrictions": result.stats.get("restrictions", 0),
                    "total_s": round(
                        TIME_LIMIT if result.timed_out else result.total_seconds, 4
                    ),
                    "timed_out": result.timed_out,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Fig. 14(a): symmetry-breaking optimization cost on DIP", rows)

    # Finding 2 shape: the optimization cost does not shrink with size and
    # small patterns pay almost nothing.
    assert rows[0]["symmetry_seconds"] <= rows[-1]["symmetry_seconds"] + 1e-3
    assert rows[0]["symmetry_seconds"] < 0.5


def test_fig14b_density(benchmark, report):
    graph = load_dataset("dip", scale=SCALE)
    sizes = (8, 12)

    def run():
        results = {}
        for style in ("sparse", "dense"):
            suite = sample_pattern_suite(
                graph, sizes, per_size=2, style=style, seed=14
            )
            patterns = [p for size in sizes for p in suite[size]]
            for i, p in enumerate(patterns):
                p.name = f"{style}-{p.num_vertices}#{i}"
            results[style] = sweep(
                "fig14b",
                graph,
                patterns,
                ["CSCE", "GuP", "VEQ"],
                "edge_induced",
                time_limit=TIME_LIMIT,
                max_embeddings=EMBEDDING_CAP,
            )
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = record_rows(results["sparse"]) + record_rows(results["dense"])
    report("Fig. 14(b): throughput by pattern density on DIP", rows)

    sparse = average_by(results["sparse"], key=lambda r: (r.engine,))
    dense = average_by(results["dense"], key=lambda r: (r.engine,))
    # Throughput drops on denser patterns for CSCE (the acknowledged
    # less-effective scenario) ...
    if ("CSCE",) in sparse and ("CSCE",) in dense:
        # 1.5x slack absorbs run-to-run jitter in wall-clock throughput.
        assert (
            dense[("CSCE",)]["throughput"]
            <= sparse[("CSCE",)]["throughput"] * 1.5
        )
    # ... but CSCE still completes at least as many dense tasks as the
    # baselines (Section VII-H: "our work still outperforms existing
    # approaches by throughput").
    finished = {
        name: sum(1 for r in results["dense"] if r.engine == name and not r.timed_out)
        for name in ("CSCE", "GuP", "VEQ")
    }
    assert finished["CSCE"] == max(finished.values())
