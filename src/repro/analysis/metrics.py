"""Clustering quality metrics.

The case study scores clusterings with the pairwise F1 measure used by the
local higher-order clustering literature (Yin et al., KDD 2017): precision
and recall over vertex *pairs* placed in the same cluster.
"""

from __future__ import annotations

from collections import Counter
from typing import Hashable, Sequence


def _same_cluster_pairs(labels: Sequence[Hashable]) -> int:
    """Number of unordered vertex pairs sharing a cluster label."""
    return sum(count * (count - 1) // 2 for count in Counter(labels).values())


def pairwise_f1(
    predicted: Sequence[Hashable], truth: Sequence[Hashable]
) -> float:
    """Pairwise F1 between a predicted clustering and the ground truth.

    Both arguments assign a cluster id per vertex (parallel sequences).
    F1 = 2PR / (P + R) where precision/recall count vertex pairs co-clustered
    in both assignments versus in each one alone.
    """
    if len(predicted) != len(truth):
        raise ValueError(
            f"clusterings cover {len(predicted)} vs {len(truth)} vertices"
        )
    joint = Counter(zip(predicted, truth))
    true_positive = sum(count * (count - 1) // 2 for count in joint.values())
    predicted_pairs = _same_cluster_pairs(predicted)
    truth_pairs = _same_cluster_pairs(truth)
    if predicted_pairs == 0 or truth_pairs == 0 or true_positive == 0:
        return 0.0
    precision = true_positive / predicted_pairs
    recall = true_positive / truth_pairs
    return 2.0 * precision * recall / (precision + recall)
