"""General higher-order graph construction (Benson et al., Science 2016).

The paper's introduction motivates subgraph matching as the engine behind
higher-order graph analysis: build ``G_P`` from ``G`` where the weight of
``(v_i, v_j)`` counts the instances of a pattern ``P`` containing both
vertices. :mod:`repro.analysis.motif_clustering` specializes this to
cliques; this module handles *arbitrary* patterns, deduplicating
automorphic copies with the same restriction machinery the GraphPi baseline
uses, so every instance contributes exactly once.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

from repro.baselines.symmetry import symmetry_restrictions
from repro.core.csce import CSCE
from repro.errors import VariantError
from repro.graph.model import Graph


@dataclass
class MotifGraphResult:
    """``G_P`` plus provenance for one pattern."""

    weights: dict[int, dict[int, float]]
    num_instances: int
    automorphisms: int
    pattern_name: str

    def weight(self, a: int, b: int) -> float:
        return self.weights.get(a, {}).get(b, 0.0)

    def top_pairs(self, k: int = 10) -> list[tuple[int, int, float]]:
        """The k heaviest vertex pairs of ``G_P``."""
        pairs = [
            (a, b, w)
            for a, nbrs in self.weights.items()
            for b, w in nbrs.items()
            if a < b
        ]
        pairs.sort(key=lambda item: (-item[2], item[0], item[1]))
        return pairs[:k]


def build_motif_graph(
    graph: Graph,
    pattern: Graph,
    variant: str = "edge_induced",
    engine: CSCE | None = None,
    max_instances: int | None = 500_000,
) -> MotifGraphResult:
    """Build the motif-weighted graph ``G_P`` for an arbitrary pattern.

    Instances are enumerated once each: the pattern's automorphism group is
    broken with ordering restrictions when the pattern is unlabeled enough
    to have symmetry, and the instance *vertex sets* are deduplicated as a
    final safety net (two distinct restricted embeddings can still cover
    the same vertex set when the pattern has non-automorphic self-overlap).
    """
    if variant == "homomorphic":
        raise VariantError(
            "motif graphs need injective instances; homomorphic matching"
            " would count collapsed mappings"
        )
    if engine is None:
        engine = CSCE(graph)
    restrictions, automorphisms = symmetry_restrictions(pattern)
    result = engine.match(
        pattern,
        variant,
        restrictions=tuple(restrictions) if restrictions else None,
        max_embeddings=max_instances,
    )
    instances = {frozenset(m.values()) for m in result.embeddings}
    weights: dict[int, dict[int, float]] = {}
    for instance in instances:
        for a, b in itertools.combinations(sorted(instance), 2):
            weights.setdefault(a, {})[b] = weights.get(a, {}).get(b, 0.0) + 1.0
            weights.setdefault(b, {})[a] = weights.get(b, {}).get(a, 0.0) + 1.0
    return MotifGraphResult(
        weights=weights,
        num_instances=len(instances),
        automorphisms=automorphisms,
        pattern_name=pattern.name or "pattern",
    )
