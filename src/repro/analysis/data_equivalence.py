"""Syntactic equivalence of data-graph vertices (BoostISO / VEQ).

Section II: BoostISO groups data vertices that are *syntactically
equivalent* — interchangeable in every embedding because swapping them is
an automorphism fixing everything else (v3 and v10 in Fig. 1). VEQ's
dynamic equivalence exploits the same structure at run time, and the
paper's Finding 4 observes the pruning family collapses on sparse
unlabeled graphs where the classes turn trivial.

This module computes the exact classes from a CCSR store and summarizes
how much compression the equivalence offers — the statistic that explains
where VEQ-style engines shine and where they fail.

Two vertices ``u``, ``w`` are syntactically equivalent iff they share a
label and, in every cluster and direction, have identical neighbor rows
once each is masked out of the other's row (the masking admits *adjacent*
twins such as the two endpoints of a symmetric pendant pair). Non-adjacent
twins are found in one pass by exact row signatures; adjacent twins are
verified per edge; union-find merges the two relations into classes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ccsr.store import CCSRStore
from repro.graph.model import Graph


@dataclass(frozen=True)
class EquivalenceStats:
    """Summary of a graph's syntactic vertex equivalence."""

    num_vertices: int
    num_classes: int
    largest_class: int
    vertices_in_nontrivial_classes: int

    @property
    def compression(self) -> float:
        """Vertices per class — 1.0 means no equivalence at all."""
        if self.num_classes == 0:
            return 1.0
        return self.num_vertices / self.num_classes

    @property
    def nontrivial_fraction(self) -> float:
        """Share of vertices sharing a class with at least one other."""
        if self.num_vertices == 0:
            return 0.0
        return self.vertices_in_nontrivial_classes / self.num_vertices


def _sorted_cluster_items(store: CCSRStore):
    return sorted(store.clusters.items(), key=lambda item: str(item[0]))


def _row_views(store: CCSRStore, v: int) -> list[tuple[str, tuple]]:
    """(direction-tagged cluster, neighbor tuple) pairs for vertex ``v``."""
    views = []
    for key, cluster in _sorted_cluster_items(store):
        views.append((f"{key}|out", tuple(cluster.successors(v).tolist())))
        if key.directed:
            views.append((f"{key}|in", tuple(cluster.predecessors(v).tolist())))
    return views


def _masked_rows_equal(store: CCSRStore, u: int, w: int) -> bool:
    """Do u and w have identical rows once each ignores the other?"""
    for key, cluster in _sorted_cluster_items(store):
        directions = [cluster.successors]
        if key.directed:
            directions.append(cluster.predecessors)
        for neighbors in directions:
            row_u = [x for x in neighbors(u).tolist() if x != w]
            row_w = [x for x in neighbors(w).tolist() if x != u]
            if row_u != row_w:
                return False
            # The mutual relationship must be symmetric for the swap to be
            # an automorphism: u in row(w) iff w in row(u), per direction.
            u_sees_w = w in neighbors(u).tolist()
            w_sees_u = u in neighbors(w).tolist()
            if u_sees_w != w_sees_u:
                return False
    return True


def syntactic_equivalence_classes(
    source: Graph | CCSRStore,
) -> list[list[int]]:
    """Partition data vertices into syntactic equivalence classes,
    returned sorted largest-first."""
    store = source if isinstance(source, CCSRStore) else CCSRStore(source)
    n = store.num_vertices
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: int, b: int) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    # Pass 1 — non-adjacent twins: identical unmasked signatures imply the
    # pair is non-adjacent (a shared row containing one of them would put a
    # self-loop in the other's row) and swapping them is an automorphism.
    signature_groups: dict[tuple, list[int]] = {}
    for v in range(n):
        signature = (store.vertex_labels[v], tuple(_row_views(store, v)))
        signature_groups.setdefault(signature, []).append(v)
    for members in signature_groups.values():
        for other in members[1:]:
            union(members[0], other)

    # Pass 2 — adjacent twins: only endpoint pairs of an edge qualify, so a
    # per-edge masked comparison suffices.
    for key, cluster in _sorted_cluster_items(store):
        for src, dst in cluster.iter_directed_entries():
            if src < dst or key.directed:
                if store.vertex_labels[src] != store.vertex_labels[dst]:
                    continue
                if find(src) == find(dst):
                    continue
                if _masked_rows_equal(store, src, dst):
                    union(src, dst)

    classes_by_root: dict[int, list[int]] = {}
    for v in range(n):
        classes_by_root.setdefault(find(v), []).append(v)
    classes = [sorted(members) for members in classes_by_root.values()]
    classes.sort(key=lambda c: (-len(c), c))
    return classes


def equivalence_statistics(source: Graph | CCSRStore) -> EquivalenceStats:
    """Summarize a graph's syntactic equivalence (the Finding 4 metric)."""
    store = source if isinstance(source, CCSRStore) else CCSRStore(source)
    classes = syntactic_equivalence_classes(store)
    nontrivial = sum(len(c) for c in classes if len(c) > 1)
    return EquivalenceStats(
        num_vertices=store.num_vertices,
        num_classes=len(classes),
        largest_class=max((len(c) for c in classes), default=0),
        vertices_in_nontrivial_classes=nontrivial,
    )
