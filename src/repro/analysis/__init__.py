"""Higher-order graph analysis — the Section VII-G case study substrate."""

from repro.analysis.metrics import pairwise_f1
from repro.analysis.motif_graph import MotifGraphResult, build_motif_graph
from repro.analysis.data_equivalence import (
    EquivalenceStats,
    equivalence_statistics,
    syntactic_equivalence_classes,
)
from repro.analysis.motif_clustering import (
    MotifClusteringResult,
    clique_restrictions,
    complete_pattern,
    edge_clustering,
    label_propagation,
    motif_clustering,
    motif_weighted_adjacency,
)

__all__ = [
    "pairwise_f1",
    "MotifGraphResult",
    "build_motif_graph",
    "EquivalenceStats",
    "equivalence_statistics",
    "syntactic_equivalence_classes",
    "MotifClusteringResult",
    "clique_restrictions",
    "complete_pattern",
    "edge_clustering",
    "label_propagation",
    "motif_clustering",
    "motif_weighted_adjacency",
]
