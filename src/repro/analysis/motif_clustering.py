"""Higher-order (motif) clustering versus edge clustering (Section VII-G).

The case study asks whether two members belong to the same department given
their communication graph. The edge-based approach clusters over raw
adjacency; the higher-order approach first builds the motif-weighted graph
``G_P`` from the paper's introduction — ``w(v_i, v_j)`` counts the k-clique
instances containing both vertices — and clusters over those weights.
Finding all k-clique instances is a subgraph-matching task, which is where
CSCE (or any baseline matcher) plugs in.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Callable, Sequence

from repro.core.csce import CSCE
from repro.graph.model import Graph


def complete_pattern(k: int) -> Graph:
    """The unlabeled k-clique pattern."""
    return Graph.from_edges(
        k, list(itertools.combinations(range(k), 2)), name=f"clique-{k}"
    )


def clique_restrictions(k: int) -> tuple[tuple[int, int], ...]:
    """The full symmetry-breaking chain for a k-clique: f(0)<f(1)<...<f(k-1),
    so each clique instance is enumerated once instead of k! times."""
    return tuple((i, i + 1) for i in range(k - 1))


def label_propagation(
    num_vertices: int,
    weighted_adjacency: dict[int, dict[int, float]],
    iterations: int = 20,
) -> list[int]:
    """Deterministic weighted label propagation.

    Vertices start in singleton clusters; on each *synchronous* round every
    vertex adopts the incident label with the highest total weight, keeping
    its current label when that label ties for the maximum (and otherwise
    breaking ties by smallest label id). Synchronous rounds with
    keep-on-tie stop a single label from cascading through bridges, and
    determinism keeps the case study reproducible without a tuned community
    detector.
    """
    labels = list(range(num_vertices))
    for _ in range(iterations):
        changed = False
        next_labels = list(labels)
        for v in range(num_vertices):
            neighbors = weighted_adjacency.get(v)
            if not neighbors:
                continue
            totals: dict[int, float] = {}
            for w, weight in neighbors.items():
                totals[labels[w]] = totals.get(labels[w], 0.0) + weight
            top = max(totals.values())
            tied = sorted(lbl for lbl, total in totals.items() if total == top)
            best = labels[v] if labels[v] in tied else tied[0]
            if best != labels[v]:
                next_labels[v] = best
                changed = True
        labels = next_labels
        if not changed:
            break
    return labels


def edge_clustering(graph: Graph, iterations: int = 20) -> list[int]:
    """The baseline: label propagation over raw (unit-weight) adjacency."""
    adjacency = {
        v: {w: 1.0 for w in graph.neighbors(v)} for v in graph.vertices()
    }
    return label_propagation(graph.num_vertices, adjacency, iterations)


def motif_weighted_adjacency(
    graph: Graph,
    k: int = 8,
    find_embeddings: Callable[[Graph], Sequence[dict[int, int]]] | None = None,
    max_embeddings: int | None = 200_000,
) -> tuple[dict[int, dict[int, float]], int]:
    """Build ``G_P``: pair weights = co-occurrences in k-clique instances.

    ``find_embeddings`` defaults to CSCE edge-induced enumeration; pass a
    baseline matcher's closure to time alternatives. Embedding mappings are
    deduplicated to distinct cliques (a k-clique yields k! automorphic
    mappings). Returns (adjacency, number of distinct cliques).
    """
    pattern = complete_pattern(k)
    if find_embeddings is None:
        engine = CSCE(graph)

        def find_embeddings(p: Graph) -> Sequence[dict[int, int]]:
            return engine.match(
                p,
                "edge_induced",
                max_embeddings=max_embeddings,
                restrictions=clique_restrictions(p.num_vertices),
            ).embeddings

    cliques = {
        frozenset(mapping.values()) for mapping in find_embeddings(pattern)
    }
    adjacency: dict[int, dict[int, float]] = {}
    for clique in cliques:
        for a, b in itertools.combinations(sorted(clique), 2):
            adjacency.setdefault(a, {})[b] = adjacency.get(a, {}).get(b, 0.0) + 1.0
            adjacency.setdefault(b, {})[a] = adjacency.get(b, {}).get(a, 0.0) + 1.0
    return adjacency, len(cliques)


@dataclass
class MotifClusteringResult:
    """Outcome of one clustering run for the case-study table."""

    labels: list[int]
    num_motifs: int
    seconds: float
    method: str


def motif_clustering(
    graph: Graph,
    k: int = 8,
    find_embeddings: Callable[[Graph], Sequence[dict[int, int]]] | None = None,
    iterations: int = 20,
) -> MotifClusteringResult:
    """Cluster by k-clique co-membership; times the motif-finding stage."""
    start = time.perf_counter()
    adjacency, num_cliques = motif_weighted_adjacency(
        graph, k, find_embeddings=find_embeddings
    )
    labels = label_propagation(graph.num_vertices, adjacency, iterations)
    return MotifClusteringResult(
        labels=labels,
        num_motifs=num_cliques,
        seconds=time.perf_counter() - start,
        method=f"{k}-clique",
    )
