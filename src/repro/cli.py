"""Command-line interface.

Examples::

    csce stats                          # regenerate Table IV
    csce match --dataset dip --pattern-size 6 --variant edge_induced
    csce match --data g.graph --pattern p.graph --engine RapidMatch
    csce --log-level INFO match --dataset dip --trace --report out.json
    csce report out.json                # pretty-print a saved run-report
    csce capabilities                   # Table III
    csce explain --dataset dip --pattern-size 6   # plan EXPLAIN
    csce bench --dataset yeast --history BENCH_smoke.json
    csce bench compare --baseline BENCH_smoke.json   # regression gate
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import sys
import time

from repro.baselines import ALL_BASELINES
from repro.bench.harness import ENGINES, make_engine
from repro.bench.tables import print_table
from repro.core.csce import CSCE
from repro.core.variants import Variant
from repro.datasets import DATASET_NAMES, dataset_table, load_dataset
from repro.engine.physical import compile_plan
from repro.errors import FormatError
from repro.graph.io import load_graph
from repro.graph.sampling import sample_pattern
from repro.obs import (
    DEFAULT_INSPECT_INTERVAL,
    InspectorServer,
    JsonlTimeSeriesExporter,
    MatchInspector,
    MetricsPump,
    Observation,
    PrometheusTextfileExporter,
    build_explain,
    build_run_report,
    configure_logging,
    format_explain,
    format_run_report,
    load_run_reports,
    robustness_problems,
    validate_run_report,
    write_perfetto,
    write_run_report,
)


def _install_sigint(token):
    """First Ctrl-C trips the cooperative cancel token (the run returns a
    truncated-but-valid result); a second Ctrl-C aborts hard. Returns the
    previous handler for the caller's ``finally``, or ``None`` when signal
    handlers cannot be installed (non-main thread)."""

    def handler(signum, frame):
        if token.cancelled:
            raise KeyboardInterrupt
        token.trip("SIGINT")
        print(
            "interrupted: finishing the current step and returning the"
            " partial result (Ctrl-C again to abort hard)",
            file=sys.stderr,
        )

    try:
        previous = signal.signal(signal.SIGINT, handler)
    except ValueError:  # not the main thread (e.g. threaded test driver)
        return None
    return previous


def _install_sigusr1(obs):
    """SIGUSR1 dumps the flight recorder to stderr — a live peek at what a
    long run is doing without stopping it. Returns ``(signum, previous)``
    for the caller's ``finally``, or ``None`` on platforms without
    SIGUSR1 (Windows) or off the main thread."""
    signum = getattr(signal, "SIGUSR1", None)
    if signum is None:
        return None

    def handler(_signum, _frame):
        print(obs.recorder.format_dump(), file=sys.stderr)

    try:
        previous = signal.signal(signum, handler)
    except ValueError:  # not the main thread
        return None
    return signum, previous


def _install_sigusr2(inspector):
    """SIGUSR2 queues an on-demand checkpoint, written at the next
    heartbeat tick — suspend-for-migration without a socket. Mirrors the
    SIGUSR1 recorder dump's platform/main-thread guards. The handler only
    appends to the inspector's request queue (no I/O at signal time)."""
    signum = getattr(signal, "SIGUSR2", None)
    if signum is None:
        return None

    def handler(_signum, _frame):
        inspector.request_checkpoint(wait=False)
        print(
            "checkpoint-now queued (SIGUSR2); written at the next"
            " heartbeat tick",
            file=sys.stderr,
        )

    try:
        previous = signal.signal(signum, handler)
    except ValueError:  # not the main thread
        return None
    return signum, previous


def _cmd_stats(args: argparse.Namespace) -> int:
    rows = dataset_table(scale=args.scale)
    if args.json:
        print(json.dumps({"scale": args.scale, "datasets": rows}, indent=2))
        return 0
    print_table(
        rows,
        [
            "Data Graph",
            "Edge Direction",
            "Vertex Count",
            "Edge Count",
            "Label Count",
            "Average Degree",
            "Max In Degree",
            "Max Out Degree",
        ],
        title=f"Table IV (scale={args.scale})",
    )
    return 0


def _cmd_capabilities(_args: argparse.Namespace) -> int:
    rows = [cls.capability_row() for cls in ALL_BASELINES]
    rows.append(
        {
            "Algorithm": "CSCE",
            "Variant": "E, H, V",
            "Vertex Labels": "Yes",
            "Edge Labels": "Yes",
            "Edge Direction": "U and D",
            "Pattern Size": "Up to 2000",
        }
    )
    print_table(rows, title="Table III: algorithm capabilities")
    return 0


def _cmd_match(args: argparse.Namespace) -> int:
    if args.data:
        graph = load_graph(args.data, strict=not args.lenient)
    elif args.dataset:
        graph = load_dataset(args.dataset, scale=args.scale)
    else:
        print("error: provide --data FILE or --dataset NAME", file=sys.stderr)
        return 2
    if getattr(graph, "parse_warnings", 0):
        print(f"warning     : skipped {graph.parse_warnings} malformed"
              " line(s) in the data graph", file=sys.stderr)
    robustness = (
        args.memory_limit is not None
        or args.checkpoint is not None
        or args.resume is not None
        or args.inspect is not None
    )
    if robustness and args.engine != "CSCE":
        print(
            "error: --memory-limit/--checkpoint/--resume/--inspect require"
            " --engine CSCE",
            file=sys.stderr,
        )
        return 2
    workers = max(1, args.workers)
    if workers > 1:
        if args.engine != "CSCE":
            print("error: --workers requires --engine CSCE",
                  file=sys.stderr)
            return 2
        if args.stream or args.enumerate:
            print(
                "error: --workers runs in count mode only (embedding"
                " streams are not portable across processes); drop"
                " --stream/--enumerate",
                file=sys.stderr,
            )
            return 2
    checkpoint_doc = None
    resume_dir = None
    if args.resume and os.path.isdir(args.resume):
        # A directory of shard checkpoints (csce match --workers N
        # --checkpoint DIR) resumes on the worker pool.
        from repro.engine import load_checkpoint_dir
        from repro.errors import CheckpointError
        from repro.graph.io import parse_graph_text

        try:
            pool_docs = load_checkpoint_dir(args.resume)
        except CheckpointError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        resume_dir = args.resume
        pattern = parse_graph_text(
            pool_docs[0]["pattern"]["text"], name="resumed"
        )
    elif args.resume:
        from repro.engine import load_checkpoint
        from repro.errors import CheckpointError
        from repro.graph.io import parse_graph_text

        try:
            checkpoint_doc = load_checkpoint(args.resume)
        except CheckpointError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        pattern = parse_graph_text(
            checkpoint_doc["pattern"]["text"], name="resumed"
        )
    elif args.pattern:
        pattern = load_graph(args.pattern, strict=not args.lenient)
    else:
        pattern = sample_pattern(
            graph, args.pattern_size, rng=args.seed, style=args.pattern_style
        )
    engine = make_engine(args.engine, graph)
    exporters = []
    if args.metrics_prom:
        exporters.append(PrometheusTextfileExporter(args.metrics_prom))
    if args.metrics_jsonl:
        exporters.append(JsonlTimeSeriesExporter(args.metrics_jsonl))
    pump = (
        MetricsPump(
            exporters,
            labels={"engine": args.engine, "dataset": args.dataset or "file"},
        )
        if exporters
        else None
    )
    instrumented = (
        args.trace
        or args.report
        or args.heartbeat is not None
        or args.profile
        or pump is not None
        or args.trace_perfetto is not None
        or args.dump_recorder
        or args.inspect is not None
    )
    heartbeat_interval = args.heartbeat
    if heartbeat_interval is None and args.inspect is not None:
        # The inspector samples on heartbeat ticks — give it a fast pulse
        # (the lines themselves go to logger.info, silent by default).
        heartbeat_interval = DEFAULT_INSPECT_INTERVAL
    obs = (
        Observation(trace=args.trace or bool(args.report)
                    or args.trace_perfetto is not None,
                    heartbeat_interval=heartbeat_interval,
                    profile=args.profile,
                    metrics=pump)
        if instrumented
        else None
    )
    plan = None
    if isinstance(engine, CSCE) and obs is not None:
        # Build the plan explicitly so the run-report can summarize it.
        plan = engine.build_plan(pattern, args.variant, obs=obs)
    governor = None
    previous_handler = None
    if isinstance(engine, CSCE):
        from repro.engine import Budget, CancelToken, ResourceGovernor

        token = CancelToken()
        governor = ResourceGovernor(
            budget=Budget(memory_limit_mb=args.memory_limit),
            cancel=token,
            obs=obs,
        )
        previous_handler = _install_sigint(token)
    usr1_handler = _install_sigusr1(obs) if obs is not None else None
    parallel = workers > 1 or resume_dir is not None
    use_stream = not parallel and (
        args.stream
        or args.checkpoint
        or checkpoint_doc is not None
        or args.inspect is not None
    )
    checkpoint_block = None
    inspector = None
    server = None
    usr2_handler = None
    try:
        if parallel:
            pool_monitor = None
            if args.inspect is not None and obs is not None:
                from repro.engine import PoolMonitor

                pool_monitor = PoolMonitor()
                inspector = MatchInspector(
                    pool_monitor, obs, governor=governor
                ).attach()
                server = InspectorServer(inspector, args.inspect).start()
                print(f"inspector   : listening on {server.endpoint}",
                      file=sys.stderr)
                usr2_handler = _install_sigusr2(inspector)
            if resume_dir is not None:
                result = engine.resume_pool(
                    resume_dir,
                    workers=workers,
                    max_embeddings=args.limit,
                    time_limit=args.time_limit,
                    governor=governor,
                    obs=obs,
                    checkpoint_dir=args.checkpoint,
                    monitor=pool_monitor,
                    stall_timeout=args.stall_timeout,
                    max_respawns=args.max_respawns,
                    max_unit_attempts=args.max_unit_attempts,
                )
            else:
                # pool_checkpoint_dir forbids a caller-supplied plan
                # (shard resume recompiles through the session), so only
                # pass `plan` when not checkpointing.
                result = engine.match(
                    pattern,
                    args.variant,
                    count_only=True,
                    max_embeddings=args.limit,
                    time_limit=args.time_limit,
                    obs=obs,
                    governor=governor,
                    workers=workers,
                    pool_checkpoint_dir=args.checkpoint,
                    pool_monitor=pool_monitor,
                    stall_timeout=args.stall_timeout,
                    max_respawns=args.max_respawns,
                    max_unit_attempts=args.max_unit_attempts,
                    **(
                        {"plan": plan}
                        if plan is not None and not args.checkpoint
                        else {}
                    ),
                )
            if inspector is not None:
                inspector.finish(result)
            if args.checkpoint:
                # The pool writes shard checkpoints only when it stops
                # early (a completed search leaves nothing to resume).
                checkpoint_block = {
                    "path": str(args.checkpoint),
                    "written": result.stop_reason is not None,
                }
        elif use_stream:
            if not isinstance(engine, CSCE):
                print("error: --stream requires --engine CSCE",
                      file=sys.stderr)
                return 2
            if checkpoint_doc is not None:
                from repro.errors import CheckpointError

                try:
                    stream = engine.resume(
                        checkpoint_doc,
                        max_embeddings=args.limit,
                        time_limit=args.time_limit,
                        governor=governor,
                        obs=obs,
                        checkpoint_path=args.checkpoint or args.resume,
                    )
                except CheckpointError as exc:
                    print(f"error: {exc}", file=sys.stderr)
                    return 2
            else:
                # checkpoint_path forbids a caller-supplied plan (resume
                # recompiles through the session), so only pass `plan`
                # when not checkpointing.
                stream = engine.match_iter(
                    pattern,
                    args.variant,
                    max_embeddings=args.limit,
                    time_limit=args.time_limit,
                    obs=obs,
                    governor=governor,
                    checkpoint_path=args.checkpoint,
                    **(
                        {"plan": plan}
                        if plan is not None and not args.checkpoint
                        else {}
                    ),
                )
            if args.inspect is not None and obs is not None:
                from repro.engine import CheckpointSink

                def _sink_factory(path):
                    return CheckpointSink(
                        path, engine.store, pattern, args.variant, "csce"
                    )

                inspector = MatchInspector(
                    stream,
                    obs,
                    governor=governor,
                    checkpoint_factory=_sink_factory,
                    default_checkpoint_path=(
                        args.checkpoint
                        or f"csce-checkpoint-{os.getpid()}.json"
                    ),
                ).attach()
                server = InspectorServer(inspector, args.inspect).start()
                print(f"inspector   : listening on {server.endpoint}",
                      file=sys.stderr)
                usr2_handler = _install_sigusr2(inspector)
            shown = 0
            with stream:
                for embedding in stream:
                    if args.stream and shown < args.show and not args.json:
                        print(f"  #{shown}: {embedding}")
                        shown += 1
                result = stream.result()
            if inspector is not None:
                inspector.finish(result)
            sink = stream.checkpoint_sink
            if sink is None and inspector is not None:
                sink = inspector.on_demand_sink
            if sink is not None:
                checkpoint_block = {
                    "path": str(sink.path),
                    "written": sink.written is not None,
                }
                if sink.on_demand:
                    checkpoint_block["on_demand"] = sink.on_demand
        else:
            result = engine.match(
                pattern,
                args.variant,
                count_only=not args.enumerate,
                max_embeddings=args.limit,
                time_limit=args.time_limit,
                obs=obs,
                **({"plan": plan} if plan is not None else {}),
                **({"governor": governor} if governor is not None else {}),
            )
    finally:
        if server is not None:
            server.stop()
        if previous_handler is not None:
            signal.signal(signal.SIGINT, previous_handler)
        if usr1_handler is not None:
            signal.signal(*usr1_handler)
        if usr2_handler is not None:
            signal.signal(*usr2_handler)
    report = None
    if obs is not None:
        obs.finish(result)
        config_block = None
        if parallel:
            # Stamp the supervision knobs a parallel run was launched
            # with — report --validate type-checks them.
            config_block = {
                "workers": workers,
                "stall_timeout": args.stall_timeout,
                "max_respawns": args.max_respawns,
                "max_unit_attempts": args.max_unit_attempts,
            }
        report = build_run_report(
            result,
            engine=args.engine,
            obs=obs,
            plan=plan,
            graph=engine.store if isinstance(engine, CSCE) else graph,
            pattern=pattern,
            dataset=args.dataset or args.data,
            checkpoint=checkpoint_block,
            config=config_block,
        )
    if args.report and report is not None:
        write_run_report(report, args.report)
        print(f"run-report  : {args.report}", file=sys.stderr)
    if args.trace_perfetto and obs is not None:
        write_perfetto(args.trace_perfetto, obs.tracer, obs.recorder)
        print(f"perfetto    : {args.trace_perfetto}", file=sys.stderr)
    if args.dump_recorder and obs is not None:
        print(obs.recorder.format_dump(), file=sys.stderr)
    if pump is not None:
        for exporter in pump.exporters:
            print(f"metrics     : {exporter.path}", file=sys.stderr)
    if args.json:
        payload = {
            "engine": args.engine,
            "variant": str(result.variant),
            "pattern": {
                "name": pattern.name,
                "num_vertices": pattern.num_vertices,
                "num_edges": pattern.num_edges,
            },
            "count": result.count,
            "truncated": result.truncated,
            "timed_out": result.timed_out,
            "stop_reason": result.stop_reason,
            "degradation": list(result.degradation),
            "timings": {
                "read_seconds": result.read_seconds,
                "plan_seconds": result.plan_seconds,
                "execute_seconds": result.elapsed,
                "total_seconds": result.total_seconds,
            },
            "throughput": result.throughput,
            "stats": dict(result.stats),
        }
        if result.progress is not None:
            payload["progress"] = dict(result.progress)
        if result.shards is not None:
            payload["workers"] = workers
            payload["shards"] = dict(result.shards)
        if result.quarantined_units:
            payload["quarantined_units"] = result.quarantined_units
        if checkpoint_block is not None:
            payload["checkpoint"] = checkpoint_block
        if args.profile and obs is not None:
            payload["profile"] = obs.profile.as_dict(
                list(plan.order) if plan is not None else None
            )
        if args.enumerate and result.embeddings is not None:
            payload["embeddings"] = [
                {str(u): v for u, v in emb.items()}
                for emb in result.embeddings[: args.show]
            ]
        print(json.dumps(payload, indent=2))
        return 0
    print(f"engine      : {args.engine}")
    print(f"variant     : {result.variant}")
    print(f"pattern     : |V|={pattern.num_vertices} |E|={pattern.num_edges}")
    if result.stop_reason:
        suffix = f" (stopped: {result.stop_reason})"
    else:
        suffix = ((" (truncated)" if result.truncated else "")
                  + (" (timed out)" if result.timed_out else ""))
    print(f"embeddings  : {result.count}{suffix}")
    if result.shards is not None:
        counts = result.shards.get("counts") or []
        print(
            f"shards      : {len(counts)} worker(s):"
            f" {' + '.join(str(c) for c in counts)}"
            f" = {sum(counts)}"
        )
    if result.quarantined_units:
        print(
            f"quarantined : {result.quarantined_units} unit(s) — replay"
            " with 'csce retry-quarantined'"
        )
    if result.degradation:
        print(f"degradation : {' > '.join(result.degradation)}")
    if checkpoint_block is not None:
        written = " (written)" if checkpoint_block["written"] else ""
        if checkpoint_block.get("on_demand"):
            written = (
                f" (written, {checkpoint_block['on_demand']} on-demand)"
            )
        print(f"checkpoint  : {checkpoint_block['path']}{written}")
    print(f"total time  : {result.total_seconds:.4f} s"
          f" (read {result.read_seconds:.4f}, plan {result.plan_seconds:.4f},"
          f" execute {result.elapsed:.4f})")
    if args.profile and obs is not None:
        print(f"peak memory : {obs.profile.peak_mb} MiB (tracemalloc)")
    if args.trace and report is not None:
        print()
        print(format_run_report(report))
    if args.enumerate and result.embeddings:
        shown = result.embeddings[: args.show]
        for i, embedding in enumerate(shown):
            print(f"  #{i}: {embedding}")
        if len(result.embeddings) > len(shown):
            print(f"  ... {len(result.embeddings) - len(shown)} more")
    return 0


def _cmd_retry_quarantined(args: argparse.Namespace) -> int:
    """Replay the quarantine-NNNN.json residue of a --workers run
    single-process and fold the missing counts (see
    :meth:`repro.core.CSCE.retry_quarantined`)."""
    from repro.errors import CheckpointError

    if args.data:
        graph = load_graph(args.data, strict=not args.lenient)
    elif args.dataset:
        graph = load_dataset(args.dataset, scale=args.scale)
    else:
        print("error: provide --data FILE or --dataset NAME", file=sys.stderr)
        return 2
    engine = CSCE(graph)
    overrides: dict = {}
    if args.limit is not None:
        overrides["max_embeddings"] = args.limit
    if args.time_limit is not None:
        overrides["time_limit"] = args.time_limit
    try:
        replayed = len([
            name
            for name in os.listdir(args.directory)
            if name.startswith("quarantine-") and name.endswith(".json")
        ])
    except OSError:
        replayed = 0  # the engine call below reports the real error
    try:
        result = engine.retry_quarantined(
            args.directory, keep_files=args.keep_files, **overrides
        )
    except CheckpointError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps({
            "directory": str(args.directory),
            "replayed_units": replayed,
            "count": result.count,
            "stop_reason": result.stop_reason,
            "files_deleted": result.stop_reason is None
            and not args.keep_files,
            "timings": {"execute_seconds": result.elapsed},
            "stats": dict(result.stats),
        }, indent=2))
        return 0 if result.stop_reason is None else 1
    print(f"residue     : {replayed} quarantined unit(s) in"
          f" {args.directory}")
    suffix = f" (stopped: {result.stop_reason})" if result.stop_reason else ""
    print(f"embeddings  : {result.count}{suffix}")
    print(f"total time  : {result.total_seconds:.4f} s")
    if result.stop_reason is None:
        print("files       : kept" if args.keep_files
              else "files       : residue deleted (counts folded)")
        print("fold        : add this count to the original match's count"
              " for the exact total")
        return 0
    print("files       : kept (replay incomplete — discard this partial"
          " count and retry)", file=sys.stderr)
    return 1


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.errors import InspectorError
    from repro.obs import inspect_call

    cmd_args: dict = {}
    if args.limit is not None:
        cmd_args["limit"] = args.limit
    if args.path is not None:
        cmd_args["path"] = args.path
    if args.time_limit is not None:
        cmd_args["time_limit"] = args.time_limit
    if args.max_embeddings is not None:
        cmd_args["max_embeddings"] = args.max_embeddings
    if args.memory_limit is not None:
        cmd_args["memory_limit_mb"] = args.memory_limit
    if args.reason is not None:
        cmd_args["reason"] = args.reason
    try:
        data = inspect_call(
            args.socket, args.cmd, cmd_args, timeout=args.timeout
        )
    except InspectorError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(data, indent=2))
        return 0
    if isinstance(data, dict):
        for key, value in data.items():
            if isinstance(value, (dict, list)):
                value = json.dumps(value)
            print(f"{key:<16}: {value}")
    else:
        print(data)
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.errors import InspectorError
    from repro.obs import InspectorClient, render_top

    try:
        client = InspectorClient(args.socket, timeout=args.timeout)
    except InspectorError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        while True:
            status = client.request("status")
            try:
                progress = client.request("progress")
            except InspectorError:
                progress = None
            if not args.once:
                # ANSI clear-screen + home: a plain-text refresh, no
                # curses dependency.
                print("\x1b[2J\x1b[H", end="")
            print(render_top(status, progress))
            if (
                args.once
                or status.get("state") == "finished"
                or status.get("stop_reason")
            ):
                return 0
            time.sleep(args.interval)
    except InspectorError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        return 0
    finally:
        client.close()


def _cmd_plan(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, scale=args.scale)
    pattern = sample_pattern(
        graph, args.pattern_size, rng=args.seed, style=args.pattern_style
    )
    engine = CSCE(graph)
    plan = engine.build_plan(pattern, args.variant, planner=args.planner)
    print(plan.describe())
    print(f"clusters     : {plan.task_clusters.num_clusters}"
          f" (read {plan.task_clusters.read_seconds:.4f} s)")
    print(f"plan time    : {plan.plan_seconds:.4f} s")
    physical = compile_plan(plan)
    print(f"physical     : {len(physical.ops)} extend ops,"
          f" {physical.num_specs} candidate specs"
          f" (compiled {physical.compile_seconds:.4f} s)")
    stats = engine.sce_report(pattern, args.variant)
    print(f"SCE          : {stats.occurrence:.0%} of pattern vertices,"
          f" cluster share {stats.cluster_ratio:.0%}")
    return 0


def _cmd_explain(args: argparse.Namespace) -> int:
    if args.data:
        graph = load_graph(args.data)
    elif args.dataset:
        graph = load_dataset(args.dataset, scale=args.scale)
    else:
        print("error: provide --data FILE or --dataset NAME", file=sys.stderr)
        return 2
    if args.pattern:
        pattern = load_graph(args.pattern)
    else:
        pattern = sample_pattern(
            graph, args.pattern_size, rng=args.seed, style=args.pattern_style
        )
    engine = CSCE(graph)
    # A live tracer makes the planner record its order rationale (the GCF
    # rule firings EXPLAIN renders).
    obs = Observation()
    plan = engine.build_plan(
        pattern, args.variant, planner=args.planner, obs=obs
    )
    run_report = None
    if args.run_report:
        try:
            reports = load_run_reports(args.run_report)
        except (OSError, json.JSONDecodeError) as exc:
            print(f"error: cannot read {args.run_report}: {exc}",
                  file=sys.stderr)
            return 2
        run_report = reports[-1] if reports else None
    info = build_explain(plan, report=run_report)
    if args.json:
        print(json.dumps(info, indent=2, default=str))
        return 0
    print(format_explain(info))
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    from repro.ccsr.store import CCSRStore
    from repro.engine.physical import pattern_fingerprint
    from repro.engine.session import plan_query
    from repro.engine.verify import verify_physical
    from repro.graph.patterns import CATALOG

    if args.data:
        graph = load_graph(args.data)
    elif args.dataset:
        graph = load_dataset(args.dataset, scale=args.scale)
    else:
        print("error: provide --data FILE or --dataset NAME", file=sys.stderr)
        return 2
    store = CCSRStore(graph)
    if args.catalog:
        patterns = [(name, factory()) for name, factory in CATALOG.items()]
    elif args.pattern:
        pattern = load_graph(args.pattern)
        patterns = [(pattern.name or "pattern", pattern)]
    else:
        pattern = sample_pattern(
            graph, args.pattern_size, rng=args.seed, style=args.pattern_style
        )
        patterns = [(pattern.name or "sampled", pattern)]
    variants = (
        [v.value for v in Variant] if args.variant == "all" else [args.variant]
    )
    rows = []
    failed = 0
    for name, pattern in patterns:
        for variant in variants:
            plan = plan_query(store, pattern, variant, planner=args.planner)
            physical = compile_plan(plan)
            report = verify_physical(physical, store)
            rows.append(
                {
                    "pattern": name,
                    "fingerprint_size": len(pattern_fingerprint(pattern)),
                    "variant": variant,
                    "planner": args.planner,
                    **report.as_dict(),
                }
            )
            if not report.ok:
                failed += 1
                print(f"FAIL {name} / {variant}", file=sys.stderr)
                for diagnostic in report.diagnostics:
                    print(f"  {diagnostic.render()}", file=sys.stderr)
    if args.json:
        print(
            json.dumps(
                {"checked": len(rows), "failed": failed, "plans": rows},
                indent=2,
            )
        )
    else:
        print(f"verified    : {len(rows)} plan(s)"
              f" ({len(patterns)} pattern(s) x {len(variants)} variant(s))")
        print(f"result      : {'FAIL' if failed else 'ok'}"
              + (f" ({failed} plan(s) rejected)" if failed else ""))
    return 1 if failed else 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.bench.history import compare_histories, load_history

    if not args.baseline:
        print("error: bench compare requires --baseline PATH", file=sys.stderr)
        return 2
    current_path = args.current or args.baseline
    try:
        baseline = load_history(args.baseline)
        current = load_history(current_path)
    except (OSError, json.JSONDecodeError, FormatError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    comparison = compare_histories(
        baseline,
        current,
        threshold=args.threshold,
        min_seconds=args.min_seconds,
    )
    print_table(
        [d.row() for d in comparison.deltas],
        ["config", "baseline_s", "current_s", "ratio", "status"],
        title=f"bench compare: {args.baseline} vs {current_path}",
    )
    print(comparison.summary())
    return comparison.exit_code


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.harness import average_by, sweep
    from repro.graph.sampling import sample_pattern_suite

    if args.action == "compare":
        return _cmd_bench_compare(args)
    if not args.dataset:
        print("error: bench requires --dataset NAME", file=sys.stderr)
        return 2
    graph = load_dataset(args.dataset, scale=args.scale)
    suite = sample_pattern_suite(
        graph,
        args.sizes,
        per_size=args.patterns,
        style=args.pattern_style,
        seed=args.seed,
    )
    patterns = [p for size in args.sizes for p in suite[size]]
    for i, p in enumerate(patterns):
        p.name = f"{p.name}#{i}"
    records = sweep(
        "cli",
        graph,
        patterns,
        args.engines,
        args.variant,
        time_limit=args.time_limit,
        max_embeddings=args.limit,
        collect_reports=bool(args.report) or args.trace,
        trace=args.trace,
        observed=args.obs,
        workers=max(1, args.workers),
    )
    if args.report:
        from repro.bench.harness import save_reports

        written = save_reports(records, args.report)
        print(f"run-reports : {written} written to {args.report}",
              file=sys.stderr)
    if args.history:
        from repro.bench.history import build_history, write_history

        doc = build_history(args.figure, records)
        write_history(doc, args.history)
        print(f"bench-history: {len(doc['configs'])} config(s) written to"
              f" {args.history}", file=sys.stderr)
    print_table(
        [r.row() for r in records],
        ["engine", "size", "embeddings", "total_s", "throughput", "status"],
        title=f"{args.dataset} / {args.variant} / sizes {args.sizes}",
    )
    summary = average_by(records, key=lambda r: (r.engine, r.pattern_size))
    rows = [
        {
            "engine": engine,
            "size": size,
            "mean_total_s": round(stats["total_s"], 4),
            "mean_throughput": round(stats["throughput"], 1),
            "timeouts": stats["timeouts"],
        }
        for (engine, size), stats in sorted(summary.items())
    ]
    print_table(rows, title="averages")
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.bench.history import BENCH_FORMAT, validate_bench_history

    try:
        reports = load_run_reports(args.path)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"error: cannot read {args.path}: {exc}", file=sys.stderr)
        return 2
    if not reports:
        print(f"error: no run-reports in {args.path}", file=sys.stderr)
        return 2
    if args.validate:
        # One validator per document family, sharing the schema core
        # (repro.obs.report.schema_problems). Bench-history and robustness
        # mismatches are configuration errors → exit 2; run-report schema
        # mismatches → exit 1.
        report_problems = 0
        history_problems = 0
        robustness_count = 0
        for i, report in enumerate(reports):
            is_history = (
                isinstance(report, dict)
                and report.get("format") == BENCH_FORMAT
            )
            try:
                if is_history:
                    validate_bench_history(report)
                else:
                    validate_run_report(report)
            except FormatError as exc:
                if is_history:
                    history_problems += 1
                else:
                    report_problems += 1
                print(f"document #{i}: {exc}", file=sys.stderr)
            else:
                if not is_history:
                    bad = robustness_problems(report)
                    if bad:
                        robustness_count += 1
                        for problem in bad:
                            print(f"document #{i}: {problem}",
                                  file=sys.stderr)
        problems = report_problems + history_problems + robustness_count
        if problems:
            print(f"{problems}/{len(reports)} document(s) invalid",
                  file=sys.stderr)
            return 2 if (history_problems or robustness_count) else 1
        kinds = (
            "bench-history document(s)"
            if all(
                isinstance(r, dict) and r.get("format") == BENCH_FORMAT
                for r in reports
            )
            else "report(s)"
        )
        print(f"{len(reports)} {kinds} valid")
        return 0
    for i, report in enumerate(reports):
        if i:
            print()
            print("=" * 60)
        print(format_run_report(report))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="csce",
        description="CSCE subgraph matching (ICDE 2024 reproduction)",
    )
    parser.add_argument(
        "--log-level",
        default=None,
        help="logging level for the repro.* loggers"
        " (DEBUG/INFO/WARNING/ERROR; also REPRO_LOG_LEVEL)",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit log records as JSON lines (also REPRO_LOG_JSON=1)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="regenerate Table IV dataset statistics")
    p_stats.add_argument("--scale", type=float, default=0.5)
    p_stats.add_argument("--json", action="store_true",
                         help="machine-readable output")
    p_stats.set_defaults(func=_cmd_stats)

    p_caps = sub.add_parser("capabilities", help="print Table III")
    p_caps.set_defaults(func=_cmd_capabilities)

    p_match = sub.add_parser("match", help="match a pattern in a data graph")
    p_match.add_argument("--data", help="data graph file (.graph format)")
    p_match.add_argument(
        "--dataset", choices=DATASET_NAMES, help="built-in dataset stand-in"
    )
    p_match.add_argument("--scale", type=float, default=0.5)
    p_match.add_argument("--pattern", help="pattern graph file")
    p_match.add_argument("--pattern-size", type=int, default=8)
    p_match.add_argument(
        "--pattern-style", choices=("induced", "dense", "sparse"), default="induced"
    )
    p_match.add_argument("--seed", type=int, default=0)
    p_match.add_argument(
        "--variant",
        default="edge_induced",
        choices=[v.value for v in Variant],
    )
    p_match.add_argument("--engine", default="CSCE", choices=sorted(ENGINES))
    p_match.add_argument("--enumerate", action="store_true",
                         help="materialize embeddings instead of counting")
    p_match.add_argument("--stream", action="store_true",
                         help="stream embeddings lazily (CSCE only): print"
                              " the first --show as they are found, then"
                              " drain the rest for the count")
    p_match.add_argument("--show", type=int, default=5,
                         help="embeddings to display with --enumerate")
    p_match.add_argument("--limit", type=int, default=None)
    p_match.add_argument("--time-limit", type=float, default=60.0)
    p_match.add_argument("--memory-limit", type=float, metavar="MIB",
                         default=None,
                         help="soft memory budget in MiB (CSCE only):"
                         " breaches climb the degradation ladder"
                         " (evict memo > disable memo > suspend)")
    p_match.add_argument("--workers", type=int, metavar="N", default=1,
                         help="run the search on N worker processes with"
                         " work-stealing and exact merged counts (CSCE"
                         " count mode only)")
    p_match.add_argument("--stall-timeout", type=float, metavar="SECONDS",
                         default=None,
                         help="with --workers N: SIGKILL a busy worker"
                         " silent this long and re-dispatch its unit"
                         " (default: watchdog off)")
    p_match.add_argument("--max-respawns", type=int, metavar="N",
                         default=None,
                         help="with --workers N: replacement-worker budget"
                         " after deaths/stall kills (default 3*workers)")
    p_match.add_argument("--max-unit-attempts", type=int, metavar="N",
                         default=3,
                         help="with --workers N: attempts a work unit gets"
                         " before it is quarantined to"
                         " quarantine-NNNN.json in the --checkpoint"
                         " directory (replay with 'csce"
                         " retry-quarantined')")
    p_match.add_argument("--checkpoint", metavar="PATH", default=None,
                         help="write a resumable checkpoint here if the"
                         " run suspends (limit/cancel/memory); CSCE only."
                         " With --workers N, PATH is a directory that"
                         " receives one shard checkpoint per unfinished"
                         " work unit")
    p_match.add_argument("--resume", metavar="PATH", default=None,
                         help="resume a suspended run from this checkpoint"
                         " (pattern comes from the checkpoint; the data"
                         " graph must be unchanged). A directory of shard"
                         " checkpoints resumes on the worker pool")
    p_match.add_argument("--lenient", action="store_true",
                         help="skip malformed graph-file lines with a"
                         " warning instead of failing (strict=False)")
    p_match.add_argument("--json", action="store_true",
                         help="machine-readable output")
    p_match.add_argument("--trace", action="store_true",
                         help="collect spans and print the run-report")
    p_match.add_argument("--report", metavar="PATH", default=None,
                         help="write a JSON run-report (.jsonl appends)")
    p_match.add_argument("--heartbeat", type=float, metavar="SECONDS",
                         default=None,
                         help="emit search-progress heartbeats this often")
    p_match.add_argument("--profile", action="store_true",
                         help="tracemalloc per-span memory + per-depth"
                         " search profile in the run-report")
    p_match.add_argument("--metrics-prom", metavar="PATH", default=None,
                         help="export Prometheus textfile metrics here"
                         " (atomically rewritten each sample)")
    p_match.add_argument("--metrics-jsonl", metavar="PATH", default=None,
                         help="append JSONL time-series metric samples here")
    p_match.add_argument("--trace-perfetto", metavar="PATH", default=None,
                         help="export spans + flight-recorder events as a"
                         " Chrome/Perfetto trace-event JSON file")
    p_match.add_argument("--dump-recorder", action="store_true",
                         help="print the flight-recorder ring to stderr"
                         " after the run (SIGUSR1 dumps it live)")
    p_match.add_argument("--inspect", metavar="SOCK", default=None,
                         help="serve a live inspector on this unix-socket"
                         " path (TCP host:port also accepted; CSCE only)."
                         " Attach with 'csce inspect SOCK <command>' or"
                         " 'csce top SOCK'")
    p_match.set_defaults(func=_cmd_match)

    p_retry = sub.add_parser(
        "retry-quarantined",
        help="replay the poison-unit residue a --workers match"
        " quarantined (single-process, exact fold)",
    )
    p_retry.add_argument("directory", help="the pool --checkpoint directory"
                         " holding quarantine-NNNN.json residue")
    p_retry.add_argument("--data", help="data graph file (.graph format)")
    p_retry.add_argument(
        "--dataset", choices=DATASET_NAMES, help="built-in dataset stand-in"
    )
    p_retry.add_argument("--scale", type=float, default=0.5)
    p_retry.add_argument("--lenient", action="store_true",
                         help="skip malformed graph-file lines with a"
                         " warning instead of failing (strict=False)")
    p_retry.add_argument("--limit", type=int, default=None,
                         help="override the recorded embedding cap")
    p_retry.add_argument("--time-limit", type=float, default=None,
                         help="override the recorded wall-clock limit")
    p_retry.add_argument("--keep-files", action="store_true",
                         help="keep the residue files after a complete"
                         " replay instead of deleting them")
    p_retry.add_argument("--json", action="store_true",
                         help="machine-readable output")
    p_retry.set_defaults(func=_cmd_retry_quarantined)

    from repro.obs.wire import COMMAND_HELP, KNOWN_COMMANDS

    p_inspect = sub.add_parser(
        "inspect",
        help="query or steer a live match served with --inspect",
        description="Commands: " + "; ".join(
            f"{name} — {COMMAND_HELP[name]}" for name in KNOWN_COMMANDS
        ),
    )
    p_inspect.add_argument("socket", help="inspector address: the --inspect"
                           " socket path or host:port")
    p_inspect.add_argument("cmd", choices=KNOWN_COMMANDS,
                           help="inspector command to run")
    p_inspect.add_argument("--json", action="store_true",
                           help="machine-readable output")
    p_inspect.add_argument("--timeout", type=float, default=10.0,
                           help="connection/response timeout in seconds")
    p_inspect.add_argument("--limit", type=int, default=None,
                           help="[recorder] show only the last N events")
    p_inspect.add_argument("--path", default=None,
                           help="[checkpoint-now] write the checkpoint here"
                           " instead of the run's --checkpoint path")
    p_inspect.add_argument("--time-limit", type=float, default=None,
                           help="[budget] tighten the wall-clock limit"
                           " (seconds from now)")
    p_inspect.add_argument("--max-embeddings", type=int, default=None,
                           help="[budget] tighten the embedding cap")
    p_inspect.add_argument("--memory-limit", type=float, metavar="MIB",
                           default=None,
                           help="[budget] tighten the memory ceiling (MiB)")
    p_inspect.add_argument("--reason", default=None,
                           help="[cancel] reason recorded on the token")
    p_inspect.set_defaults(func=_cmd_inspect)

    p_top = sub.add_parser(
        "top",
        help="live plain-text view of a match served with --inspect",
    )
    p_top.add_argument("socket", help="inspector address: the --inspect"
                       " socket path or host:port")
    p_top.add_argument("--interval", type=float, default=1.0,
                       help="refresh period in seconds")
    p_top.add_argument("--once", action="store_true",
                       help="print one snapshot and exit (no screen clear)")
    p_top.add_argument("--timeout", type=float, default=10.0,
                       help="connection/response timeout in seconds")
    p_top.set_defaults(func=_cmd_top)

    p_plan = sub.add_parser("plan", help="show the optimized matching plan")
    p_plan.add_argument("--dataset", choices=DATASET_NAMES, required=True)
    p_plan.add_argument("--scale", type=float, default=0.5)
    p_plan.add_argument("--pattern-size", type=int, default=8)
    p_plan.add_argument(
        "--pattern-style", choices=("induced", "dense", "sparse"), default="induced"
    )
    p_plan.add_argument("--seed", type=int, default=0)
    p_plan.add_argument(
        "--variant",
        default="edge_induced",
        choices=[v.value for v in Variant],
    )
    p_plan.add_argument("--planner", default="csce",
                        choices=("csce", "ri_cluster", "ri", "rm"))
    p_plan.set_defaults(func=_cmd_plan)

    p_explain = sub.add_parser(
        "explain",
        help="render the optimizer's choices: order, GCF rule firings,"
        " SCE DAG, equivalence pairs, candidate estimates",
    )
    p_explain.add_argument("--data", help="data graph file (.graph format)")
    p_explain.add_argument(
        "--dataset", choices=DATASET_NAMES, help="built-in dataset stand-in"
    )
    p_explain.add_argument("--scale", type=float, default=0.5)
    p_explain.add_argument("--pattern", help="pattern graph file")
    p_explain.add_argument("--pattern-size", type=int, default=8)
    p_explain.add_argument(
        "--pattern-style", choices=("induced", "dense", "sparse"), default="induced"
    )
    p_explain.add_argument("--seed", type=int, default=0)
    p_explain.add_argument(
        "--variant",
        default="edge_induced",
        choices=[v.value for v in Variant],
    )
    p_explain.add_argument("--planner", default="csce",
                          choices=("csce", "ri_cluster", "ri", "rm"))
    p_explain.add_argument("--run-report", metavar="PATH", default=None,
                          help="join actual per-depth candidate counts from"
                          " a saved --profile run-report")
    p_explain.add_argument("--json", action="store_true",
                          help="machine-readable output")
    p_explain.set_defaults(func=_cmd_explain)

    p_verify = sub.add_parser(
        "verify",
        help="statically verify compiled plans (order/DAG/cluster/negation"
        " invariants) without executing them",
    )
    p_verify.add_argument("--data", help="data graph file (.graph format)")
    p_verify.add_argument(
        "--dataset", choices=DATASET_NAMES, help="built-in dataset stand-in"
    )
    p_verify.add_argument("--scale", type=float, default=0.5)
    p_verify.add_argument("--pattern", help="pattern graph file")
    p_verify.add_argument("--pattern-size", type=int, default=8)
    p_verify.add_argument(
        "--pattern-style", choices=("induced", "dense", "sparse"), default="induced"
    )
    p_verify.add_argument("--seed", type=int, default=0)
    p_verify.add_argument("--catalog", action="store_true",
                          help="verify every named pattern in the catalog"
                          " instead of one pattern")
    p_verify.add_argument(
        "--variant",
        default="all",
        choices=[v.value for v in Variant] + ["all"],
        help="variant to plan for ('all' sweeps every variant)",
    )
    p_verify.add_argument("--planner", default="csce",
                          choices=("csce", "ri_cluster", "ri", "rm", "cost"))
    p_verify.add_argument("--json", action="store_true",
                          help="machine-readable output")
    p_verify.set_defaults(func=_cmd_verify)

    p_bench = sub.add_parser(
        "bench", help="sweep engines over sampled patterns and print a table"
    )
    p_bench.add_argument(
        "action", nargs="?", choices=("compare",), default=None,
        help="'compare' checks a BENCH history against --baseline instead"
        " of running a sweep",
    )
    p_bench.add_argument("--dataset", choices=DATASET_NAMES, default=None)
    p_bench.add_argument("--scale", type=float, default=0.25)
    p_bench.add_argument("--sizes", type=int, nargs="+", default=[4, 8])
    p_bench.add_argument("--patterns", type=int, default=2,
                         help="patterns sampled per size")
    p_bench.add_argument(
        "--pattern-style", choices=("induced", "dense", "sparse"), default="induced"
    )
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument(
        "--variant",
        default="edge_induced",
        choices=[v.value for v in Variant],
    )
    p_bench.add_argument("--engines", nargs="+", default=["CSCE"],
                         choices=sorted(ENGINES))
    p_bench.add_argument("--limit", type=int, default=20_000)
    p_bench.add_argument("--time-limit", type=float, default=2.0)
    p_bench.add_argument("--workers", type=int, metavar="N", default=1,
                         help="worker processes per CSCE task (count mode;"
                         " recorded in --history rows)")
    p_bench.add_argument("--trace", action="store_true",
                         help="collect span trees in the run-reports")
    p_bench.add_argument("--obs", action="store_true",
                         help="run every task with the minimal always-on"
                         " instruments (flight recorder + progress) to"
                         " measure their overhead")
    p_bench.add_argument("--report", metavar="PATH", default=None,
                         help="write run-reports (.jsonl streams one/line)")
    p_bench.add_argument("--history", metavar="PATH", default=None,
                         help="write a BENCH_<figure>.json history document"
                         " for later 'bench compare' regression gating")
    p_bench.add_argument("--figure", default="cli",
                         help="figure/experiment name stamped into --history")
    p_bench.add_argument("--baseline", metavar="PATH", default=None,
                         help="[compare] baseline BENCH_*.json history")
    p_bench.add_argument("--current", metavar="PATH", default=None,
                         help="[compare] current history"
                         " (defaults to --baseline: a self-comparison)")
    p_bench.add_argument("--threshold", type=float, default=1.5,
                         help="[compare] normalized slowdown ratio that"
                         " counts as a regression (default 1.5)")
    p_bench.add_argument("--min-seconds", type=float, default=0.0005,
                         help="[compare] baseline noise floor; faster"
                         " configs never flag regressions")
    p_bench.set_defaults(func=_cmd_bench)

    p_report = sub.add_parser(
        "report", help="pretty-print or validate saved run-reports"
    )
    p_report.add_argument("path", help="a .json run-report or .jsonl stream")
    p_report.add_argument("--validate", action="store_true",
                          help="schema-check only (CI smoke gate)")
    p_report.set_defaults(func=_cmd_report)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        configure_logging(args.log_level, json_output=args.log_json or None)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
