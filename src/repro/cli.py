"""Command-line interface.

Examples::

    csce stats                          # regenerate Table IV
    csce match --dataset dip --pattern-size 6 --variant edge_induced
    csce match --data g.graph --pattern p.graph --engine RapidMatch
    csce capabilities                   # Table III
"""

from __future__ import annotations

import argparse
import sys

from repro.baselines import ALL_BASELINES
from repro.bench.harness import ENGINES, make_engine
from repro.bench.tables import print_table
from repro.core.csce import CSCE
from repro.core.variants import Variant
from repro.datasets import DATASET_NAMES, dataset_table, load_dataset
from repro.graph.io import load_graph
from repro.graph.sampling import sample_pattern


def _cmd_stats(args: argparse.Namespace) -> int:
    rows = dataset_table(scale=args.scale)
    print_table(
        rows,
        [
            "Data Graph",
            "Edge Direction",
            "Vertex Count",
            "Edge Count",
            "Label Count",
            "Average Degree",
            "Max In Degree",
            "Max Out Degree",
        ],
        title=f"Table IV (scale={args.scale})",
    )
    return 0


def _cmd_capabilities(_args: argparse.Namespace) -> int:
    rows = [cls.capability_row() for cls in ALL_BASELINES]
    rows.append(
        {
            "Algorithm": "CSCE",
            "Variant": "E, H, V",
            "Vertex Labels": "Yes",
            "Edge Labels": "Yes",
            "Edge Direction": "U and D",
            "Pattern Size": "Up to 2000",
        }
    )
    print_table(rows, title="Table III: algorithm capabilities")
    return 0


def _cmd_match(args: argparse.Namespace) -> int:
    if args.data:
        graph = load_graph(args.data)
    elif args.dataset:
        graph = load_dataset(args.dataset, scale=args.scale)
    else:
        print("error: provide --data FILE or --dataset NAME", file=sys.stderr)
        return 2
    if args.pattern:
        pattern = load_graph(args.pattern)
    else:
        pattern = sample_pattern(
            graph, args.pattern_size, rng=args.seed, style=args.pattern_style
        )
    engine = make_engine(args.engine, graph)
    result = engine.match(
        pattern,
        args.variant,
        count_only=not args.enumerate,
        max_embeddings=args.limit,
        time_limit=args.time_limit,
    )
    print(f"engine      : {args.engine}")
    print(f"variant     : {result.variant}")
    print(f"pattern     : |V|={pattern.num_vertices} |E|={pattern.num_edges}")
    print(f"embeddings  : {result.count}"
          + (" (truncated)" if result.truncated else "")
          + (" (timed out)" if result.timed_out else ""))
    print(f"total time  : {result.total_seconds:.4f} s"
          f" (read {result.read_seconds:.4f}, plan {result.plan_seconds:.4f},"
          f" execute {result.elapsed:.4f})")
    if args.enumerate and result.embeddings:
        shown = result.embeddings[: args.show]
        for i, embedding in enumerate(shown):
            print(f"  #{i}: {embedding}")
        if len(result.embeddings) > len(shown):
            print(f"  ... {len(result.embeddings) - len(shown)} more")
    return 0


def _cmd_plan(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, scale=args.scale)
    pattern = sample_pattern(
        graph, args.pattern_size, rng=args.seed, style=args.pattern_style
    )
    engine = CSCE(graph)
    plan = engine.build_plan(pattern, args.variant, planner=args.planner)
    print(plan.describe())
    print(f"clusters     : {plan.task_clusters.num_clusters}"
          f" (read {plan.task_clusters.read_seconds:.4f} s)")
    print(f"plan time    : {plan.plan_seconds:.4f} s")
    stats = engine.sce_report(pattern, args.variant)
    print(f"SCE          : {stats.occurrence:.0%} of pattern vertices,"
          f" cluster share {stats.cluster_ratio:.0%}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from repro.bench.harness import average_by, sweep
    from repro.graph.sampling import sample_pattern_suite

    graph = load_dataset(args.dataset, scale=args.scale)
    suite = sample_pattern_suite(
        graph,
        args.sizes,
        per_size=args.patterns,
        style=args.pattern_style,
        seed=args.seed,
    )
    patterns = [p for size in args.sizes for p in suite[size]]
    for i, p in enumerate(patterns):
        p.name = f"{p.name}#{i}"
    records = sweep(
        "cli",
        graph,
        patterns,
        args.engines,
        args.variant,
        time_limit=args.time_limit,
        max_embeddings=args.limit,
    )
    print_table(
        [r.row() for r in records],
        ["engine", "size", "embeddings", "total_s", "throughput", "status"],
        title=f"{args.dataset} / {args.variant} / sizes {args.sizes}",
    )
    summary = average_by(records, key=lambda r: (r.engine, r.pattern_size))
    rows = [
        {
            "engine": engine,
            "size": size,
            "mean_total_s": round(stats["total_s"], 4),
            "mean_throughput": round(stats["throughput"], 1),
            "timeouts": stats["timeouts"],
        }
        for (engine, size), stats in sorted(summary.items())
    ]
    print_table(rows, title="averages")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="csce",
        description="CSCE subgraph matching (ICDE 2024 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_stats = sub.add_parser("stats", help="regenerate Table IV dataset statistics")
    p_stats.add_argument("--scale", type=float, default=0.5)
    p_stats.set_defaults(func=_cmd_stats)

    p_caps = sub.add_parser("capabilities", help="print Table III")
    p_caps.set_defaults(func=_cmd_capabilities)

    p_match = sub.add_parser("match", help="match a pattern in a data graph")
    p_match.add_argument("--data", help="data graph file (.graph format)")
    p_match.add_argument(
        "--dataset", choices=DATASET_NAMES, help="built-in dataset stand-in"
    )
    p_match.add_argument("--scale", type=float, default=0.5)
    p_match.add_argument("--pattern", help="pattern graph file")
    p_match.add_argument("--pattern-size", type=int, default=8)
    p_match.add_argument(
        "--pattern-style", choices=("induced", "dense", "sparse"), default="induced"
    )
    p_match.add_argument("--seed", type=int, default=0)
    p_match.add_argument(
        "--variant",
        default="edge_induced",
        choices=[v.value for v in Variant],
    )
    p_match.add_argument("--engine", default="CSCE", choices=sorted(ENGINES))
    p_match.add_argument("--enumerate", action="store_true",
                         help="materialize embeddings instead of counting")
    p_match.add_argument("--show", type=int, default=5,
                         help="embeddings to display with --enumerate")
    p_match.add_argument("--limit", type=int, default=None)
    p_match.add_argument("--time-limit", type=float, default=60.0)
    p_match.set_defaults(func=_cmd_match)

    p_plan = sub.add_parser("plan", help="show the optimized matching plan")
    p_plan.add_argument("--dataset", choices=DATASET_NAMES, required=True)
    p_plan.add_argument("--scale", type=float, default=0.5)
    p_plan.add_argument("--pattern-size", type=int, default=8)
    p_plan.add_argument(
        "--pattern-style", choices=("induced", "dense", "sparse"), default="induced"
    )
    p_plan.add_argument("--seed", type=int, default=0)
    p_plan.add_argument(
        "--variant",
        default="edge_induced",
        choices=[v.value for v in Variant],
    )
    p_plan.add_argument("--planner", default="csce",
                        choices=("csce", "ri_cluster", "ri", "rm"))
    p_plan.set_defaults(func=_cmd_plan)

    p_bench = sub.add_parser(
        "bench", help="sweep engines over sampled patterns and print a table"
    )
    p_bench.add_argument("--dataset", choices=DATASET_NAMES, required=True)
    p_bench.add_argument("--scale", type=float, default=0.25)
    p_bench.add_argument("--sizes", type=int, nargs="+", default=[4, 8])
    p_bench.add_argument("--patterns", type=int, default=2,
                         help="patterns sampled per size")
    p_bench.add_argument(
        "--pattern-style", choices=("induced", "dense", "sparse"), default="induced"
    )
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.add_argument(
        "--variant",
        default="edge_induced",
        choices=[v.value for v in Variant],
    )
    p_bench.add_argument("--engines", nargs="+", default=["CSCE"],
                         choices=sorted(ENGINES))
    p_bench.add_argument("--limit", type=int, default=20_000)
    p_bench.add_argument("--time-limit", type=float, default=2.0)
    p_bench.set_defaults(func=_cmd_bench)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
