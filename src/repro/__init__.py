"""CSCE — Large Subgraph Matching on Heterogeneous Graphs (ICDE 2024).

A from-scratch reproduction of the paper's full system:

* :class:`~repro.graph.Graph` — heterogeneous graphs (vertex/edge labels,
  per-edge direction);
* :class:`~repro.ccsr.CCSRStore` — clustered compressed sparse rows;
* :class:`~repro.core.CSCE` — the matching engine (GCF + SCE + LDSF) for the
  edge-induced, vertex-induced, and homomorphic variants;
* :mod:`repro.baselines` — re-implemented comparison engines;
* :mod:`repro.datasets` — scaled synthetic stand-ins for the evaluation
  datasets;
* :mod:`repro.analysis` — the higher-order clustering case study.

Quickstart::

    from repro import CSCE, Graph

    g = Graph.from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)])
    p = Graph.from_edges(3, [(0, 1), (1, 2)])
    print(CSCE(g).match(p).count)
"""

from repro.graph import Graph, Edge, load_graph, save_graph, sample_pattern
from repro.ccsr import CCSRStore
from repro.core import CSCE, MatchResult, Plan, Variant
from repro.engine import EmbeddingStream, MatchSession, PhysicalPlan
from repro.errors import (
    ReproError,
    GraphError,
    FormatError,
    PlanError,
    VariantError,
    LimitExceeded,
)

__version__ = "1.0.0"

__all__ = [
    "Graph",
    "Edge",
    "load_graph",
    "save_graph",
    "sample_pattern",
    "CCSRStore",
    "CSCE",
    "MatchResult",
    "Plan",
    "Variant",
    "EmbeddingStream",
    "MatchSession",
    "PhysicalPlan",
    "ReproError",
    "GraphError",
    "FormatError",
    "PlanError",
    "VariantError",
    "LimitExceeded",
    "__version__",
]
