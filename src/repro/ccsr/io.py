"""CCSR store persistence.

The paper's workflow (Fig. 2) builds ``G_C`` offline, once, to serve all
subsequent matching tasks — and since ``G_C`` is equivalent to ``G``, the
original graph is not kept. That story needs an on-disk artifact: this
module saves and loads a :class:`~repro.ccsr.store.CCSRStore` so the
offline clustering cost is paid once per data graph, not once per process.

Format: a single ``.npz`` archive. Arrays hold the compressed CSR data
(rows, counts, cols per cluster and direction); a small JSON header carries
the cluster keys, vertex labels, and graph metadata. Labels survive the
round trip with their types (int vs str) via JSON encoding.
"""

from __future__ import annotations

import io
import json
import logging
import os
from typing import Any, Hashable

import numpy as np

logger = logging.getLogger(__name__)

from repro.ccsr.cluster import Cluster, CompressedCSR
from repro.ccsr.key import ClusterKey
from repro.ccsr.store import CCSRStore
from repro.errors import FormatError

_FORMAT_VERSION = 1


def _encode_label(label: Hashable) -> list:
    """JSON-safe tagged encoding preserving int/str/None label types."""
    if label is None:
        return ["n"]
    if isinstance(label, bool):
        raise FormatError("boolean labels are not supported by the store format")
    if isinstance(label, int):
        return ["i", label]
    if isinstance(label, str):
        return ["s", label]
    raise FormatError(
        f"label {label!r} of type {type(label).__name__} cannot be persisted;"
        " use int or str labels"
    )


def _decode_label(tagged: list) -> Hashable:
    kind = tagged[0]
    if kind == "n":
        return None
    if kind == "i":
        return int(tagged[1])
    if kind == "s":
        return str(tagged[1])
    raise FormatError(f"unknown label tag {kind!r}")


def _csr_arrays(csr: CompressedCSR, prefix: str) -> dict[str, np.ndarray]:
    return {
        f"{prefix}_rows": csr.rows,
        f"{prefix}_counts": csr.row_counts,
        f"{prefix}_cols": csr.cols,
    }


def _csr_from_arrays(
    archive: np.lib.npyio.NpzFile, prefix: str, num_vertices: int
) -> CompressedCSR:
    csr = CompressedCSR.__new__(CompressedCSR)
    csr.num_vertices = num_vertices
    csr.rows = archive[f"{prefix}_rows"].astype(np.int64)
    csr.row_counts = archive[f"{prefix}_counts"].astype(np.int64)
    csr.cols = archive[f"{prefix}_cols"].astype(np.int64)
    csr._offsets = np.concatenate(([0], np.cumsum(csr.row_counts))).astype(np.int64)
    csr.full_offsets = None
    return csr


def save_store(
    store: CCSRStore, path: str | os.PathLike, obs: Any = None
) -> None:
    """Write a store to ``path`` as an ``.npz`` archive.

    ``obs`` (a :class:`repro.obs.Observation`) records a ``ccsr.save``
    span with cluster count and on-disk size.
    """
    from repro.obs import NULL_OBS

    with (obs or NULL_OBS).tracer.span("ccsr.save", path=str(path)) as span:
        _save_store(store, path)
        span.set("clusters", store.num_clusters)
        try:
            span.set("bytes", os.path.getsize(path))
        except OSError:
            pass
    logger.debug("saved store %s (%d clusters) to %s",
                 store.name, store.num_clusters, path)


def _save_store(store: CCSRStore, path: str | os.PathLike) -> None:
    arrays: dict[str, np.ndarray] = {}
    cluster_meta = []
    for index, (key, cluster) in enumerate(sorted(
        store.clusters.items(), key=lambda item: str(item[0])
    )):
        prefix = f"c{index}"
        arrays.update(_csr_arrays(cluster.out_csr, f"{prefix}_out"))
        if cluster.in_csr is not None:
            arrays.update(_csr_arrays(cluster.in_csr, f"{prefix}_in"))
        cluster_meta.append(
            {
                "prefix": prefix,
                "src_label": _encode_label(key.src_label),
                "dst_label": _encode_label(key.dst_label),
                "edge_label": _encode_label(key.edge_label),
                "directed": key.directed,
            }
        )
    header = {
        "format_version": _FORMAT_VERSION,
        "name": store.name,
        "num_vertices": store.num_vertices,
        "num_edges": store.num_edges,
        "vertex_labels": [_encode_label(lbl) for lbl in store.vertex_labels],
        "clusters": cluster_meta,
    }
    arrays["header"] = np.frombuffer(
        json.dumps(header).encode("utf-8"), dtype=np.uint8
    )
    with open(path, "wb") as handle:
        np.savez_compressed(handle, **arrays)


def load_store(path: str | os.PathLike, obs: Any = None) -> CCSRStore:
    """Load a store previously written by :func:`save_store`.

    ``obs`` (a :class:`repro.obs.Observation`) records a ``ccsr.load``
    span with the archive size and cluster count.
    """
    from repro.obs import NULL_OBS

    with (obs or NULL_OBS).tracer.span("ccsr.load", path=str(path)) as span:
        store = _load_store(path)
        span.set("clusters", store.num_clusters)
        try:
            span.set("bytes", os.path.getsize(path))
        except OSError:
            pass
    logger.debug("loaded store %s (%d clusters) from %s",
                 store.name, store.num_clusters, path)
    return store


def _load_store(path: str | os.PathLike) -> CCSRStore:
    with np.load(path) as archive:
        try:
            header = json.loads(bytes(archive["header"]).decode("utf-8"))
        except KeyError:
            raise FormatError(f"{path}: not a CCSR store archive") from None
        if header.get("format_version") != _FORMAT_VERSION:
            raise FormatError(
                f"{path}: unsupported store format version"
                f" {header.get('format_version')!r}"
            )
        store = CCSRStore.__new__(CCSRStore)
        store.name = header["name"]
        store.num_vertices = int(header["num_vertices"])
        store.num_edges = int(header["num_edges"])
        store.vertex_labels = [
            _decode_label(tagged) for tagged in header["vertex_labels"]
        ]
        from collections import Counter

        store.label_frequency = Counter(store.vertex_labels)
        store.clusters = {}
        store._pair_index = {}
        for meta in header["clusters"]:
            key = ClusterKey(
                _decode_label(meta["src_label"]),
                _decode_label(meta["dst_label"]),
                _decode_label(meta["edge_label"]),
                bool(meta["directed"]),
            )
            cluster = Cluster.__new__(Cluster)
            cluster.key = key
            cluster.out_csr = _csr_from_arrays(
                archive, f"{meta['prefix']}_out", store.num_vertices
            )
            if key.directed:
                cluster.in_csr = _csr_from_arrays(
                    archive, f"{meta['prefix']}_in", store.num_vertices
                )
            else:
                cluster.in_csr = None
            store.clusters[key] = cluster
            pair = frozenset((key.src_label, key.dst_label))
            store._pair_index.setdefault(pair, []).append(key)
        store.build_seconds = 0.0
        store.version = 0
    return store


def store_file_size(store: CCSRStore) -> int:
    """Bytes the store occupies when serialized (without touching disk)."""
    buffer = io.BytesIO()
    arrays: dict[str, np.ndarray] = {}
    for index, cluster in enumerate(store.clusters.values()):
        arrays.update(_csr_arrays(cluster.out_csr, f"c{index}_out"))
        if cluster.in_csr is not None:
            arrays.update(_csr_arrays(cluster.in_csr, f"c{index}_in"))
    np.savez_compressed(buffer, **arrays)
    return buffer.getbuffer().nbytes
