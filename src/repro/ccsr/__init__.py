"""Clustered Compressed Sparse Row (CCSR) — the paper's Section IV.

A data graph is stored as a set of *clusters*, one per class of mutually
isomorphic edges (same source label, destination label, edge label, and
directedness). Each cluster is a CSR whose row index is run-length
compressed; :func:`~repro.ccsr.store.CCSRStore.read` (Algorithm 1) selects
and decompresses only the clusters a given matching task needs.
"""

from repro.ccsr.key import ClusterKey, cluster_key_for_edge, cluster_key_for_labels
from repro.ccsr.cluster import CompressedCSR, Cluster
from repro.ccsr.store import CCSRStore, TaskClusters
from repro.ccsr.io import load_store, save_store, store_file_size

__all__ = [
    "ClusterKey",
    "cluster_key_for_edge",
    "cluster_key_for_labels",
    "CompressedCSR",
    "Cluster",
    "CCSRStore",
    "TaskClusters",
    "load_store",
    "save_store",
    "store_file_size",
]
