"""One edge-isomorphism cluster and its compressed CSR arrays.

Section IV: a cluster is stored as a CSR — a row index ``I_R`` and a column
index ``I_C``. Unlike the standard CSR whose ``I_R`` has one slot per graph
vertex (total ``2c(|V|+1)`` across ``c`` clusters), the paper's variant
run-length compresses ``I_R`` so that each edge contributes at most two
integers, bounding the total row-index storage by ``4|E|``. Reading a
cluster for a task *decompresses* it back into a standard CSR for O(1)
neighbor lookup.
"""

from __future__ import annotations

from typing import Iterator, Sequence

import numpy as np

from repro.ccsr.key import ClusterKey

_EMPTY = np.empty(0, dtype=np.int64)


class CompressedCSR:
    """A CSR over one direction of a cluster, stored compressed.

    Compressed form (always present):

    * ``rows`` — sorted distinct source vertices that have at least one edge,
    * ``row_counts`` — the run-length "repeat count": the degree of each row,
    * ``cols`` — neighbor ids, concatenated per row, each run sorted.

    Decompressed form (built on demand by :meth:`decompress`):

    * ``full_offsets`` — the standard ``I_R`` of length ``num_vertices + 1``
      giving O(1) ``cols[I_R[v]:I_R[v+1]]`` neighbor slices.
    """

    __slots__ = ("rows", "row_counts", "cols", "_offsets", "full_offsets", "num_vertices")

    def __init__(
        self, adjacency: dict[int, list[int]], num_vertices: int
    ) -> None:
        rows = sorted(adjacency)
        self.num_vertices = num_vertices
        self.rows = np.asarray(rows, dtype=np.int64)
        self.row_counts = np.asarray(
            [len(adjacency[r]) for r in rows], dtype=np.int64
        )
        cols: list[int] = []
        for r in rows:
            cols.extend(sorted(adjacency[r]))
        self.cols = np.asarray(cols, dtype=np.int64)
        # Offsets into cols per *stored* row; len(rows)+1.
        self._offsets = np.concatenate(
            ([0], np.cumsum(self.row_counts))
        ).astype(np.int64)
        self.full_offsets: np.ndarray | None = None

    # ------------------------------------------------------------------
    @property
    def num_entries(self) -> int:
        """Length of ``I_C`` — the paper's cluster size."""
        return int(self.cols.shape[0])

    @property
    def is_decompressed(self) -> bool:
        return self.full_offsets is not None

    @property
    def compressed_index_length(self) -> int:
        """Integers in the compressed ``I_R`` (value + repeat count)."""
        return 2 * int(self.rows.shape[0])

    def standard_index_length(self) -> int:
        """Integers a standard (uncompressed) ``I_R`` would need."""
        return self.num_vertices + 1

    def nbytes(self) -> int:
        """Approximate resident bytes of the stored arrays."""
        total = self.rows.nbytes + self.row_counts.nbytes + self.cols.nbytes
        total += self._offsets.nbytes
        if self.full_offsets is not None:
            total += self.full_offsets.nbytes
        return total

    # ------------------------------------------------------------------
    def decompress(self) -> None:
        """Materialize the standard ``I_R`` for O(1) neighbor access."""
        if self.full_offsets is not None:
            return
        full = np.zeros(self.num_vertices + 1, dtype=np.int64)
        if self.rows.shape[0]:
            full[self.rows + 1] = self.row_counts
            np.cumsum(full, out=full)
        self.full_offsets = full

    def neighbors(self, v: int) -> np.ndarray:
        """The sorted neighbor array of ``v`` (empty if none).

        O(1) when decompressed; a binary search over stored rows otherwise.
        """
        if self.full_offsets is not None:
            start, stop = self.full_offsets[v], self.full_offsets[v + 1]
            return self.cols[start:stop]
        idx = np.searchsorted(self.rows, v)
        if idx == self.rows.shape[0] or self.rows[idx] != v:
            return _EMPTY
        return self.cols[self._offsets[idx] : self._offsets[idx + 1]]

    def degree(self, v: int) -> int:
        return int(self.neighbors(v).shape[0])

    def contains(self, src: int, dst: int) -> bool:
        """Binary-search membership test for the edge ``src -> dst``."""
        nbrs = self.neighbors(src)
        idx = np.searchsorted(nbrs, dst)
        return idx < nbrs.shape[0] and nbrs[idx] == dst

    def iter_edges(self) -> Iterator[tuple[int, int]]:
        """Yield every (src, dst) entry stored in this CSR."""
        for i, r in enumerate(self.rows):
            for c in self.cols[self._offsets[i] : self._offsets[i + 1]]:
                yield int(r), int(c)

    def source_vertices(self) -> np.ndarray:
        """Sorted distinct vertices with at least one outgoing entry."""
        return self.rows

    def min_source_degree_vertexes(self) -> np.ndarray:
        return self.rows


class Cluster:
    """One cluster of mutually isomorphic edges.

    Directed clusters keep two CSRs — outgoing (``src``'s out-neighbors) and
    incoming (``dst``'s in-neighbors) — so both traversal directions are
    constant-time. An undirected cluster needs only one CSR because each
    undirected edge is stored in both orientations inside it.
    """

    __slots__ = ("key", "out_csr", "in_csr")

    def __init__(
        self,
        key: ClusterKey,
        edges: Sequence[tuple[int, int]],
        num_vertices: int,
    ) -> None:
        """``edges`` are (src, dst) pairs; for an undirected cluster each
        undirected edge must appear exactly once (either orientation)."""
        self.key = key
        out: dict[int, list[int]] = {}
        if key.directed:
            incoming: dict[int, list[int]] = {}
            for src, dst in edges:
                out.setdefault(src, []).append(dst)
                incoming.setdefault(dst, []).append(src)
            self.out_csr = CompressedCSR(out, num_vertices)
            self.in_csr: CompressedCSR | None = CompressedCSR(incoming, num_vertices)
        else:
            for src, dst in edges:
                out.setdefault(src, []).append(dst)
                out.setdefault(dst, []).append(src)
            self.out_csr = CompressedCSR(out, num_vertices)
            self.in_csr = None

    # ------------------------------------------------------------------
    @property
    def num_entries(self) -> int:
        """|I_C| of the (outgoing) CSR — the paper's cluster size measure."""
        return self.out_csr.num_entries

    @property
    def num_edges(self) -> int:
        """Graph edges in this cluster (an undirected edge counts once)."""
        if self.key.directed:
            return self.out_csr.num_entries
        return self.out_csr.num_entries // 2

    def decompress(self) -> None:
        self.out_csr.decompress()
        if self.in_csr is not None:
            self.in_csr.decompress()

    @property
    def is_decompressed(self) -> bool:
        return self.out_csr.is_decompressed

    def nbytes(self) -> int:
        total = self.out_csr.nbytes()
        if self.in_csr is not None:
            total += self.in_csr.nbytes()
        return total

    # ------------------------------------------------------------------
    def successors(self, v: int) -> np.ndarray:
        """Vertices reachable from ``v`` along this cluster's edges."""
        return self.out_csr.neighbors(v)

    def predecessors(self, v: int) -> np.ndarray:
        """Vertices with an edge into ``v`` in this cluster."""
        if self.in_csr is None:
            return self.out_csr.neighbors(v)
        return self.in_csr.neighbors(v)

    def contains_edge(self, src: int, dst: int) -> bool:
        """True if the cluster stores an edge allowing ``src -> dst``."""
        return self.out_csr.contains(src, dst)

    def touches(self, a: int, b: int) -> bool:
        """True if *any* edge of this cluster connects ``a`` and ``b``
        regardless of direction (used by negation checks)."""
        if self.out_csr.contains(a, b):
            return True
        if self.key.directed:
            return self.out_csr.contains(b, a)
        return False

    def source_vertices(self) -> np.ndarray:
        """Sorted distinct vertices usable as edge sources."""
        return self.out_csr.source_vertices()

    def destination_vertices(self) -> np.ndarray:
        """Sorted distinct vertices usable as edge destinations."""
        if self.in_csr is None:
            return self.out_csr.source_vertices()
        return self.in_csr.source_vertices()

    def iter_directed_entries(self) -> Iterator[tuple[int, int]]:
        """Yield each stored (src, dst) orientation once."""
        return self.out_csr.iter_edges()

    def __repr__(self) -> str:
        return f"<Cluster {self.key} entries={self.num_entries}>"
