"""Cluster identifiers.

The paper (Section IV) identifies a cluster by the labels of both endpoint
vertices, the edge label, and the edge direction. Directed clusters arrange
the vertex labels in the outgoing direction, e.g. ``(A, B, NULL)``;
undirected clusters use the label pair sorted "alphabetically" so that both
orientations of an undirected edge land in the same cluster.
"""

from __future__ import annotations

from typing import Hashable, NamedTuple

from repro.graph.model import Edge


def _label_order_key(label: Hashable) -> tuple[str, str]:
    """A deterministic total order over arbitrary hashable labels.

    Labels of mixed types (ints and strs) cannot be compared directly, so we
    order first by type name and then by string form — the generalization of
    the paper's "sorted alphabetically".
    """
    return (type(label).__name__, str(label))


class ClusterKey(NamedTuple):
    """Identifier of one edge-isomorphism cluster.

    For a directed cluster, ``src_label -> dst_label``. For an undirected
    cluster, ``(src_label, dst_label)`` is the canonically sorted label pair
    (so ``src``/``dst`` carry no orientation meaning).
    """

    src_label: Hashable
    dst_label: Hashable
    edge_label: Hashable
    directed: bool

    def connects(self, label_a: Hashable, label_b: Hashable) -> bool:
        """True if this cluster can hold an edge between these vertex labels
        in *some* direction (used for negation-cluster lookup)."""
        return {self.src_label, self.dst_label} == {label_a, label_b} or (
            self.src_label == label_a and self.dst_label == label_b
        )

    def __str__(self) -> str:
        arrow = "->" if self.directed else "--"
        tag = self.edge_label if self.edge_label is not None else "NULL"
        return f"({self.src_label}{arrow}{self.dst_label}, {tag})"


def cluster_key_for_labels(
    src_label: Hashable,
    dst_label: Hashable,
    edge_label: Hashable,
    directed: bool,
) -> ClusterKey:
    """Build the canonical key for an edge described by its labels.

    For undirected edges the two vertex labels are sorted so that
    ``(A, B)`` and ``(B, A)`` name the same cluster.
    """
    if not directed:
        a, b = sorted((src_label, dst_label), key=_label_order_key)
        return ClusterKey(a, b, edge_label, False)
    return ClusterKey(src_label, dst_label, edge_label, True)


def cluster_key_for_edge(vertex_labels: list, edge: Edge) -> ClusterKey:
    """The canonical key of a concrete graph edge."""
    return cluster_key_for_labels(
        vertex_labels[edge.src], vertex_labels[edge.dst], edge.label, edge.directed
    )
