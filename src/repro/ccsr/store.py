"""The CCSR store (``G_C``) and per-task cluster selection (``G_C*``).

:class:`CCSRStore` clusters every edge of a data graph by its
edge-isomorphism class (Section IV) at build time — the paper's offline
stage. :meth:`CCSRStore.read` implements Algorithm 1 (``ReadCSR``): given a
pattern and an SM variant it selects, decompresses, and indexes exactly the
clusters the task needs, including the *negation clusters* that the
vertex-induced variant uses to reject partial embeddings whose data vertices
are connected where the pattern vertices are not.
"""

from __future__ import annotations

import logging
import time
from collections import Counter
from typing import TYPE_CHECKING, Any, Callable, Hashable, Iterable

from repro.ccsr.cluster import Cluster
from repro.ccsr.key import ClusterKey, cluster_key_for_edge, cluster_key_for_labels
from repro.graph.model import Edge, Graph
from repro.testing import faults

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.core.variants import Variant

logger = logging.getLogger(__name__)

# How a negation check probes a cluster for a data vertex pair (va, vb)
# standing for the pattern pair (u_i, u_j):
FORWARD = "fwd"  # assert no cluster edge va -> vb
REVERSE = "rev"  # assert no cluster edge vb -> va


class NegationCheck:
    """One "this edge must be absent" assertion for a pattern vertex pair."""

    __slots__ = ("cluster", "mode")

    def __init__(self, cluster: Cluster, mode: str) -> None:
        self.cluster = cluster
        self.mode = mode

    def violated(self, va: int, vb: int) -> bool:
        """True if the forbidden data edge exists between ``va`` and ``vb``."""
        if self.mode == FORWARD:
            return self.cluster.contains_edge(va, vb)
        return self.cluster.contains_edge(vb, va)

    def __repr__(self) -> str:
        return f"<NegationCheck {self.cluster.key} {self.mode}>"


class TaskClusters:
    """``G_C*`` — the clusters one (pattern, variant) task uses.

    Attributes
    ----------
    edge_clusters:
        Maps each pattern edge to its cluster, or ``None`` when the data
        graph has no isomorphic edges (the task then has zero embeddings).
    negation_checks:
        For the vertex-induced variant: maps an ordered pattern vertex pair
        ``(u_i, u_j)`` to the cluster probes asserting that *no* unmatched
        data edge may exist between their images.
    read_seconds / bytes_read:
        The decompression overhead measured for Fig. 11.
    """

    def __init__(
        self,
        pattern: Graph,
        variant_name: str,
        edge_clusters: dict[Edge, Cluster | None],
        negation_checks: dict[tuple[int, int], list[NegationCheck]],
        read_seconds: float,
        bytes_read: int,
        data_vertex_labels: list[Hashable] | None = None,
    ) -> None:
        self.pattern = pattern
        self.variant_name = variant_name
        self.edge_clusters = edge_clusters
        self.negation_checks = negation_checks
        self.read_seconds = read_seconds
        self.bytes_read = bytes_read
        self.data_vertex_labels = data_vertex_labels or []

    @property
    def clusters_used(self) -> list[Cluster]:
        seen: dict[int, Cluster] = {}
        for cluster in self.edge_clusters.values():
            if cluster is not None:
                seen[id(cluster)] = cluster
        for checks in self.negation_checks.values():
            for check in checks:
                seen[id(check.cluster)] = check.cluster
        return list(seen.values())

    @property
    def num_clusters(self) -> int:
        return len(self.clusters_used)

    def has_impossible_edge(self) -> bool:
        """True when some pattern edge matched no cluster — zero embeddings."""
        return any(cluster is None for cluster in self.edge_clusters.values())

    def checks_between(self, u_i: int, u_j: int) -> list[NegationCheck]:
        """Negation probes for the ordered pattern pair (u_i, u_j).

        The probes are stored keyed on the ordered pair as built; callers
        pass vertices in the same order they were registered (i < j in
        pattern-vertex id, see ``CCSRStore.read``).
        """
        return self.negation_checks.get((u_i, u_j), [])

    def has_negation_between(self, u_i: int, u_j: int) -> bool:
        """Algorithm 2 line 8: is there any non-empty negation cluster for
        this pattern pair?"""
        a, b = (u_i, u_j) if u_i < u_j else (u_j, u_i)
        return bool(self.negation_checks.get((a, b)))


class CCSRStore:
    """All clusters of a data graph (the paper's ``G_C``).

    Building the store is the offline stage: O(|E|) clustering plus an
    O(|E| log |E|) per-cluster sort. As ``G_C`` is equivalent to ``G``, the
    source :class:`Graph` is not retained.
    """

    def __init__(self, graph: Graph) -> None:
        start = time.perf_counter()
        self.num_vertices = graph.num_vertices
        self.num_edges = graph.num_edges
        self.vertex_labels: list[Hashable] = list(graph.vertex_labels)
        self.label_frequency: Counter = Counter(self.vertex_labels)
        self.name = graph.name

        buckets: dict[ClusterKey, list[tuple[int, int]]] = {}
        labels = self.vertex_labels
        for edge in graph.edges():
            key = cluster_key_for_edge(labels, edge)
            buckets.setdefault(key, []).append((edge.src, edge.dst))
        self.clusters: dict[ClusterKey, Cluster] = {
            key: Cluster(key, pairs, self.num_vertices)
            for key, pairs in buckets.items()
        }
        # Unordered label pair -> cluster keys connecting that pair, for
        # negation lookups and Algorithm 2 line 8.
        self._pair_index: dict[frozenset, list[ClusterKey]] = {}
        for key in self.clusters:
            pair = frozenset((key.src_label, key.dst_label))
            self._pair_index.setdefault(pair, []).append(key)
        self.build_seconds = time.perf_counter() - start
        #: Bumped by every incremental update. Updates rebuild cluster
        #: objects, so anything holding references resolved against the old
        #: clusters — compiled plans in a :class:`repro.engine.MatchSession`
        #: cache above all — keys on this counter to avoid stale reuse.
        self.version = 0

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_clusters(self) -> int:
        return len(self.clusters)

    def total_column_entries(self) -> int:
        """Sum of |I_C| over all CSRs; the paper proves this is 2|E|."""
        total = 0
        for cluster in self.clusters.values():
            total += cluster.out_csr.num_entries
            if cluster.in_csr is not None:
                total += cluster.in_csr.num_entries
        return total

    def total_compressed_row_entries(self) -> int:
        """Integers across all compressed ``I_R`` arrays (bounded by 4|E|)."""
        total = 0
        for cluster in self.clusters.values():
            total += cluster.out_csr.compressed_index_length
            if cluster.in_csr is not None:
                total += cluster.in_csr.compressed_index_length
        return total

    def total_standard_row_entries(self) -> int:
        """What the uncompressed row indices would cost: 2c(|V|+1)-ish."""
        total = 0
        for cluster in self.clusters.values():
            total += cluster.out_csr.standard_index_length()
            if cluster.in_csr is not None:
                total += cluster.in_csr.standard_index_length()
        return total

    def nbytes(self) -> int:
        return sum(cluster.nbytes() for cluster in self.clusters.values())

    def cluster_for(
        self,
        src_label: Hashable,
        dst_label: Hashable,
        edge_label: Hashable,
        directed: bool,
    ) -> Cluster | None:
        key = cluster_key_for_labels(src_label, dst_label, edge_label, directed)
        return self.clusters.get(key)

    def clusters_connecting(
        self, label_a: Hashable, label_b: Hashable
    ) -> list[Cluster]:
        """All clusters holding edges between two vertex labels — the
        ``(u_x, u_y)*-clusters`` of Algorithm 1/2."""
        keys = self._pair_index.get(frozenset((label_a, label_b)), [])
        return [self.clusters[k] for k in keys]

    def vertices_with_label(self, label: Hashable) -> list[int]:
        return [
            v for v, lab in enumerate(self.vertex_labels) if lab == label
        ]

    # ------------------------------------------------------------------
    # Incremental updates
    #
    # The paper positions CCSR against graph-database storage (Kùzu),
    # where updates are table stakes. An update touches exactly one
    # cluster — the heterogeneity index localizes the work — and rebuilds
    # that cluster's CSR arrays, leaving every other cluster untouched.
    # ------------------------------------------------------------------
    def insert_vertex(self, label: Hashable = 0) -> int:
        """Append a vertex; returns its id. Invalidates decompressed row
        indices (their length is |V|+1)."""
        self.vertex_labels.append(label)
        self.label_frequency[label] += 1
        self.num_vertices += 1
        for cluster in self.clusters.values():
            cluster.out_csr.num_vertices = self.num_vertices
            cluster.out_csr.full_offsets = None
            if cluster.in_csr is not None:
                cluster.in_csr.num_vertices = self.num_vertices
                cluster.in_csr.full_offsets = None
        self.version += 1
        return self.num_vertices - 1

    def _cluster_edges(self, cluster: Cluster) -> list[tuple[int, int]]:
        """The cluster's edges, one entry per edge (canonical orientation
        for undirected clusters)."""
        if cluster.key.directed:
            return list(cluster.iter_directed_entries())
        return [
            (src, dst)
            for src, dst in cluster.iter_directed_entries()
            if src < dst
        ]

    def insert_edge(
        self,
        src: int,
        dst: int,
        edge_label: Hashable = None,
        directed: bool = False,
    ) -> None:
        """Add one edge, rebuilding only its cluster."""
        from repro.errors import GraphError

        n = self.num_vertices
        if not (0 <= src < n and 0 <= dst < n):
            raise GraphError(f"edge ({src}, {dst}) references a missing vertex")
        if src == dst:
            raise GraphError(f"self-loop on vertex {src} is not allowed")
        key = cluster_key_for_labels(
            self.vertex_labels[src], self.vertex_labels[dst], edge_label, directed
        )
        cluster = self.clusters.get(key)
        if cluster is not None and cluster.contains_edge(src, dst):
            raise GraphError(f"duplicate edge ({src}, {dst}, {edge_label!r})")
        edges = [] if cluster is None else self._cluster_edges(cluster)
        edges.append((src, dst))
        self.clusters[key] = Cluster(key, edges, self.num_vertices)
        if cluster is None:
            pair = frozenset((key.src_label, key.dst_label))
            self._pair_index.setdefault(pair, []).append(key)
        self.num_edges += 1
        self.version += 1

    def remove_edge(
        self,
        src: int,
        dst: int,
        edge_label: Hashable = None,
        directed: bool = False,
    ) -> None:
        """Remove one edge, rebuilding only its cluster (dropping the
        cluster entirely when it empties)."""
        from repro.errors import GraphError

        key = cluster_key_for_labels(
            self.vertex_labels[src] if 0 <= src < self.num_vertices else None,
            self.vertex_labels[dst] if 0 <= dst < self.num_vertices else None,
            edge_label,
            directed,
        )
        cluster = self.clusters.get(key)
        if cluster is None or not cluster.contains_edge(src, dst):
            raise GraphError(
                f"edge ({src}, {dst}, {edge_label!r}, directed={directed})"
                " does not exist"
            )
        canonical = (src, dst) if directed else (min(src, dst), max(src, dst))
        edges = [e for e in self._cluster_edges(cluster) if e != canonical]
        if edges:
            self.clusters[key] = Cluster(key, edges, self.num_vertices)
        else:
            del self.clusters[key]
            pair = frozenset((key.src_label, key.dst_label))
            self._pair_index[pair].remove(key)
            if not self._pair_index[pair]:
                del self._pair_index[pair]
        self.num_edges -= 1
        self.version += 1

    # ------------------------------------------------------------------
    # Algorithm 1: ReadCSR
    # ------------------------------------------------------------------
    def read(
        self,
        pattern: Graph,
        variant: Variant | str,
        obs: Any = None,
        retry: Any = None,
    ) -> TaskClusters:
        """Select and decompress the clusters this task needs (Alg. 1).

        ``variant`` is a :class:`repro.core.Variant` or its string name; only
        ``"vertex_induced"`` changes behaviour here, pulling in negation
        clusters for every pattern vertex pair that is not fully connected
        by pattern edges.

        ``obs`` (a :class:`repro.obs.Observation`) records the ``read``
        span with one ``read.cluster`` child per decompressed cluster
        (rows/bytes attributes) and bumps the ``ccsr.*`` read counters.

        ``retry`` is a :class:`repro.engine.governor.RetryPolicy` (or
        ``None`` for a fresh default policy): each cluster decompression
        that raises a transient :class:`~repro.errors.ClusterReadError`
        is retried under bounded, seeded-jitter exponential backoff —
        absorbed faults bump ``ccsr.read_retries`` instead of killing the
        read. Callers holding a governor deadline pass
        ``policy.with_deadline(...)`` so backoff never sleeps past it.
        """
        from repro.errors import ClusterReadError
        from repro.obs import NULL_OBS

        obs = obs or NULL_OBS
        if retry is None:
            # Deferred import: ccsr sits below the engine layer, so the
            # policy class is bound lazily at the first read.
            from repro.engine.governor import RetryPolicy

            retry = RetryPolicy(seed=0)
        tracer = obs.tracer
        counters = obs.counters
        profile = getattr(obs, "profile", None)
        variant_name = getattr(variant, "value", str(variant))
        with tracer.span("read", variant=variant_name) as read_span:
            start = time.perf_counter()
            bytes_read = 0
            rows_read = 0
            decompressed: set[int] = set()

            def on_retry(attempt: int, delay: float) -> None:
                if counters.enabled:
                    counters.inc("ccsr.read_retries")

            def use(cluster: Cluster) -> Cluster:
                nonlocal bytes_read, rows_read
                if id(cluster) not in decompressed:

                    def decompress_once() -> None:
                        if faults.ACTIVE is not None:
                            # Chaos-suite hook: a production store would
                            # hit I/O here reading a spilled cluster.
                            faults.fire(
                                "ccsr.read_cluster", key=str(cluster.key)
                            )
                        cluster.decompress()

                    with tracer.span(
                        "read.cluster", key=str(cluster.key)
                    ) as cluster_span:
                        retry.run(
                            decompress_once,
                            retry_on=(ClusterReadError,),
                            on_retry=on_retry,
                        )
                        nbytes = cluster.nbytes()
                        rows = cluster.num_entries
                        cluster_span.set("rows", rows)
                        cluster_span.set("bytes", nbytes)
                    decompressed.add(id(cluster))
                    bytes_read += nbytes
                    rows_read += rows
                    if profile is not None and profile.enabled:
                        profile.record_cluster(str(cluster.key), rows, nbytes)
                return cluster

            labels = pattern.vertex_labels
            edge_clusters: dict[Edge, Cluster | None] = {}
            for edge in pattern.edges():
                key = cluster_key_for_edge(labels, edge)
                cluster = self.clusters.get(key)
                edge_clusters[edge] = use(cluster) if cluster is not None else None

            negation: dict[tuple[int, int], list[NegationCheck]] = {}
            if variant_name == "vertex_induced":
                for u_i in pattern.vertices():
                    for u_j in range(u_i + 1, pattern.num_vertices):
                        checks = self._negation_checks_for_pair(
                            pattern, u_i, u_j, use
                        )
                        if checks:
                            negation[(u_i, u_j)] = checks

            read_seconds = time.perf_counter() - start
            read_span.set("clusters", len(decompressed))
            read_span.set("bytes_read", bytes_read)
            if counters.enabled:
                counters.inc("ccsr.clusters_read", len(decompressed))
                counters.inc("ccsr.bytes_read", bytes_read)
                counters.inc("ccsr.rows_read", rows_read)
        if logger.isEnabledFor(logging.DEBUG):
            logger.debug(
                "ReadCSR %s: %d clusters, %d bytes in %.4fs",
                variant_name,
                len(decompressed),
                bytes_read,
                read_seconds,
            )
        return TaskClusters(
            pattern,
            variant_name,
            edge_clusters,
            negation,
            read_seconds=read_seconds,
            bytes_read=bytes_read,
            data_vertex_labels=self.vertex_labels,
        )

    def _negation_checks_for_pair(
        self,
        pattern: Graph,
        u_i: int,
        u_j: int,
        use: Callable[[Cluster], Cluster],
    ) -> list[NegationCheck]:
        """Build the "must be absent" probes for one pattern vertex pair.

        Every cluster orientation that could connect the pair's labels is
        forbidden unless a pattern edge between ``u_i`` and ``u_j`` claims
        exactly that orientation and edge label — strict induced-isomorphism
        semantics (``(u, u') in E_P`` iff the mapped edge exists, Section II).
        """
        label_i = pattern.vertex_label(u_i)
        label_j = pattern.vertex_label(u_j)
        # Orientations the pattern itself requires -> exempt from negation.
        allowed: set[tuple[Hashable, bool, str]] = set()
        for e in pattern.edges_between(u_i, u_j):
            if not e.directed:
                allowed.add((e.label, False, FORWARD))
                allowed.add((e.label, False, REVERSE))
            elif (e.src, e.dst) == (u_i, u_j):
                allowed.add((e.label, True, FORWARD))
            else:
                allowed.add((e.label, True, REVERSE))

        checks: list[NegationCheck] = []
        for key in self._pair_index.get(frozenset((label_i, label_j)), []):
            cluster = self.clusters[key]
            if not key.directed:
                if (key.edge_label, False, FORWARD) not in allowed:
                    checks.append(NegationCheck(use(cluster), FORWARD))
                continue
            if key.src_label == label_i and key.dst_label == label_j:
                if (key.edge_label, True, FORWARD) not in allowed:
                    checks.append(NegationCheck(use(cluster), FORWARD))
            if key.src_label == label_j and key.dst_label == label_i:
                if (key.edge_label, True, REVERSE) not in allowed:
                    checks.append(NegationCheck(use(cluster), REVERSE))
        return checks

    # ------------------------------------------------------------------
    def iter_all_edges(self) -> Iterable[tuple[int, int, Hashable, bool]]:
        """Reconstruct the original edge set (G_C is equivalent to G)."""
        for key, cluster in self.clusters.items():
            if key.directed:
                for src, dst in cluster.iter_directed_entries():
                    yield src, dst, key.edge_label, True
            else:
                for src, dst in cluster.iter_directed_entries():
                    if src < dst:  # each undirected edge is stored twice
                        yield src, dst, key.edge_label, False

    def to_graph(self) -> Graph:
        """Rebuild a :class:`Graph` from the clusters (round-trip check)."""
        graph = Graph(name=self.name)
        graph.add_vertices(self.vertex_labels)
        for src, dst, label, directed in self.iter_all_edges():
            graph.add_edge(src, dst, label, directed)
        return graph

    def __repr__(self) -> str:
        return (
            f"<CCSRStore |V|={self.num_vertices} |E|={self.num_edges}"
            f" clusters={self.num_clusters}>"
        )
