"""Seeded fault injection for the chaos suite.

Production code exposes named *fault sites* — well-chosen points where a
real deployment could fail — by calling :func:`fire`:

====================== ======================================================
site                   where / what an injected fault simulates
====================== ======================================================
``ccsr.read_cluster``  :meth:`repro.ccsr.store.CCSRStore.read` decompressing
                       one cluster: a failed read of a spilled cluster
``engine.tick``        the executor/counter frame machines, once per
                       governed tick: scheduler stalls (slowdowns) and
                       operator interrupts (cancellation)
``governor.memory``    the governor's cooperative memory sample: returns
                       extra MiB to add, simulating memory pressure
``pool.worker_beat``   a pool worker's liveness beat (fired once when a
                       work unit starts and again on every heartbeat, with
                       ``worker``/``unit`` context): hung or poisoned
                       workers for the stall watchdog and quarantine paths
====================== ======================================================

When no injector is installed, a site costs one global load and a ``None``
check — nothing measurable. Tests install a :class:`FaultInjector` (a
context manager) carrying seeded, ordered rules::

    from repro.testing import faults

    injector = FaultInjector(seed=7).on(
        "ccsr.read_cluster", faults.fail_cluster_read, after=1
    )
    with injector:
        engine.match(pattern)   # second cluster read raises ClusterReadError

Rules fire deterministically given the seed: ``after`` skips the first N
matching events, ``times`` caps how often a rule acts, and ``probability``
draws from the injector's private :class:`random.Random` so a chaos run is
reproducible from its seed alone.

Layering: this module may be imported from production code (the sites
above), so it depends only on :mod:`repro.errors`.
"""

from __future__ import annotations

import random
import threading
import time
from collections import Counter
from typing import Any, Callable

from repro.errors import ClusterReadError, ReproError

#: The installed injector, or ``None`` (the production state).
ACTIVE: "FaultInjector | None" = None

_INSTALL_LOCK = threading.Lock()


def active() -> bool:
    """True when a fault injector is installed (hot paths poll this once
    per run to decide whether they must tick densely)."""
    return ACTIVE is not None


def fire(site: str, **ctx) -> Any:
    """Trigger a fault site. Returns the last non-``None`` action result
    (used by value-returning sites such as ``governor.memory``); raises
    whatever a failing action raises. No-op when no injector is installed.
    """
    injector = ACTIVE
    if injector is None:
        return None
    return injector.fire(site, **ctx)


# ----------------------------------------------------------------------
# Built-in actions. An action is ``callable(rule, site, ctx) -> Any``;
# raising propagates out of the fault site, a non-None return value is
# handed back to the site.
# ----------------------------------------------------------------------
def fail_cluster_read(rule: "FaultRule", site: str, ctx: dict) -> None:
    """Raise :class:`ClusterReadError` — a failed cluster decompression."""
    key = ctx.get("key", "?")
    raise ClusterReadError(f"injected cluster read failure at {site}: {key}")


def slowdown(seconds: float) -> Callable:
    """An action that sleeps, simulating I/O stalls or CPU contention."""

    def action(rule: "FaultRule", site: str, ctx: dict) -> None:
        time.sleep(seconds)

    action.__name__ = f"slowdown({seconds})"
    return action


def hang(seconds: float) -> Callable:
    """An action that blocks for ``seconds`` — a wedged worker.

    Unlike :func:`slowdown` (a brief, recoverable stall) this simulates a
    worker that stops making progress entirely: aimed at the
    ``pool.worker_beat`` site, it freezes that worker's heartbeat stream
    so the parent's stall watchdog escalates (``worker_stall`` event,
    SIGKILL, re-dispatch). Gate it on ``ctx["worker"]`` / the
    ``REPRO_WORKER`` environment variable to hang one specific worker.
    """

    def action(rule: "FaultRule", site: str, ctx: dict) -> None:
        time.sleep(seconds)

    action.__name__ = f"hang({seconds})"
    return action


def flaky_cluster_read(times: int) -> Callable:
    """An action that fails the first ``times`` invocations with
    :class:`ClusterReadError`, then succeeds — a transient I/O fault for
    exercising :class:`~repro.engine.governor.RetryPolicy` at the
    ``ccsr.read_cluster`` site.

    The failure budget is private to the returned action (not the rule),
    so one action instance fails exactly ``times`` reads in the process
    that fires it regardless of rule gating.
    """

    state = {"remaining": times}

    def action(rule: "FaultRule", site: str, ctx: dict) -> None:
        if state["remaining"] > 0:
            state["remaining"] -= 1
            key = ctx.get("key", "?")
            raise ClusterReadError(
                f"injected transient cluster read failure at {site}: {key}"
                f" ({state['remaining']} more to come)"
            )

    action.__name__ = f"flaky_cluster_read({times})"
    return action


def memory_spike(mb: float) -> Callable:
    """An action returning extra MiB for the ``governor.memory`` site —
    simulated memory pressure without actually allocating."""

    def action(rule: "FaultRule", site: str, ctx: dict) -> float:
        return float(mb)

    action.__name__ = f"memory_spike({mb})"
    return action


def cancel(token, reason: str = "injected cancellation") -> Callable:
    """An action tripping a :class:`~repro.engine.governor.CancelToken` —
    a mid-stream operator interrupt."""

    def action(rule: "FaultRule", site: str, ctx: dict) -> None:
        token.trip(reason)

    action.__name__ = "cancel"
    return action


def raise_error(exc_factory: Callable[[], ReproError]) -> Callable:
    """An action raising ``exc_factory()`` — for bespoke failure types."""

    def action(rule: "FaultRule", site: str, ctx: dict) -> None:
        raise exc_factory()

    action.__name__ = "raise_error"
    return action


class FaultRule:
    """One injection rule: at ``site``, run ``action`` under gating."""

    __slots__ = ("site", "action", "after", "times", "probability", "seen", "acted")

    def __init__(
        self,
        site: str,
        action: Callable,
        after: int = 0,
        times: int | None = None,
        probability: float = 1.0,
    ):
        self.site = site
        self.action = action
        self.after = after
        self.times = times
        self.probability = probability
        self.seen = 0
        self.acted = 0

    def __repr__(self) -> str:
        name = getattr(self.action, "__name__", repr(self.action))
        return (
            f"<FaultRule {self.site} -> {name}"
            f" after={self.after} times={self.times} p={self.probability}>"
        )


class FaultInjector:
    """A seeded registry of fault rules, installable as a context manager.

    ``fired`` counts events per site (matched or not), so tests can assert
    that a site was actually exercised even when no rule acted.
    """

    def __init__(self, seed: int = 0):
        self.rng = random.Random(seed)
        self.rules: list[FaultRule] = []
        self.fired: Counter = Counter()

    # ------------------------------------------------------------------
    def on(
        self,
        site: str,
        action: Callable,
        after: int = 0,
        times: int | None = None,
        probability: float = 1.0,
    ) -> "FaultInjector":
        """Register a rule; returns ``self`` for chaining."""
        self.rules.append(FaultRule(site, action, after, times, probability))
        return self

    def fire(self, site: str, **ctx) -> Any:
        self.fired[site] += 1
        result: Any = None
        for rule in self.rules:
            if rule.site != site:
                continue
            rule.seen += 1
            if rule.seen <= rule.after:
                continue
            if rule.times is not None and rule.acted >= rule.times:
                continue
            if rule.probability < 1.0 and self.rng.random() >= rule.probability:
                continue
            rule.acted += 1
            value = rule.action(rule, site, ctx)
            if value is not None:
                result = value
        return result

    # ------------------------------------------------------------------
    def install(self) -> "FaultInjector":
        global ACTIVE
        with _INSTALL_LOCK:
            if ACTIVE is not None and ACTIVE is not self:
                raise RuntimeError("another FaultInjector is already installed")
            ACTIVE = self
        return self

    def uninstall(self) -> None:
        global ACTIVE
        with _INSTALL_LOCK:
            if ACTIVE is self:
                ACTIVE = None

    def __enter__(self) -> "FaultInjector":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.uninstall()

    def __repr__(self) -> str:
        return f"<FaultInjector rules={len(self.rules)} fired={dict(self.fired)}>"
