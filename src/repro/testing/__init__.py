"""Test-support machinery that ships with the library.

Currently this is the seeded fault-injection registry
(:mod:`repro.testing.faults`) that drives the chaos suite. The package is
intentionally dependency-light — it may be imported by production modules
(the injection points live in ``repro.ccsr.store`` and ``repro.engine``)
and therefore must never import ``repro.cli`` or ``repro.bench``
(enforced by ``python -m tools.reprolint --select layering`` in CI).
"""

from repro.testing import faults
from repro.testing.faults import (
    FaultInjector,
    FaultRule,
    cancel,
    fail_cluster_read,
    fire,
    flaky_cluster_read,
    hang,
    memory_spike,
    raise_error,
    slowdown,
)

__all__ = [
    "FaultInjector",
    "FaultRule",
    "faults",
    "fire",
    "fail_cluster_read",
    "flaky_cluster_read",
    "hang",
    "slowdown",
    "memory_spike",
    "cancel",
    "raise_error",
]
