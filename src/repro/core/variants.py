"""The three subgraph-matching variants (Section II, problem statement).

* **edge-induced** (non-induced / monomorphism): an injective vertex mapping
  under which every pattern edge maps to a data edge with the same labels
  and direction; extra data edges among the mapped vertices are allowed.
* **vertex-induced** (induced): edge-induced plus the converse — *no* data
  edge may exist between mapped vertices unless the pattern has the
  corresponding edge.
* **homomorphic**: like edge-induced but without injectivity — distinct
  pattern vertices may map to the same data vertex.
"""

from __future__ import annotations

from enum import Enum

from repro.errors import VariantError


class Variant(Enum):
    """A subgraph-matching variant (the paper's theta)."""

    EDGE_INDUCED = "edge_induced"
    VERTEX_INDUCED = "vertex_induced"
    HOMOMORPHIC = "homomorphic"

    @property
    def injective(self) -> bool:
        """Whether distinct pattern vertices need distinct images."""
        return self is not Variant.HOMOMORPHIC

    @property
    def induced(self) -> bool:
        """Whether absent pattern edges forbid data edges."""
        return self is Variant.VERTEX_INDUCED

    @classmethod
    def parse(cls, value: "Variant | str") -> "Variant":
        """Accept a Variant, its value string, or common aliases."""
        if isinstance(value, Variant):
            return value
        aliases = {
            "edge_induced": cls.EDGE_INDUCED,
            "edge-induced": cls.EDGE_INDUCED,
            "non_induced": cls.EDGE_INDUCED,
            "monomorphism": cls.EDGE_INDUCED,
            "e": cls.EDGE_INDUCED,
            "vertex_induced": cls.VERTEX_INDUCED,
            "vertex-induced": cls.VERTEX_INDUCED,
            "induced": cls.VERTEX_INDUCED,
            "v": cls.VERTEX_INDUCED,
            "homomorphic": cls.HOMOMORPHIC,
            "homomorphism": cls.HOMOMORPHIC,
            "h": cls.HOMOMORPHIC,
        }
        try:
            return aliases[str(value).lower()]
        except KeyError:
            raise VariantError(f"unknown subgraph matching variant {value!r}") from None

    def __str__(self) -> str:
        return self.value
