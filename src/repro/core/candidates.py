"""Candidate-computation primitives shared with the physical engine.

The :class:`CandidateComputer` that consumed logical plans moved to
:mod:`repro.engine.candidates`, where it operates on compiled
:class:`~repro.engine.ExtendOp` operators. What remains here are the
engine-independent primitives: the sorted-array intersection kernel and the
:class:`CandidateStats` counter bundle both layers share.
"""

from __future__ import annotations

import numpy as np

_EMPTY = np.empty(0, dtype=np.int64)


def intersect_sorted(small: np.ndarray, big: np.ndarray) -> np.ndarray:
    """Intersection of two sorted unique arrays, smallest first.

    A vectorized binary-search membership test — O(|small| log |big|) —
    which beats ``np.intersect1d``'s sort-merge on the short, skewed arrays
    cluster intersections produce.
    """
    idx = np.searchsorted(big, small)
    idx[idx == big.shape[0]] = big.shape[0] - 1
    return small[big[idx] == small]


class CandidateStats:
    """Candidate-computation counters (part of the unified stats schema,
    :data:`repro.obs.counters.STAT_KEYS`).

    ``computed`` counts every cold computation; ``memo_hits`` /
    ``memo_misses`` split the SCE cache lookups, so a cold compute under
    ``use_sce=False`` (no lookup at all) is distinguishable from a cache
    miss (``computed`` grows without ``memo_misses``). ``negation_checks``
    counts vertex-induced negation-cluster probes evaluated.

    Kept as plain slotted integers — the hot loops bump these millions of
    times; they are folded into the run's counter registry at snapshot
    time (see :func:`repro.obs.counters.unified_stats`).
    """

    __slots__ = (
        "computed",
        "memo_hits",
        "memo_misses",
        "intersections",
        "negation_checks",
    )

    def __init__(self):
        self.computed = 0
        self.memo_hits = 0
        self.memo_misses = 0
        self.intersections = 0
        self.negation_checks = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "computed": self.computed,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "intersections": self.intersections,
            "negation_checks": self.negation_checks,
        }
