"""Candidate computation with SCE-based reuse.

``C(u | Phi, f)`` — the candidates of a pattern vertex given a partial
embedding — is computed by intersecting the cluster neighbor lists of the
vertex's backward constraints, then filtering vertex-induced negations. By
Definition 1 the raw set depends only on the mappings of the vertex's
dependency priors, so it is memoized on exactly that key; injectivity
filtering (the ``\\ {v_x}`` part) happens at use time and never enters the
cache. NEC falls out for free: equivalent pattern vertices share a memo
spec and therefore share cached candidate sets.
"""

from __future__ import annotations

import numpy as np

from repro.core.plan import Plan

_EMPTY = np.empty(0, dtype=np.int64)


def intersect_sorted(small: np.ndarray, big: np.ndarray) -> np.ndarray:
    """Intersection of two sorted unique arrays, smallest first.

    A vectorized binary-search membership test — O(|small| log |big|) —
    which beats ``np.intersect1d``'s sort-merge on the short, skewed arrays
    cluster intersections produce.
    """
    idx = np.searchsorted(big, small)
    idx[idx == big.shape[0]] = big.shape[0] - 1
    return small[big[idx] == small]


class CandidateStats:
    """Candidate-computation counters (part of the unified stats schema,
    :data:`repro.obs.counters.STAT_KEYS`).

    ``computed`` counts every cold computation; ``memo_hits`` /
    ``memo_misses`` split the SCE cache lookups, so a cold compute under
    ``use_sce=False`` (no lookup at all) is distinguishable from a cache
    miss (``computed`` grows without ``memo_misses``). ``negation_checks``
    counts vertex-induced negation-cluster probes evaluated.

    Kept as plain slotted integers — the hot loops bump these millions of
    times; they are folded into the run's counter registry at snapshot
    time (see :func:`repro.obs.counters.unified_stats`).
    """

    __slots__ = (
        "computed",
        "memo_hits",
        "memo_misses",
        "intersections",
        "negation_checks",
    )

    def __init__(self):
        self.computed = 0
        self.memo_hits = 0
        self.memo_misses = 0
        self.intersections = 0
        self.negation_checks = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "computed": self.computed,
            "memo_hits": self.memo_hits,
            "memo_misses": self.memo_misses,
            "intersections": self.intersections,
            "negation_checks": self.negation_checks,
        }


class CandidateComputer:
    """Computes (and, with SCE, reuses) raw candidate arrays per position."""

    def __init__(
        self,
        plan: Plan,
        use_sce: bool = True,
        memo_limit: int = 1_000_000,
        profile=None,
    ):
        self.plan = plan
        self.use_sce = use_sce
        self.memo_limit = memo_limit
        self.stats = CandidateStats()
        #: Optional :class:`repro.obs.profile.SearchDepthProfile` receiving
        #: per-depth memo hit/miss events; ``None`` keeps the hot path free.
        self._profile = profile
        self._memo: dict[tuple, np.ndarray] = {}
        # Intern each distinct memo spec as a small int: NEC-equivalent
        # positions share the same id, and hashing an int beats re-hashing
        # the nested spec tuple on every single lookup.
        spec_ids: dict[tuple, int] = {}
        self._spec_id = [
            spec_ids.setdefault(spec, len(spec_ids)) for spec in plan.memo_specs
        ]
        self._priors = plan.memo_priors

    def clear(self) -> None:
        self._memo.clear()

    def raw(self, pos: int, assignment: list[int]) -> np.ndarray:
        """The sorted raw candidate array of ``plan.order[pos]`` under the
        current partial embedding (before injectivity filtering)."""
        if self.use_sce:
            key = (
                self._spec_id[pos],
                *[assignment[p] for p in self._priors[pos]],
            )
            cached = self._memo.get(key)
            if cached is not None:
                self.stats.memo_hits += 1
                if self._profile is not None:
                    self._profile.memo_hit(pos)
                return cached
            self.stats.memo_misses += 1
            if self._profile is not None:
                self._profile.memo_miss(pos)
        result = self._compute(pos, assignment)
        if self.use_sce and len(self._memo) < self.memo_limit:
            self._memo[key] = result
        return result

    def _compute(self, pos: int, assignment: list[int]) -> np.ndarray:
        plan = self.plan
        self.stats.computed += 1
        constraints = plan.backward[pos]
        if constraints:
            arrays = []
            for c in constraints:
                arr = c.neighbor_array(assignment[c.prior])
                if arr.shape[0] == 0:
                    return _EMPTY
                arrays.append(arr)
            arrays.sort(key=len)
            result = arrays[0]
            for arr in arrays[1:]:
                self.stats.intersections += 1
                result = intersect_sorted(result, arr)
                if result.shape[0] == 0:
                    return _EMPTY
        else:
            result = plan.first_candidates[pos]
        for negation in plan.negations[pos]:
            if result.shape[0] == 0:
                break
            self.stats.negation_checks += 1
            excluded = negation.exclusion_array(assignment[negation.prior])
            if excluded.shape[0] == 0:
                continue
            # Sorted-array membership: forbid candidates present in the
            # exclusion list (vectorized version of Definition 1's check).
            idx = np.searchsorted(excluded, result)
            idx[idx == excluded.shape[0]] = excluded.shape[0] - 1
            violates = excluded[idx] == result
            if violates.any():
                result = result[~violates]
        return result
