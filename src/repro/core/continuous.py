"""Continuous (delta) subgraph matching.

Graphflow — one of the paper's baselines — answers *continuous* subgraph
queries: when an edge arrives, report the embeddings it creates. With
incremental CCSR updates (:meth:`~repro.ccsr.store.CCSRStore.insert_edge`)
and seeded execution (:class:`~repro.core.executor.MatchOptions` ``seed``),
CSCE supports the same workload:

    every embedding created by a new edge must *use* that edge, so it
    suffices to pin each label-compatible pattern edge onto the new data
    edge and enumerate the completions.

Pinning both endpoints of one pattern edge per run enumerates each new
embedding exactly once per pattern edge that maps onto the new data edge;
results across pins are deduplicated on the full mapping because distinct
pins can yield the same embedding when the pattern has automorphisms moving
one pinned edge onto another.

Each delta compiles the pattern **once** through the engine's
:class:`~repro.engine.MatchSession` (a cache hit when the store version is
unchanged), then rebinds the compiled plan's pins per seed with
:meth:`~repro.engine.PhysicalPlan.with_seed` — no replanning per pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.csce import CSCE
from repro.core.variants import Variant
from repro.engine.executor import execute_physical
from repro.engine.results import MatchOptions, raise_stop
from repro.graph.model import Edge, Graph
from repro.obs import STAT_KEYS


@dataclass
class DeltaResult:
    """Embeddings created (or destroyed) by one edge update."""

    edge: Edge
    embeddings: list[dict[int, int]]
    pins_tried: int
    stats: dict = field(default_factory=dict)
    """Unified search counters summed over every pinned run (the same key
    set as :attr:`repro.core.executor.MatchResult.stats`)."""

    stop_reason: str | None = None
    """Why the delta stopped early (a pinned run hit a governor limit or
    the cancel token tripped), or ``None`` for a complete delta. A partial
    delta's ``embeddings`` undercount the true delta — callers must not
    fold them into standing totals (see :class:`ContinuousMatcher`)."""

    @property
    def count(self) -> int:
        return len(self.embeddings)


def _compatible_pins(
    pattern: Graph,
    data_labels,
    edge: Edge,
) -> list[dict[int, int]]:
    """Seeds pinning a pattern edge onto the data edge, label-checked."""
    src_label = data_labels[edge.src]
    dst_label = data_labels[edge.dst]
    pins: list[dict[int, int]] = []
    for pattern_edge in pattern.edges():
        if pattern_edge.label != edge.label:
            continue
        if pattern_edge.directed != edge.directed:
            continue
        orientations = [(pattern_edge.src, pattern_edge.dst)]
        if not edge.directed:
            orientations.append((pattern_edge.dst, pattern_edge.src))
        for u_src, u_dst in orientations:
            if (
                pattern.vertex_label(u_src) == src_label
                and pattern.vertex_label(u_dst) == dst_label
            ):
                pins.append({u_src: edge.src, u_dst: edge.dst})
    return pins


def embeddings_containing_edge(
    engine: CSCE,
    pattern: Graph,
    edge: Edge,
    variant: Variant | str = Variant.EDGE_INDUCED,
    time_limit: float | None = None,
    obs=None,
    governor=None,
) -> DeltaResult:
    """All embeddings of ``pattern`` that map some pattern edge onto
    ``edge`` (which must already be present in the engine's store).

    ``obs`` instruments every pinned run; the returned ``stats`` sums the
    unified counters over all pins. A ``governor`` limit or tripped cancel
    token ends the delta early: remaining pins are skipped and the result
    carries the triggering ``stop_reason`` (partial, do not trust the
    delta count).
    """
    variant = Variant.parse(variant)
    obs = obs or getattr(engine, "obs", None)
    pins = _compatible_pins(pattern, engine.store.vertex_labels, edge)
    seen: set[tuple] = set()
    embeddings: list[dict[int, int]] = []
    stats: dict[str, int] = dict.fromkeys(STAT_KEYS, 0)
    stop_reason: str | None = None
    compiled = (
        engine.session.compile(pattern, variant, obs=obs) if pins else None
    )
    for seed in pins:
        # One compile per delta; each pin is a cheap rebind of the ops.
        result = execute_physical(
            compiled.physical.with_seed(seed),
            MatchOptions(
                time_limit=time_limit,
                obs=obs if obs is not None and obs.enabled else None,
                governor=governor,
            ),
        )
        for key, value in result.stats.items():
            stats[key] = stats.get(key, 0) + value
        for mapping in result.embeddings:
            key = tuple(sorted(mapping.items()))
            if key not in seen:
                seen.add(key)
                embeddings.append(mapping)
        if result.stop_reason is not None:
            stop_reason = result.stop_reason
            break
    if obs is not None:
        counters = getattr(obs, "counters", None)
        if counters is not None and counters.enabled:
            counters.inc("continuous.updates")
            counters.inc("continuous.pins", len(pins))
            counters.inc("continuous.delta_embeddings", len(embeddings))
        metrics = getattr(obs, "metrics", None)
        if metrics is not None and metrics.enabled:
            # One sample per edge update: the continuous workload streams
            # live metrics even when no heartbeat interval elapses.
            metrics.sample(obs)
    return DeltaResult(
        edge=edge, embeddings=embeddings, pins_tried=len(pins),
        stats=stats, stop_reason=stop_reason,
    )


class ContinuousMatcher:
    """Maintains embedding counts of a standing query under edge updates.

    The one-time query runs once at registration; afterwards each
    :meth:`insert` / :meth:`remove` updates the store incrementally and
    reports only the delta — the continuous-query model of Graphflow.

    The vertex-induced variant is intentionally unsupported: there, an
    *arriving* edge can also destroy embeddings that do not use it (it may
    violate another embedding's negation constraints), so the delta is not
    edge-local. Edge-induced and homomorphic deltas are.
    """

    def __init__(
        self,
        engine: CSCE,
        pattern: Graph,
        variant: Variant | str = Variant.EDGE_INDUCED,
        obs=None,
        governor=None,
    ):
        variant = Variant.parse(variant)
        if variant.induced:
            raise ValueError(
                "continuous matching supports edge-induced and homomorphic"
                " queries only; vertex-induced deltas are not edge-local"
            )
        self.engine = engine
        self.pattern = pattern
        self.variant = variant
        self.obs = obs
        self.governor = governor
        self.total = engine.count(pattern, variant, obs=obs)

    def insert(
        self, src: int, dst: int, label=None, directed: bool = False
    ) -> DeltaResult:
        """Insert an edge; returns the embeddings it created.

        If the delta search stops early (governor limit or tripped cancel
        token), the insert is **rolled back** and the typed
        :class:`~repro.errors.LimitExceeded` subclass is raised: a partial
        delta cannot be folded into ``total`` without corrupting it, and
        rolling back leaves the matcher consistent and reusable — clear
        the token and retry the same insert.
        """
        self.engine.store.insert_edge(src, dst, label, directed)
        edge = Edge(src, dst, label, directed)
        delta = embeddings_containing_edge(
            self.engine, self.pattern, edge, self.variant,
            obs=self.obs, governor=self.governor,
        )
        if delta.stop_reason is not None:
            self.engine.store.remove_edge(src, dst, label, directed)
            raise_stop(delta.stop_reason, delta.count)
        self.total += delta.count
        return delta

    def remove(
        self, src: int, dst: int, label=None, directed: bool = False
    ) -> DeltaResult:
        """Remove an edge; returns the embeddings it destroyed.

        As with :meth:`insert`, an early stop raises the typed limit error
        *before* the store is touched, so the matcher (store, total, and
        plan cache) is untouched and reusable for the next delta.
        """
        edge = Edge(src, dst, label, directed)
        delta = embeddings_containing_edge(
            self.engine, self.pattern, edge, self.variant,
            obs=self.obs, governor=self.governor,
        )
        if delta.stop_reason is not None:
            raise_stop(delta.stop_reason, delta.count)
        self.engine.store.remove_edge(src, dst, label, directed)
        self.total -= delta.count
        return delta
