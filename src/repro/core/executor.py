"""The pipelined execution framework (Section III, green stage).

Embeddings grow one vertex at a time following the plan order; each step
intersects cluster neighbor lists (worst-case-optimal-join style) through
:class:`~repro.core.candidates.CandidateComputer`. Enumeration materializes
every embedding; counting delegates to :mod:`repro.core.counting`, which
additionally factorizes over conditionally independent suffix regions.
"""

from __future__ import annotations

import logging
import time
from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

from repro.core.candidates import CandidateComputer
from repro.core.plan import Plan
from repro.core.variants import Variant
from repro.errors import EmbeddingLimitExceeded, TimeLimitExceeded
from repro.obs import NULL_OBS, unified_stats

logger = logging.getLogger(__name__)

_TIME_CHECK_INTERVAL = 2048


@dataclass
class MatchOptions:
    """Knobs for one matching run.

    ``max_embeddings`` truncates the search after that many results (the
    existing-works convention of stopping at 1e5); ``time_limit`` is a soft
    wall-clock budget in seconds; ``use_sce`` toggles candidate memoization
    and count factorization (the paper's headline optimization) for
    ablations; ``count_only`` skips materializing embeddings.
    """

    count_only: bool = False
    max_embeddings: int | None = None
    time_limit: float | None = None
    use_sce: bool = True
    restrictions: tuple[tuple[int, int], ...] | None = None
    """Optional symmetry restrictions: each ``(u, v)`` requires
    ``f(u) < f(v)``. With the restrictions from
    :func:`repro.baselines.symmetry.symmetry_restrictions`, every
    automorphism orbit is enumerated exactly once — e.g. each k-clique once
    instead of k! times. Restrictions disable count factorization (they
    couple otherwise independent regions)."""

    seed: dict[int, int] | None = None
    """Optional pinned mappings ``{pattern vertex: data vertex}``. Pinned
    vertices are still validated against their candidate sets (labels,
    backward edges, negations, injectivity), so a seeded run enumerates
    exactly the embeddings extending the seed — the building block of
    continuous/delta matching (:mod:`repro.core.continuous`). Seeds disable
    count factorization."""

    obs: object | None = None
    """Optional :class:`repro.obs.Observation` carrying the run's tracer,
    counter registry, and heartbeat. ``None`` (the default) selects the
    no-op instruments — the zero-cost-when-disabled path."""


@dataclass
class MatchResult:
    """Outcome of one matching run, with the paper's reporting fields."""

    count: int
    variant: Variant
    embeddings: list[dict[int, int]] | None = None
    elapsed: float = 0.0
    read_seconds: float = 0.0
    plan_seconds: float = 0.0
    truncated: bool = False
    timed_out: bool = False
    stats: dict = field(default_factory=dict)
    """Unified search counters — the same key set on *every* execution path
    (enumeration and ``count_only`` factorized counting emit identical
    keys; see :data:`repro.obs.counters.STAT_KEYS`):

    * ``nodes`` — search-tree nodes expanded;
    * ``computed`` / ``memo_hits`` / ``memo_misses`` — candidate-set cold
      computations vs. SCE cache hits and misses (``memo_misses`` stays 0
      under ``use_sce=False``, distinguishing cold computes from misses);
    * ``intersections`` — sorted neighbor-list intersections performed;
    * ``negation_checks`` — vertex-induced negation-cluster probes;
    * ``backtracks`` — dead-end returns (nodes contributing no embedding);
    * ``prunes_injective`` / ``prunes_restriction`` — candidates rejected
      by injectivity or symmetry restrictions;
    * ``factorizations`` / ``group_memo_hits`` — SCE count-factorization
      events and memoized-region reuses (0 on the enumeration path).
    """

    @property
    def total_seconds(self) -> float:
        """Total time the paper reports: read + optimize + execute."""
        return self.elapsed + self.read_seconds + self.plan_seconds

    @property
    def throughput(self) -> float:
        """Embeddings per second of execution time (Fig. 7/8 metric)."""
        if self.elapsed <= 0:
            return 0.0
        return self.count / self.elapsed

    def __repr__(self) -> str:
        flags = []
        if self.truncated:
            flags.append("truncated")
        if self.timed_out:
            flags.append("timed-out")
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return (
            f"<MatchResult {self.variant} count={self.count}"
            f" {self.total_seconds:.4f}s{suffix}>"
        )


def _contains_sorted(array: np.ndarray, value: int) -> bool:
    """Membership test in a sorted candidate array (binary search)."""
    idx = int(np.searchsorted(array, value))
    return idx < array.shape[0] and int(array[idx]) == value


def _satisfies(
    candidate: int,
    assignment: list[int],
    restrictions: list[tuple[int, bool]],
) -> bool:
    """Check the ``f(u) < f(v)`` restrictions anchored at this position."""
    for other, candidate_is_smaller in restrictions:
        image = assignment[other]
        if candidate_is_smaller:
            if candidate >= image:
                return False
        elif candidate <= image:
            return False
    return True


class Enumerator:
    """Depth-first embedding enumeration over a plan."""

    def __init__(self, plan: Plan, options: MatchOptions):
        self.plan = plan
        self.options = options
        obs = options.obs or NULL_OBS
        profiler = getattr(obs, "profile", None)
        # None when profiling is off: the hot loops pay one is-None branch.
        self._profile = (
            profiler.search if profiler is not None and profiler.enabled else None
        )
        self.computer = CandidateComputer(
            plan, use_sce=options.use_sce, profile=self._profile
        )
        self.nodes = 0
        self.emitted = 0
        self.backtracks = 0
        self.prunes_injective = 0
        self.prunes_restriction = 0
        self._deadline = (
            time.perf_counter() + options.time_limit
            if options.time_limit is not None
            else None
        )
        self._heartbeat = (options.obs or NULL_OBS).heartbeat
        # One flag guards the periodic work: without a deadline or a live
        # heartbeat, _tick never even computes the interval modulo.
        self._ticking = self._deadline is not None or self._heartbeat.enabled
        # Restrictions evaluated at the position where their later endpoint
        # is matched; (other_vertex, current_is_smaller_side).
        self.restriction_at: list[list[tuple[int, bool]]] = [
            [] for _ in range(plan.num_vertices)
        ]
        if options.restrictions:
            position = plan.position
            for u, v in options.restrictions:
                if position[u] > position[v]:
                    self.restriction_at[position[u]].append((v, True))
                else:
                    self.restriction_at[position[v]].append((u, False))

    # ------------------------------------------------------------------
    def run(self) -> Iterator[tuple[int, ...]]:
        """Yield embeddings as tuples indexed by pattern vertex id."""
        plan = self.plan
        if plan.impossible():
            return
        # Hot path: everything the recursion touches is bound to locals.
        n = plan.num_vertices
        order = plan.order
        raw = self.computer.raw
        restriction_at = self.restriction_at
        injective = plan.variant.injective
        max_embeddings = self.options.max_embeddings
        pinned = self.options.seed or {}
        profile = self._profile
        assignment = [-1] * n
        used: set[int] = set()
        add, discard = used.add, used.discard

        def extend(pos: int) -> Iterator[tuple[int, ...]]:
            if pos == n:
                self.emitted += 1
                yield tuple(assignment)
                if max_embeddings is not None and self.emitted >= max_embeddings:
                    raise EmbeddingLimitExceeded(
                        "embedding limit reached", partial_count=self.emitted
                    )
                return
            self._tick(pos)
            u = order[pos]
            restrictions = restriction_at[pos]
            candidates = raw(pos, assignment)
            if profile is not None:
                profile.visit(pos, candidates.shape[0])
            pin = pinned.get(u)
            if pin is not None:
                values = [pin] if _contains_sorted(candidates, pin) else ()
            else:
                values = candidates.tolist()
            before = self.emitted
            for v in values:
                if injective and v in used:
                    self.prunes_injective += 1
                    continue
                if restrictions and not _satisfies(v, assignment, restrictions):
                    self.prunes_restriction += 1
                    continue
                assignment[u] = v
                if injective:
                    add(v)
                yield from extend(pos + 1)
                if injective:
                    discard(v)
                assignment[u] = -1
            if self.emitted == before:
                self.backtracks += 1
                if profile is not None:
                    profile.backtrack(pos)

        yield from extend(0)

    def count_capped(self) -> int:
        """Count embeddings without yielding — the fast path for capped or
        restricted counting runs (no per-embedding generator hand-off)."""
        plan = self.plan
        if plan.impossible():
            return 0
        n = plan.num_vertices
        order = plan.order
        raw = self.computer.raw
        restriction_at = self.restriction_at
        injective = plan.variant.injective
        max_embeddings = self.options.max_embeddings
        pinned = self.options.seed or {}
        profile = self._profile
        assignment = [-1] * n
        used: set[int] = set()
        add, discard = used.add, used.discard

        def extend(pos: int) -> None:
            if pos == n:
                self.emitted += 1
                if max_embeddings is not None and self.emitted >= max_embeddings:
                    raise EmbeddingLimitExceeded(
                        "embedding limit reached", partial_count=self.emitted
                    )
                return
            self._tick(pos)
            u = order[pos]
            restrictions = restriction_at[pos]
            candidates = raw(pos, assignment)
            if profile is not None:
                profile.visit(pos, candidates.shape[0])
            pin = pinned.get(u)
            if pin is not None:
                values = [pin] if _contains_sorted(candidates, pin) else ()
            else:
                values = candidates.tolist()
            before = self.emitted
            for v in values:
                if injective and v in used:
                    self.prunes_injective += 1
                    continue
                if restrictions and not _satisfies(v, assignment, restrictions):
                    self.prunes_restriction += 1
                    continue
                assignment[u] = v
                if injective:
                    add(v)
                extend(pos + 1)
                if injective:
                    discard(v)
                assignment[u] = -1
            if self.emitted == before:
                self.backtracks += 1
                if profile is not None:
                    profile.backtrack(pos)

        extend(0)
        return self.emitted

    def _tick(self, depth: int = 0) -> None:
        self.nodes += 1
        if self._ticking and self.nodes % _TIME_CHECK_INTERVAL == 0:
            if self._heartbeat.enabled:
                self._heartbeat.beat(
                    self.nodes, self.emitted, depth, phase="enumerate"
                )
            if (
                self._deadline is not None
                and time.perf_counter() > self._deadline
            ):
                raise TimeLimitExceeded(
                    "time limit exceeded during enumeration",
                    partial_count=self.emitted,
                )


def execute(plan: Plan, options: MatchOptions | None = None) -> MatchResult:
    """Run a plan to completion and package the result.

    Counting runs go through the SCE-factorized counter when enabled; every
    other run enumerates. Limits surface as ``truncated``/``timed_out``
    flags with the partial count, never as exceptions.
    """
    options = options or MatchOptions()
    obs = options.obs or NULL_OBS
    # Large patterns (the paper tests up to 2000 vertices) recurse once per
    # pattern vertex; make sure Python's recursion limit accommodates that.
    import sys

    needed = 4 * plan.num_vertices + 1000
    if sys.getrecursionlimit() < needed:
        sys.setrecursionlimit(needed)
    start = time.perf_counter()
    truncated = False
    timed_out = False
    embeddings: list[dict[int, int]] | None = None
    stats: dict = {}

    # Exact SCE-factorized counting only applies to uncapped, unrestricted
    # counting; a max_embeddings cap needs enumeration semantics (results
    # are counted one by one up to the cap, the 1e5-cap convention of
    # existing works), and restrictions couple independent regions.
    if (
        options.count_only
        and not options.restrictions
        and options.seed is None
        and options.max_embeddings is None
    ):
        from repro.core.counting import count_embeddings

        with obs.tracer.span(
            "execute", mode="count", variant=plan.variant.value
        ) as span:
            try:
                count, stats = count_embeddings(plan, options)
            except TimeLimitExceeded as exc:
                count = exc.partial_count
                timed_out = True
            span.set("count", count)
    else:
        # Restrictions couple otherwise independent suffix regions, so
        # counting under restrictions also goes through enumeration;
        # count-only runs take the no-yield fast path.
        enumerator = Enumerator(plan, options)
        collected: list[dict[int, int]] | None = (
            None if options.count_only else []
        )
        count = 0
        with obs.tracer.span(
            "execute", mode="enumerate", variant=plan.variant.value
        ) as span:
            try:
                if collected is None:
                    count = enumerator.count_capped()
                else:
                    for embedding in enumerator.run():
                        count += 1
                        collected.append(
                            {u: embedding[u] for u in range(plan.num_vertices)}
                        )
            except EmbeddingLimitExceeded:
                count = enumerator.emitted
                truncated = True
            except TimeLimitExceeded:
                count = enumerator.emitted
                timed_out = True
            span.set("count", count)
            span.set("nodes", enumerator.nodes)
        embeddings = collected
        stats = unified_stats(
            nodes=enumerator.nodes,
            candidate_stats=enumerator.computer.stats,
            backtracks=enumerator.backtracks,
            prunes_injective=enumerator.prunes_injective,
            prunes_restriction=enumerator.prunes_restriction,
        )

    if obs.enabled:
        obs.counters.merge(stats)
    result = MatchResult(
        count=count,
        variant=plan.variant,
        embeddings=embeddings,
        elapsed=time.perf_counter() - start,
        read_seconds=plan.task_clusters.read_seconds,
        plan_seconds=plan.plan_seconds,
        truncated=truncated,
        timed_out=timed_out,
        stats=stats,
    )
    if logger.isEnabledFor(logging.DEBUG):
        logger.debug(
            "executed %s: count=%d nodes=%d elapsed=%.4fs%s",
            plan.variant.value,
            count,
            stats.get("nodes", 0),
            result.elapsed,
            " (truncated)" if truncated else (" (timed out)" if timed_out else ""),
        )
    return result
