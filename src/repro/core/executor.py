"""Compatibility shim: execution moved to :mod:`repro.engine`.

The recursive plan interpreter that lived here was replaced by the
compiled physical-operator engine — logical plans are lowered once by
:func:`repro.engine.compile_plan` into per-step :class:`~repro.engine.ExtendOp`
operators and run by the **iterative** executor in
:mod:`repro.engine.executor` (explicit frame stack, cooperative limits,
lazy streaming via :class:`~repro.engine.EmbeddingStream`).

This module re-exports the public names so existing
``from repro.core.executor import ...`` call sites keep working. New code
should import from :mod:`repro.engine`, and repeated queries should go
through a :class:`repro.engine.MatchSession` (or the
:class:`repro.core.CSCE` facade, which owns one) to reuse compiled plans.
"""

from __future__ import annotations

from repro.core.plan import Plan
from repro.engine.executor import EmbeddingStream, execute_physical
from repro.engine.physical import compile_plan
from repro.engine.results import MatchOptions, MatchResult

__all__ = [
    "MatchOptions",
    "MatchResult",
    "EmbeddingStream",
    "execute",
]


def execute(plan: Plan, options: MatchOptions | None = None) -> MatchResult:
    """Compile a logical plan and run it on the physical engine.

    Migration note: ``execute`` used to interpret the logical plan with a
    recursive enumerator; it now compiles the plan per call. Behaviour and
    result fields are unchanged (plus the new
    :attr:`~repro.engine.MatchResult.compile_seconds`); to amortize the
    compile across runs, hold a :class:`repro.engine.MatchSession` and call
    :func:`repro.engine.execute_physical` with its cached plans.
    """
    return execute_physical(compile_plan(plan), options)
