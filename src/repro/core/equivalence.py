"""Equivalence concepts: NEC classes and SCE occurrence metrics.

*Neighborhood equivalence classes* (TurboISO) group pattern vertices whose
swap is an automorphism — their candidate sets are interchangeable. The
engine gets NEC sharing implicitly through memo specs
(:mod:`repro.core.plan`); this module exposes the classes for inspection
and for the explicit reporting in the method overview (Section III).

*SCE occurrence* quantifies how often Sequential Candidate Equivalence
fires in a plan (Fig. 12): the share of pattern vertices that are
independent of at least one other vertex under the dependency DAG, and how
much of that independence is supplied by clusters (the injectivity-free
``C \\ {v_x} = C`` case of Definition 1, which holds when labels differ and
the vertex-induced negation edges of Algorithm 2 lines 7–8).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.dag import DependencyDAG
from repro.graph.algorithms import _edge_descriptor
from repro.graph.model import Graph


def nec_classes(pattern: Graph) -> list[list[int]]:
    """Partition pattern vertices into neighborhood equivalence classes.

    Two vertices are NEC-equivalent when they share a label and relate
    identically (edge presence, direction, and labels) to every third
    vertex — i.e. the transposition swapping them is an automorphism.
    """
    n = pattern.num_vertices
    classes: list[list[int]] = []
    for v in range(n):
        placed = False
        for cls in classes:
            if _nec_equivalent(pattern, cls[0], v):
                cls.append(v)
                placed = True
                break
        if not placed:
            classes.append([v])
    return classes


def _nec_equivalent(pattern: Graph, a: int, b: int) -> bool:
    if a == b:
        return True
    if pattern.vertex_label(a) != pattern.vertex_label(b):
        return False
    for w in pattern.vertices():
        if w in (a, b):
            continue
        if _edge_descriptor(pattern, a, w) != _edge_descriptor(pattern, b, w):
            return False
    # Edges between the pair must be symmetric for the swap to preserve them.
    return _edge_descriptor(pattern, a, b) == _edge_descriptor(pattern, b, a)


@dataclass(frozen=True)
class SCEStats:
    """The Fig. 12 measurements for one plan."""

    num_vertices: int
    sce_vertices: int
    sce_pairs: int
    cluster_pairs: int

    @property
    def occurrence(self) -> float:
        """Fraction of pattern vertices independent of >= 1 other vertex."""
        if self.num_vertices == 0:
            return 0.0
        return self.sce_vertices / self.num_vertices

    @property
    def cluster_ratio(self) -> float:
        """Share of SCE pairs whose injectivity clause is satisfied
        label-wise / cluster-wise (the figure's cluster sub-bars)."""
        if self.sce_pairs == 0:
            return 0.0
        return self.cluster_pairs / self.sce_pairs


def sce_statistics(pattern: Graph, dag: DependencyDAG) -> SCEStats:
    """Measure SCE occurrence for a pattern under a dependency DAG."""
    sce_vertices: set[int] = set()
    sce_pairs = 0
    cluster_pairs = 0
    for a, b in dag.independent_pairs():
        sce_pairs += 1
        sce_vertices.add(a)
        sce_vertices.add(b)
        if pattern.vertex_label(a) != pattern.vertex_label(b):
            cluster_pairs += 1
    return SCEStats(
        num_vertices=pattern.num_vertices,
        sce_vertices=len(sce_vertices),
        sce_pairs=sce_pairs,
        cluster_pairs=cluster_pairs,
    )
