"""Largest-Descendant-Size-First plan fine-tuning (Algorithm 4).

Different matching orders can define the same dependency DAG ``H``; any
topological order of ``H`` is an equally valid matching order, so LDSF picks
the one that maximizes candidate reuse: among the ready vertices it prefers
the largest descendant size, then the smallest cluster of an edge to an
already-ordered vertex, then the lowest data-graph label frequency — the
exact tie-break chain of Section VI.
"""

from __future__ import annotations

import heapq
from collections import Counter
from typing import Hashable

from repro.ccsr.store import TaskClusters
from repro.core.dag import DependencyDAG
from repro.core.descendants import compute_descendant_sizes
from repro.core.gcf import edge_cluster_size
from repro.errors import PlanError
from repro.graph.model import Graph

_BIG = float("inf")


def ldsf_order(
    dag: DependencyDAG,
    pattern: Graph,
    task_clusters: TaskClusters | None = None,
    label_frequency: Counter | None = None,
    descendant_sizes: dict[int, int] | None = None,
) -> list[int]:
    """``GeneratePlan`` (Algorithm 4): an LDSF topological order of ``H``.

    Unlike Kahn's algorithm, which emits ready vertices in arbitrary order,
    the ready set here is a priority queue ranked by:

    1. GCF's three rules (Eq. 1) over the emitted prefix — fine-tuning must
       not surrender the greatest-constraint-first pruning, or sparse
       patterns blow up (a reproduction refinement: the paper applies LDSF
       "in case of ties in TO", and GCF's rules are what ranked the order
       in the first place);
    2. largest descendant size (reuse the most dependent mappings);
    3. smallest cluster among edges to already-emitted vertices;
    4. lowest vertex-label frequency in the data graph;
    5. lowest vertex id (determinism).
    """
    if descendant_sizes is None:
        descendant_sizes = compute_descendant_sizes(dag)
    if label_frequency is None:
        label_frequency = Counter()

    emitted: list[int] = []
    emitted_set: set[int] = set()
    in_degree = {v: len(dag.inc[v]) for v in dag.vertices}

    def frequency(v: int) -> float:
        label: Hashable = pattern.vertex_label(v)
        return label_frequency.get(label, _BIG)

    neighbor_sets = {v: set(pattern.neighbors(v)) for v in dag.vertices}

    def rank(v: int) -> tuple:
        backward = neighbor_sets[v] & emitted_set
        t2 = t3 = 0
        for u_j in neighbor_sets[v] - emitted_set:
            if neighbor_sets[u_j] & emitted_set:
                t2 += 1
            else:
                t3 += 1
        sizes = [
            edge_cluster_size(task_clusters, pattern, u_i, v) for u_i in backward
        ]
        min_cluster = min(sizes) if sizes else _BIG
        return (
            -len(backward),
            -t2,
            -t3,
            -descendant_sizes[v],
            min_cluster,
            frequency(v),
            v,
        )

    # The cluster tie-break depends on what is already emitted, so ranks go
    # stale; a lazy heap with rank re-validation keeps this near O(n log n).
    heap = [(rank(v), v) for v in dag.sources()]
    heapq.heapify(heap)
    while heap:
        stale_rank, v = heapq.heappop(heap)
        current = rank(v)
        if current != stale_rank:
            heapq.heappush(heap, (current, v))
            continue
        emitted.append(v)
        emitted_set.add(v)
        for child in dag.out[v]:
            in_degree[child] -= 1
            if in_degree[child] == 0:
                heapq.heappush(heap, (rank(child), child))
    if len(emitted) != len(dag.vertices):
        raise PlanError("LDSF could not order the DAG (cycle?)")
    return emitted
