"""``ComputeDescendant`` (Algorithm 3).

The descendant size of a DAG vertex counts its direct and indirect children.
It measures how many later mappings depend on the vertex, which is what the
LDSF heuristic maximizes. Vertices share descendants, so the dynamic program
unions descendant *sets* bottom-up (as bitmasks) and only counts at the end —
exactly the paper's ``A_D``/``A_S`` split.
"""

from __future__ import annotations

from repro.core.dag import DependencyDAG


def compute_descendants(dag: DependencyDAG) -> dict[int, int]:
    """Descendant-set bitmask per vertex (bit ``v`` set when ``v`` is a
    direct or indirect child)."""
    in_remaining = {v: len(dag.out[v]) for v in dag.vertices}
    descendants: dict[int, int] = {v: 0 for v in dag.vertices}
    # Peel from the children upward, mirroring Algorithm 3: start at
    # vertices with no children; once all of a vertex's children are
    # resolved, it becomes ready.
    ready = [v for v in dag.vertices if in_remaining[v] == 0]
    processed = 0
    while ready:
        next_ready: list[int] = []
        for v in ready:
            mask = 0
            for child in dag.out[v]:
                mask |= (1 << child) | descendants[child]
            descendants[v] = mask
            processed += 1
            for parent in dag.inc[v]:
                in_remaining[parent] -= 1
                if in_remaining[parent] == 0:
                    next_ready.append(parent)
        ready = next_ready
    if processed != len(dag.vertices):
        # A cycle would leave vertices unprocessed; DependencyDAG
        # construction should make this impossible.
        raise AssertionError("descendant computation did not converge")
    return descendants


def compute_descendant_sizes(dag: DependencyDAG) -> dict[int, int]:
    """Algorithm 3's output ``A_S``: descendant counts per vertex."""
    return {
        v: mask.bit_count() for v, mask in compute_descendants(dag).items()
    }
