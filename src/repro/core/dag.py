"""Candidate-dependency DAGs and ``BuildDAG`` (Algorithm 2).

Given a matching order, candidates of a later pattern vertex may depend on
the mapping chosen for an earlier one; each such dependency is a directed
edge of the DAG ``H``. Two pattern vertices with *no path between them* in
``H`` have sequentially equivalent candidates (Definition 1) — the engine
exploits that for candidate reuse and count factorization.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.core.variants import Variant
from repro.errors import PlanError
from repro.graph.model import Graph


class DependencyDAG:
    """A DAG over pattern vertices, stored as in/out adjacency sets.

    The paper represents edges as a hash map from each vertex to its
    outgoing neighbor set (Section V complexity analysis); we keep the
    incoming map too because LDSF consumes in-degrees.
    """

    def __init__(self, vertices: Iterable[int]):
        self.vertices: list[int] = list(vertices)
        self.out: dict[int, set[int]] = {v: set() for v in self.vertices}
        self.inc: dict[int, set[int]] = {v: set() for v in self.vertices}

    def add_edge(self, src: int, dst: int) -> None:
        if src == dst:
            raise PlanError(f"dependency self-loop on {src}")
        self.out[src].add(dst)
        self.inc[dst].add(src)

    def has_edge(self, src: int, dst: int) -> bool:
        return dst in self.out[src]

    @property
    def num_edges(self) -> int:
        return sum(len(s) for s in self.out.values())

    def copy(self) -> "DependencyDAG":
        dag = DependencyDAG(self.vertices)
        for src, dsts in self.out.items():
            for dst in dsts:
                dag.add_edge(src, dst)
        return dag

    def sources(self) -> list[int]:
        """Vertices with no incoming dependency."""
        return [v for v in self.vertices if not self.inc[v]]

    def sinks(self) -> list[int]:
        """Vertices with no outgoing dependency (no children)."""
        return [v for v in self.vertices if not self.out[v]]

    def is_topological_order(self, order: Sequence[int]) -> bool:
        """True when ``order`` visits every parent before its children."""
        if sorted(order) != sorted(self.vertices):
            return False
        position = {v: i for i, v in enumerate(order)}
        return all(
            position[src] < position[dst]
            for src, dsts in self.out.items()
            for dst in dsts
        )

    def reachability(self) -> dict[int, int]:
        """Per-vertex descendant bitmasks (bit ``v`` set when ``v`` is
        reachable). Bitmask ints keep this fast up to 2000-vertex patterns."""
        order = list(self.topological_order())
        reach: dict[int, int] = {v: 0 for v in self.vertices}
        for v in reversed(order):
            mask = 0
            for child in self.out[v]:
                mask |= (1 << child) | reach[child]
            reach[v] = mask
        return reach

    def independent_pairs(self) -> Iterator[tuple[int, int]]:
        """Unordered vertex pairs with no path in either direction —
        exactly the pairs Definition 1 declares sequentially equivalent."""
        reach = self.reachability()
        verts = sorted(self.vertices)
        for i, a in enumerate(verts):
            for b in verts[i + 1 :]:
                if not (reach[a] >> b) & 1 and not (reach[b] >> a) & 1:
                    yield a, b

    def topological_order(self) -> Iterator[int]:
        """Kahn's algorithm; raises :class:`PlanError` on a cycle."""
        in_degree = {v: len(self.inc[v]) for v in self.vertices}
        ready = [v for v in self.vertices if in_degree[v] == 0]
        emitted = 0
        while ready:
            v = ready.pop()
            emitted += 1
            yield v
            for child in self.out[v]:
                in_degree[child] -= 1
                if in_degree[child] == 0:
                    ready.append(child)
        if emitted != len(self.vertices):
            raise PlanError("dependency graph contains a cycle")

    def undirected_components(self, vertices: Iterable[int]) -> list[list[int]]:
        """Connected components of the undirected view restricted to
        ``vertices`` — the conditionally independent regions of a suffix."""
        members = set(vertices)
        seen: set[int] = set()
        components: list[list[int]] = []
        for start in members:
            if start in seen:
                continue
            stack = [start]
            seen.add(start)
            component = []
            while stack:
                v = stack.pop()
                component.append(v)
                for w in self.out[v] | self.inc[v]:
                    if w in members and w not in seen:
                        seen.add(w)
                        stack.append(w)
            components.append(sorted(component))
        return components

    def __repr__(self) -> str:
        return f"<DependencyDAG |V|={len(self.vertices)} |E|={self.num_edges}>"


def build_dag(
    pattern: Graph,
    order: Sequence[int],
    variant: Variant,
    task_clusters=None,
    paper_faithful: bool = False,
) -> DependencyDAG:
    """``BuildDAG`` (Algorithm 2): the candidate-dependency DAG for a plan.

    For every pair of positions ``i < j``: pattern adjacency always adds the
    dependency ``(order[i], order[j])``. Under the vertex-induced variant,
    *negation* between non-adjacent pattern vertices also creates a
    dependency whenever the data graph has clusters connecting their labels
    (Algorithm 2 line 8, checked through ``task_clusters``).

    ``paper_faithful`` reproduces Algorithm 2 exactly, including its line-7
    guard (only add the negation edge ``(order[i], order[j])`` when some
    position ``k < i`` is a pattern neighbor of ``order[j]``). The engine
    default (``False``) drops that guard and records every real negation
    dependency, which is the conservative choice our executor's reuse
    machinery requires for soundness; the metrics code (Fig. 12) uses the
    faithful form.
    """
    variant = Variant.parse(variant)
    n = pattern.num_vertices
    if sorted(order) != list(range(n)):
        raise PlanError("matching order must be a permutation of pattern vertices")
    if variant.induced and task_clusters is None:
        raise PlanError("vertex-induced BuildDAG needs task clusters (Alg. 2 line 8)")

    dag = DependencyDAG(range(n))
    neighbor_sets = [set(pattern.neighbors(v)) for v in range(n)]
    for j in range(1, n):
        u_j = order[j]
        for i in range(j):
            u_i = order[i]
            if u_i in neighbor_sets[u_j]:
                dag.add_edge(u_i, u_j)
            elif variant.induced:
                if paper_faithful:
                    has_earlier_neighbor = any(
                        order[k] in neighbor_sets[u_j] for k in range(i)
                    )
                    if not has_earlier_neighbor:
                        continue
                if task_clusters.has_negation_between(u_i, u_j):
                    dag.add_edge(u_i, u_j)
    return dag
