"""CSCE core: variants, dependency DAGs, planning, and execution.

Execution itself lives in :mod:`repro.engine` (logical plans are compiled
to physical operators and run iteratively); this package keeps the
planning pipeline and re-exports the engine's public contract for
compatibility.
"""

from repro.core.variants import Variant
from repro.core.dag import DependencyDAG, build_dag
from repro.core.descendants import compute_descendants, compute_descendant_sizes
from repro.core.equivalence import SCEStats, nec_classes, sce_statistics
from repro.core.gcf import gcf_order, rapidmatch_order
from repro.core.ldsf import ldsf_order
from repro.core.plan import Plan, assemble_plan
from repro.core.executor import MatchOptions, MatchResult, execute
from repro.core.counting import count_embeddings
from repro.core.csce import CSCE, PLANNERS
from repro.core.cost import cost_based_order
from repro.core.continuous import (
    ContinuousMatcher,
    DeltaResult,
    embeddings_containing_edge,
)

__all__ = [
    "Variant",
    "DependencyDAG",
    "build_dag",
    "compute_descendants",
    "compute_descendant_sizes",
    "SCEStats",
    "nec_classes",
    "sce_statistics",
    "gcf_order",
    "rapidmatch_order",
    "ldsf_order",
    "Plan",
    "assemble_plan",
    "MatchOptions",
    "MatchResult",
    "execute",
    "count_embeddings",
    "CSCE",
    "PLANNERS",
    "cost_based_order",
    "ContinuousMatcher",
    "DeltaResult",
    "embeddings_containing_edge",
]
