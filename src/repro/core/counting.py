"""Embedding counting with SCE factorization.

Enumeration must spell out every embedding, but counting can exploit
Sequential Candidate Equivalence directly: once the unmatched suffix of the
plan splits into regions with no dependency path between them (components of
``H``), their counts multiply — each region is matched once instead of once
per sibling combination (the paper's R1/R2 example in Section I).

Under the injective variants the product is only sound when sibling regions
cannot compete for the same data vertices. Candidates always carry their
pattern vertex's label, so regions with disjoint label sets are safe —
exactly Definition 1's observation that ``C \\ {v_x} = C`` when labels
differ. Regions sharing labels are merged and enumerated jointly.

Region counts are memoized on (region, images of its dependency frontier,
the used data vertices that could collide with it), so identical subproblems
across sibling mappings are solved once — SCE's "all succeed or fail the
same way" reuse.
"""

from __future__ import annotations

import time

from repro.core.candidates import CandidateComputer
from repro.core.plan import Plan
from repro.core.executor import MatchOptions, _TIME_CHECK_INTERVAL
from repro.errors import TimeLimitExceeded
from repro.obs import NULL_OBS, unified_stats


class _Counter:
    def __init__(self, plan: Plan, options: MatchOptions):
        self.plan = plan
        self.options = options
        obs = options.obs or NULL_OBS
        profiler = getattr(obs, "profile", None)
        self._profile = (
            profiler.search if profiler is not None and profiler.enabled else None
        )
        self.computer = CandidateComputer(
            plan, use_sce=options.use_sce, profile=self._profile
        )
        self.position = plan.position
        self.order = plan.order
        self.injective = plan.variant.injective
        self.labels = [plan.pattern.vertex_label(v) for v in range(plan.num_vertices)]
        self.assignment = [-1] * plan.num_vertices
        self.used: set[int] = set()
        self.nodes = 0
        self.factorizations = 0
        self.group_memo_hits = 0
        self.backtracks = 0
        self.prunes_injective = 0
        self._group_memo: dict[tuple, int] = {}
        self._deadline = (
            time.perf_counter() + options.time_limit
            if options.time_limit is not None
            else None
        )
        self._heartbeat = (options.obs or NULL_OBS).heartbeat
        self._ticking = self._deadline is not None or self._heartbeat.enabled
        self._top_level_count = 0

    # ------------------------------------------------------------------
    def count(self) -> int:
        plan = self.plan
        if plan.impossible():
            return 0
        all_positions = tuple(range(plan.num_vertices))
        return self._count_list(all_positions, top_level=True)

    # ------------------------------------------------------------------
    def _count_list(self, positions: tuple[int, ...], top_level: bool = False) -> int:
        if not positions:
            return 1
        if self.options.use_sce and len(positions) > 1:
            groups = self._independent_groups(positions)
            if len(groups) > 1:
                self.factorizations += 1
                total = 1
                for group in groups:
                    total *= self._count_group(group)
                    if total == 0:
                        break
                return total
        # Sequential step: enumerate the first position's candidates.
        pos = positions[0]
        rest = positions[1:]
        u = self.order[pos]
        self._tick(pos)
        candidates = self.computer.raw(pos, self.assignment)
        if self._profile is not None:
            self._profile.visit(pos, candidates.shape[0])
        total = 0
        for v in candidates.tolist():
            if self.injective and v in self.used:
                self.prunes_injective += 1
                continue
            self.assignment[u] = v
            if self.injective:
                self.used.add(v)
            total += self._count_list(rest)
            if self.injective:
                self.used.discard(v)
            self.assignment[u] = -1
            if top_level:
                self._top_level_count = total
        if total == 0:
            self.backtracks += 1
            if self._profile is not None:
                self._profile.backtrack(pos)
        return total

    def _count_group(self, positions: tuple[int, ...]) -> int:
        """Count one independent region, memoized on its frontier state."""
        members = {self.order[p] for p in positions}
        frontier = sorted(
            {
                prior
                for p in positions
                for prior in self.plan.memo_priors[p]
                if prior not in members
            }
        )
        if self.injective:
            group_labels = {self.labels[self.order[p]] for p in positions}
            relevant_used = frozenset(
                v for v in self.used if self._data_label(v) in group_labels
            )
        else:
            relevant_used = frozenset()
        key = (
            positions,
            tuple(self.assignment[prior] for prior in frontier),
            relevant_used,
        )
        cached = self._group_memo.get(key)
        if cached is not None:
            self.group_memo_hits += 1
            return cached
        result = self._count_list(positions)
        self._group_memo[key] = result
        return result

    def _independent_groups(
        self, positions: tuple[int, ...]
    ) -> list[tuple[int, ...]]:
        """Split the suffix into independent groups.

        Components come from ``H`` restricted to the unmatched vertices; for
        injective variants, components sharing any vertex label are merged
        back together (the product would otherwise double-count collisions).
        """
        vertices = [self.order[p] for p in positions]
        components = self.plan.dag.undirected_components(vertices)
        if len(components) <= 1:
            return [positions]
        if self.injective:
            components = self._merge_by_labels(components)
            if len(components) <= 1:
                return [positions]
        return [
            tuple(sorted(self.position[v] for v in component))
            for component in components
        ]

    def _merge_by_labels(self, components: list[list[int]]) -> list[list[int]]:
        parent = list(range(len(components)))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        owner: dict = {}
        for idx, component in enumerate(components):
            for v in component:
                label = self.labels[v]
                if label in owner:
                    parent[find(idx)] = find(owner[label])
                else:
                    owner[label] = idx
        merged: dict[int, list[int]] = {}
        for idx, component in enumerate(components):
            merged.setdefault(find(idx), []).extend(component)
        return [sorted(group) for group in merged.values()]

    # ------------------------------------------------------------------
    def _data_label(self, v: int):
        return self.plan.task_clusters.data_vertex_labels[v]

    def _tick(self, depth: int = 0) -> None:
        self.nodes += 1
        if self._ticking and self.nodes % _TIME_CHECK_INTERVAL == 0:
            if self._heartbeat.enabled:
                self._heartbeat.beat(
                    self.nodes, self._top_level_count, depth, phase="count"
                )
            if (
                self._deadline is not None
                and time.perf_counter() > self._deadline
            ):
                raise TimeLimitExceeded(
                    "time limit exceeded during counting",
                    partial_count=self._top_level_count,
                )


def count_embeddings(plan: Plan, options: MatchOptions) -> tuple[int, dict]:
    """Count embeddings of ``plan``; returns (count, stats).

    ``stats`` carries the full unified key set
    (:data:`repro.obs.counters.STAT_KEYS`), matching the enumeration path
    key-for-key; ``prunes_restriction`` is always 0 here because
    restrictions force the enumeration path.
    """
    counter = _Counter(plan, options)
    total = counter.count()
    stats = unified_stats(
        nodes=counter.nodes,
        candidate_stats=counter.computer.stats,
        backtracks=counter.backtracks,
        prunes_injective=counter.prunes_injective,
        factorizations=counter.factorizations,
        group_memo_hits=counter.group_memo_hits,
    )
    return total, stats
