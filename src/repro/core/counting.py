"""Compatibility shim: counting moved to :mod:`repro.engine.counting`.

The SCE-factorized counter now runs iteratively over compiled
:class:`~repro.engine.PhysicalPlan` operators (see
:class:`repro.engine.FactorizedCounter`); this module keeps the historical
``count_embeddings(plan, options)`` entry point for callers holding a
logical plan.
"""

from __future__ import annotations

from repro.core.plan import Plan
from repro.engine.counting import FactorizedCounter, count_physical
from repro.engine.physical import compile_plan
from repro.engine.results import MatchOptions

__all__ = ["FactorizedCounter", "count_embeddings", "count_physical"]


def count_embeddings(plan: Plan, options: MatchOptions) -> tuple[int, dict]:
    """Count embeddings of a logical plan; returns (count, stats).

    ``stats`` carries the full unified key set
    (:data:`repro.obs.counters.STAT_KEYS`), matching the enumeration path
    key-for-key. Timeouts now surface as a partial count (the engine is
    cooperative); callers needing the flag should use
    :func:`repro.engine.count_physical`.
    """
    total, stats, _stop_reason, _degradation = count_physical(
        compile_plan(plan), options
    )
    return total, stats
