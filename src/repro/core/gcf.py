"""Greatest-Constraint-First ordering (Section VI).

RI's three counting rules (Eq. 1) pick the next pattern vertex that is most
constrained by / most constraining on the vertices already ordered. The
paper's improvement breaks RI's frequent ties with data-graph knowledge:
the CCSR cluster sizes of the edges involved (Eq. 2) — smaller clusters mean
fewer candidates, so the tied vertex with the smallest relevant cluster wins.
"""

from __future__ import annotations

from typing import Sequence

from repro.ccsr.store import TaskClusters
from repro.errors import PlanError
from repro.graph.model import Graph

_BIG = float("inf")


def edge_cluster_size(
    task_clusters: TaskClusters | None, pattern: Graph, a: int, b: int
) -> float:
    """|I_C| of the cluster(s) of the pattern edge(s) between ``a`` and
    ``b`` — the paper's ``|I_C(u_a, u_b)|``. Returns 0 when some edge has no
    cluster (no candidates at all) and +inf when the pair has no edge or no
    data-graph statistics are available."""
    if task_clusters is None:
        return _BIG
    sizes = []
    for edge in pattern.edges_between(a, b):
        cluster = task_clusters.edge_clusters.get(edge)
        sizes.append(0 if cluster is None else cluster.num_entries)
    return min(sizes) if sizes else _BIG


def _min_incident_cluster_size(
    task_clusters: TaskClusters | None, pattern: Graph, v: int
) -> float:
    """min |alpha_i| over clusters of edges incident to ``v`` (first-vertex
    tie-break)."""
    if task_clusters is None:
        return _BIG
    sizes = [
        0 if task_clusters.edge_clusters.get(e) is None
        else task_clusters.edge_clusters[e].num_entries
        for e in pattern.incident_edges(v)
    ]
    return min(sizes) if sizes else _BIG


def gcf_order(
    pattern: Graph,
    task_clusters: TaskClusters | None = None,
    use_cluster_tiebreak: bool = True,
    rationale: list | None = None,
) -> list[int]:
    """Compute a matching order with GCF.

    With ``task_clusters`` and ``use_cluster_tiebreak``, ties on RI's rules
    are broken by the minimum relevant cluster size (Eq. 2); the final
    tie-break is the lowest vertex id, which keeps plans deterministic
    (where RI picks randomly).

    When ``rationale`` is a list, one entry per chosen vertex is appended
    explaining the choice — the RI rule-set sizes (``|T1|``/``|T2|``/
    ``|T3|``) and the cluster tie-break values that won — for plan spans
    and run-reports (the candidate-order rationale).
    """
    n = pattern.num_vertices
    if n == 0:
        raise PlanError("cannot order an empty pattern")
    clusters = task_clusters if use_cluster_tiebreak else None
    neighbor_sets = [set(pattern.neighbors(v)) for v in range(n)]

    # --- first vertex: highest degree, ties by smallest incident cluster.
    def first_key(v: int):
        return (
            -pattern.degree(v),
            _min_incident_cluster_size(clusters, pattern, v),
            v,
        )

    order = [min(range(n), key=first_key)]
    chosen = set(order)
    if rationale is not None:
        first = order[0]
        rationale.append(
            {
                "vertex": first,
                "rule": "first",
                "degree": pattern.degree(first),
                "min_incident_cluster": _finite(
                    _min_incident_cluster_size(clusters, pattern, first)
                ),
            }
        )

    while len(order) < n:
        best = None
        best_key = None
        for u_x in range(n):
            if u_x in chosen:
                continue
            # Eq. 1 — the three RI rule sets.
            t1 = neighbor_sets[u_x] & chosen
            t2 = set()
            t3 = set()
            for u_j in neighbor_sets[u_x] - chosen:
                if u_j == u_x:
                    continue
                if neighbor_sets[u_j] & chosen:
                    t2.add(u_j)
                else:
                    t3.add(u_j)
            # Eq. 2 — cluster-size tie-breaks, one per rule.
            omega1 = min(
                (edge_cluster_size(clusters, pattern, u_i, u_x) for u_i in t1),
                default=_BIG,
            )
            omega2 = min(
                (edge_cluster_size(clusters, pattern, u_x, u_j) for u_j in t2),
                default=_BIG,
            )
            omega3 = min(
                (edge_cluster_size(clusters, pattern, u_x, u_j) for u_j in t3),
                default=_BIG,
            )
            key = (-len(t1), -len(t2), -len(t3), omega1, omega2, omega3, u_x)
            if best_key is None or key < best_key:
                best, best_key = u_x, key
        order.append(best)
        chosen.add(best)
        if rationale is not None and best_key is not None:
            rationale.append(
                {
                    "vertex": best,
                    "rule": "gcf",
                    "t1": -best_key[0],
                    "t2": -best_key[1],
                    "t3": -best_key[2],
                    "omega": [_finite(best_key[3]), _finite(best_key[4]),
                              _finite(best_key[5])],
                }
            )
    return order


def _finite(value: float) -> float | None:
    """Render +inf tie-break values as ``None`` (JSON-safe rationale)."""
    return None if value == _BIG else value


def rapidmatch_order(pattern: Graph, task_clusters: TaskClusters | None = None) -> list[int]:
    """RapidMatch-style ordering: repeatedly pick the vertex connecting the
    most already-ordered vertices (its "nucleus-first" rule), ties broken by
    degree then smallest relation. Used as the RM plan baseline in Fig. 13."""
    n = pattern.num_vertices
    if n == 0:
        raise PlanError("cannot order an empty pattern")
    neighbor_sets = [set(pattern.neighbors(v)) for v in range(n)]

    def start_key(v: int):
        return (-pattern.degree(v), _min_incident_cluster_size(task_clusters, pattern, v), v)

    order = [min(range(n), key=start_key)]
    chosen = set(order)
    while len(order) < n:
        def key(v: int):
            backward = len(neighbor_sets[v] & chosen)
            return (
                -backward,
                -pattern.degree(v),
                _min_incident_cluster_size(task_clusters, pattern, v),
                v,
            )

        best = min((v for v in range(n) if v not in chosen), key=key)
        order.append(best)
        chosen.add(best)
    return order


def validate_order(pattern: Graph, order: Sequence[int]) -> None:
    """Raise :class:`PlanError` unless ``order`` is a permutation of the
    pattern's vertices."""
    if sorted(order) != list(range(pattern.num_vertices)):
        raise PlanError(
            f"order {list(order)} is not a permutation of"
            f" 0..{pattern.num_vertices - 1}"
        )
