"""A cost-based matching-order optimizer (the Graphflow family).

Section II describes two optimizer families: heuristic rules (RI/GCF — what
CSCE uses) and *systematic cost estimation* (Graphflow), which enumerates
candidate orders and picks the cheapest under a cardinality model. The
paper's conclusion suggests exploring different heuristics on top of CSCE;
this module supplies the cost-based alternative as an extra planner
(``planner="cost"``) so the two families can be compared on identical
execution machinery (see ``benchmarks/test_ablations.py``).

Model. Matching one more vertex ``x`` after the set ``S`` multiplies the
partial-embedding cardinality by the expected candidate count ``e(x | S)``,
estimated from CCSR statistics as the smallest average fan-out among the
clusters of the backward edges (an intersection is no larger than its
smallest input). The cost of an order is the sum of intermediate
cardinalities — the classic join-ordering objective — minimized exactly by
dynamic programming over vertex subsets for patterns up to
``max_exact_vertices`` and greedily beyond that.
"""

from __future__ import annotations

from typing import Sequence

from repro.ccsr.store import TaskClusters
from repro.errors import PlanError
from repro.graph.model import Graph

#: Subset DP is O(2^n * n^2); past this size fall back to greedy.
DEFAULT_MAX_EXACT = 12

_BIG = float("inf")


def _expected_candidates(
    task: TaskClusters, pattern: Graph, prior: int, vertex: int
) -> float:
    """E[|candidates of vertex|] given one mapped backward neighbor."""
    estimates = []
    for edge in pattern.edges_between(prior, vertex):
        cluster = task.edge_clusters.get(edge)
        if cluster is None:
            return 0.0
        if not edge.directed:
            sources = cluster.source_vertices().shape[0]
        elif edge.src == prior:
            sources = cluster.source_vertices().shape[0]
        else:
            sources = cluster.destination_vertices().shape[0]
        estimates.append(cluster.num_entries / max(1, sources))
    return min(estimates) if estimates else _BIG


def _start_cardinality(task: TaskClusters, pattern: Graph, vertex: int) -> float:
    """E[|candidates|] for an order's first vertex (its smallest cluster
    side, mirroring the executor's first-candidate pool)."""
    pools = []
    for edge in pattern.incident_edges(vertex):
        cluster = task.edge_clusters.get(edge)
        if cluster is None:
            return 0.0
        if not edge.directed or edge.src == vertex:
            pools.append(cluster.source_vertices().shape[0])
        else:
            pools.append(cluster.destination_vertices().shape[0])
    return min(pools) if pools else float(len(task.data_vertex_labels))


def extension_estimate(
    task: TaskClusters, pattern: Graph, matched: Sequence[int], vertex: int
) -> float:
    """E[|candidates of vertex|] given the matched set (min over priors)."""
    neighbors = [u for u in pattern.neighbors(vertex) if u in set(matched)]
    if not neighbors:
        return _start_cardinality(task, pattern, vertex)
    return min(
        _expected_candidates(task, pattern, prior, vertex) for prior in neighbors
    )


def _exact_order(pattern: Graph, task: TaskClusters) -> list[int]:
    """Optimal order under the model, by subset dynamic programming."""
    n = pattern.num_vertices
    neighbor_masks = [0] * n
    for v in range(n):
        for w in pattern.neighbors(v):
            neighbor_masks[v] |= 1 << w
    # Pairwise estimates, precomputed.
    pair_estimate = [[_BIG] * n for _ in range(n)]
    for v in range(n):
        for w in pattern.neighbors(v):
            pair_estimate[w][v] = _expected_candidates(task, pattern, w, v)

    start = [_start_cardinality(task, pattern, v) for v in range(n)]

    # DP over subsets: best (cost, cardinality, last-added order) per mask.
    best: dict[int, tuple[float, float, list[int]]] = {}
    for v in range(n):
        best[1 << v] = (start[v], start[v], [v])
    for mask in sorted(best.keys() | set(range(1, 1 << n)), key=int.bit_count):
        state = best.get(mask)
        if state is None:
            continue
        cost, cardinality, order = state
        for v in range(n):
            bit = 1 << v
            if mask & bit:
                continue
            priors = mask & neighbor_masks[v]
            if priors:
                estimate = min(
                    pair_estimate[u][v]
                    for u in range(n)
                    if priors & (1 << u)
                )
            else:
                estimate = start[v]
            new_cardinality = cardinality * estimate
            new_cost = cost + new_cardinality
            new_mask = mask | bit
            existing = best.get(new_mask)
            if existing is None or new_cost < existing[0]:
                best[new_mask] = (new_cost, new_cardinality, order + [v])
    return best[(1 << n) - 1][2]


def _greedy_order(pattern: Graph, task: TaskClusters) -> list[int]:
    """Greedy fallback for large patterns: cheapest extension first."""
    n = pattern.num_vertices
    order = [min(range(n), key=lambda v: (_start_cardinality(task, pattern, v), v))]
    chosen = set(order)
    while len(order) < n:
        def key(v: int):
            return (extension_estimate(task, pattern, order, v), v)

        # Prefer connected extensions; fall back to any remaining vertex.
        connected = [
            v
            for v in range(n)
            if v not in chosen and set(pattern.neighbors(v)) & chosen
        ]
        pool = connected or [v for v in range(n) if v not in chosen]
        nxt = min(pool, key=key)
        order.append(nxt)
        chosen.add(nxt)
    return order


def cost_based_order(
    pattern: Graph,
    task: TaskClusters,
    max_exact_vertices: int = DEFAULT_MAX_EXACT,
) -> list[int]:
    """A matching order from systematic cost estimation.

    Exact subset-DP for small patterns, greedy beyond ``max_exact_vertices``
    (Graphflow similarly bounds its enumeration — systematic search "becomes
    very expensive" as Section VI notes, which is the trade-off this planner
    exists to demonstrate).
    """
    if pattern.num_vertices == 0:
        raise PlanError("cannot order an empty pattern")
    if pattern.num_vertices <= max_exact_vertices:
        return _exact_order(pattern, task)
    return _greedy_order(pattern, task)
