"""Executable matching plans.

A :class:`Plan` is the contract between the optimizer and the executor: the
final matching order ``Phi*``, the dependency DAG ``H`` built on it, and —
per order position — the concrete cluster probes the executor runs:

* *edge constraints*: which cluster neighbor list of which already-matched
  vertex to intersect (the pipelined-WCOJ step);
* *negation constraints*: which cluster edges must be absent
  (vertex-induced only);
* *first candidates*: the static candidate pool for positions with no
  backward edge (the order's first vertex, or the first vertex of a new
  pattern component).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Hashable, Sequence

import numpy as np

from repro.ccsr.cluster import Cluster
from repro.ccsr.store import CCSRStore, NegationCheck, TaskClusters
from repro.core.dag import DependencyDAG
from repro.core.variants import Variant
from repro.errors import PlanError
from repro.graph.model import Graph

SUCCESSORS = "succ"
PREDECESSORS = "pred"

_EMPTY = np.empty(0, dtype=np.int64)


@dataclass(frozen=True)
class EdgeConstraint:
    """One backward pattern edge: intersect candidates with a neighbor list.

    ``direction`` selects ``cluster.successors(f(prior))`` or
    ``cluster.predecessors(f(prior))``.
    """

    prior: int
    cluster: Cluster
    direction: str

    def neighbor_array(self, mapped_prior: int) -> np.ndarray:
        if self.direction == SUCCESSORS:
            return self.cluster.successors(mapped_prior)
        return self.cluster.predecessors(mapped_prior)


@dataclass(frozen=True)
class NegationConstraint:
    """One "edge must be absent" probe against an earlier mapping.

    ``swap`` encodes argument order: the underlying :class:`NegationCheck`
    was registered for the pattern pair in ascending vertex-id order, which
    may be the reverse of (prior, current).
    """

    prior: int
    check: NegationCheck
    swap: bool

    def violated(self, mapped_prior: int, candidate: int) -> bool:
        if self.swap:
            return self.check.violated(candidate, mapped_prior)
        return self.check.violated(mapped_prior, candidate)

    def exclusion_array(self, mapped_prior: int) -> np.ndarray:
        """All candidates this probe forbids, as a sorted array.

        The probe "no cluster edge between f(prior) and the candidate in
        direction X" excludes exactly one neighbor list of ``f(prior)``,
        which lets the executor filter candidates vectorized instead of
        binary-searching per candidate.
        """
        from repro.ccsr.store import FORWARD

        use_successors = (self.check.mode == FORWARD) != self.swap
        cluster = self.check.cluster
        if use_successors:
            return cluster.successors(mapped_prior)
        return cluster.predecessors(mapped_prior)


@dataclass
class Plan:
    """A fully assembled matching plan (the paper's optimized ``Phi*``)."""

    pattern: Graph
    variant: Variant
    order: list[int]
    dag: DependencyDAG
    task_clusters: TaskClusters
    backward: list[list[EdgeConstraint]]
    negations: list[list[NegationConstraint]]
    first_candidates: list[np.ndarray | None]
    memo_priors: list[tuple[int, ...]]
    memo_specs: list[tuple]
    planner_name: str = "csce"
    plan_seconds: float = 0.0
    descendant_sizes: dict[int, int] = field(default_factory=dict)
    order_rationale: list = field(default_factory=list)
    """Per-step explanations of why the optimizer picked each vertex (the
    GCF rule-set sizes and cluster tie-breaks) — populated when planning
    under a live :class:`repro.obs.Observation` and surfaced in
    run-reports; empty otherwise."""

    @property
    def num_vertices(self) -> int:
        return len(self.order)

    @property
    def position(self) -> dict[int, int]:
        return {v: i for i, v in enumerate(self.order)}

    def validate(self) -> None:
        """Sanity-check internal consistency; raises :class:`PlanError`."""
        n = self.pattern.num_vertices
        if sorted(self.order) != list(range(n)):
            raise PlanError("plan order is not a permutation")
        if not self.dag.is_topological_order(self.order):
            raise PlanError("plan order is not a topological order of H")
        position = self.position
        for pos, constraints in enumerate(self.backward):
            for c in constraints:
                if position[c.prior] >= pos:
                    raise PlanError(
                        f"constraint at position {pos} references later vertex"
                    )
        for pos, constraints in enumerate(self.negations):
            for c in constraints:
                if position[c.prior] >= pos:
                    raise PlanError(
                        f"negation at position {pos} references later vertex"
                    )

    def impossible(self) -> bool:
        """True when a pattern edge has no cluster: zero embeddings."""
        return self.task_clusters.has_impossible_edge()

    def describe(self) -> str:
        """A human-readable explanation of the plan (CLI ``plan`` output)."""
        lines = [
            f"planner      : {self.planner_name}",
            f"variant      : {self.variant}",
            f"order (Phi*) : {self.order}",
            f"DAG          : {self.dag.num_edges} dependency edges",
        ]
        for pos, u in enumerate(self.order):
            parts = []
            for c in self.backward[pos]:
                arrow = "->" if c.direction == SUCCESSORS else "<-"
                parts.append(f"u{c.prior}{arrow}u{u} via {c.cluster.key}")
            if self.negations[pos]:
                parts.append(f"{len(self.negations[pos])} negation probes")
            if not parts:
                pool = self.first_candidates[pos]
                pool_size = 0 if pool is None else len(pool)
                parts.append(f"static pool of {pool_size} candidates")
            descendant = self.descendant_sizes.get(u, 0)
            lines.append(
                f"  step {pos}: u{u} (descendants={descendant}) <- "
                + "; ".join(parts)
            )
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"<Plan {self.planner_name} order={self.order}"
            f" variant={self.variant}>"
        )


def _first_candidate_pool(
    store: CCSRStore,
    task: TaskClusters,
    pattern: Graph,
    vertex: int,
) -> np.ndarray:
    """The smallest static candidate pool for an unconstrained position.

    Every incident pattern edge restricts ``vertex`` to one side of its
    cluster; the smallest such side wins. A vertex with no incident edges
    (disconnected pattern) falls back to all data vertices with its label.
    """
    label: Hashable = pattern.vertex_label(vertex)
    pools: list[np.ndarray] = []
    for edge in pattern.incident_edges(vertex):
        cluster = task.edge_clusters.get(edge)
        if cluster is None:
            return _EMPTY
        if edge.directed:
            pool = (
                cluster.source_vertices()
                if edge.src == vertex
                else cluster.destination_vertices()
            )
        else:
            endpoints = cluster.source_vertices()
            if cluster.key.src_label == cluster.key.dst_label:
                pool = endpoints
            else:
                labels = store.vertex_labels
                pool = np.asarray(
                    [v for v in endpoints.tolist() if labels[v] == label],
                    dtype=np.int64,
                )
        pools.append(pool)
    if pools:
        return min(pools, key=len)
    return np.asarray(store.vertices_with_label(label), dtype=np.int64)


def assemble_plan(
    store: CCSRStore,
    task: TaskClusters,
    pattern: Graph,
    order: Sequence[int],
    dag: DependencyDAG,
    variant: Variant,
    planner_name: str,
    descendant_sizes: dict[int, int] | None = None,
    obs=None,
) -> Plan:
    """Turn an order + DAG into the per-position constraint lists.

    ``obs`` (a :class:`repro.obs.Observation`) adds a ``plan.assemble``
    span recording constraint counts.
    """
    from repro.obs import NULL_OBS

    with (obs or NULL_OBS).tracer.span(
        "plan.assemble", planner=planner_name
    ) as span:
        plan = _assemble(
            store, task, pattern, order, dag, variant, planner_name,
            descendant_sizes,
        )
        span.set("backward_constraints", sum(len(b) for b in plan.backward))
        span.set("negation_constraints", sum(len(x) for x in plan.negations))
    return plan


def _assemble(
    store: CCSRStore,
    task: TaskClusters,
    pattern: Graph,
    order: Sequence[int],
    dag: DependencyDAG,
    variant: Variant,
    planner_name: str,
    descendant_sizes: dict[int, int] | None = None,
) -> Plan:
    start = time.perf_counter()
    n = pattern.num_vertices
    position = {v: i for i, v in enumerate(order)}
    backward: list[list[EdgeConstraint]] = [[] for _ in range(n)]
    negations: list[list[NegationConstraint]] = [[] for _ in range(n)]
    first_candidates: list[np.ndarray | None] = [None] * n

    for edge in pattern.edges():
        cluster = task.edge_clusters.get(edge)
        src_pos, dst_pos = position[edge.src], position[edge.dst]
        early, late = (edge.src, edge.dst) if src_pos < dst_pos else (edge.dst, edge.src)
        late_pos = max(src_pos, dst_pos)
        if cluster is None:
            # Impossible edge: pin an always-empty constraint on the later
            # endpoint so execution terminates immediately.
            backward[late_pos].append(
                EdgeConstraint(early, _EMPTY_CLUSTER, SUCCESSORS)
            )
            continue
        if not edge.directed:
            direction = SUCCESSORS  # undirected CSR is symmetric
        elif early == edge.src:
            direction = SUCCESSORS
        else:
            direction = PREDECESSORS
        backward[late_pos].append(EdgeConstraint(early, cluster, direction))

    if variant.induced:
        for (u_a, u_b), checks in task.negation_checks.items():
            pos_a, pos_b = position[u_a], position[u_b]
            early, late = (u_a, u_b) if pos_a < pos_b else (u_b, u_a)
            late_pos = max(pos_a, pos_b)
            # Checks were registered on (u_a, u_b) with u_a < u_b by id;
            # swap when the later-matched vertex is the pair's first slot.
            swap = late == u_a
            for check in checks:
                negations[late_pos].append(NegationConstraint(early, check, swap))

    memo_priors: list[tuple[int, ...]] = []
    memo_specs: list[tuple] = []
    for pos in range(n):
        priors = sorted(
            {c.prior for c in backward[pos]} | {c.prior for c in negations[pos]}
        )
        memo_priors.append(tuple(priors))
        if not backward[pos]:
            first_candidates[pos] = _first_candidate_pool(
                store, task, pattern, order[pos]
            )
        # The spec identifies *what* is computed, independent of the pattern
        # vertex id — NEC-equivalent vertices share specs and hence share
        # memoized candidate sets.
        edge_spec = tuple(
            sorted((c.prior, id(c.cluster), c.direction) for c in backward[pos])
        )
        neg_spec = tuple(
            sorted(
                (c.prior, id(c.check.cluster), c.check.mode, c.swap)
                for c in negations[pos]
            )
        )
        label = pattern.vertex_label(order[pos])
        # Unconstrained positions read from a static pool; the pool's
        # identity must be part of the spec, or two same-label pattern
        # vertices with *different* pools would wrongly share cache entries.
        pool_id = (
            id(first_candidates[pos]) if first_candidates[pos] is not None else None
        )
        memo_specs.append((label, edge_spec, neg_spec, pool_id))

    plan = Plan(
        pattern=pattern,
        variant=variant,
        order=list(order),
        dag=dag,
        task_clusters=task,
        backward=backward,
        negations=negations,
        first_candidates=first_candidates,
        memo_priors=memo_priors,
        memo_specs=memo_specs,
        planner_name=planner_name,
        plan_seconds=time.perf_counter() - start,
        descendant_sizes=descendant_sizes or {},
    )
    plan.validate()
    return plan


class _AlwaysEmptyCluster:
    """Sentinel cluster used for pattern edges with no matching data edges."""

    key = None

    @staticmethod
    def successors(_v: int) -> np.ndarray:
        return _EMPTY

    @staticmethod
    def predecessors(_v: int) -> np.ndarray:
        return _EMPTY

    @property
    def num_entries(self) -> int:
        return 0


_EMPTY_CLUSTER = _AlwaysEmptyCluster()
