"""Named-binding queries: the DSL meets the engine.

``CSCE.query("(a:P)-[:knows]-(b:P)")`` parses the pattern expression,
matches it, and returns rows keyed by the *names* used in the expression —
the ergonomic surface a graph-database user expects (Section II's framing
of subgraph matching as the fundamental graph-database query).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.core.executor import MatchResult
from repro.core.variants import Variant
from repro.graph.dsl import parse_pattern
from repro.graph.model import Graph


@dataclass
class QueryResult:
    """Match results projected onto the pattern expression's names.

    Iterable: yields one ``{name: data vertex}`` dict per embedding.
    Anonymous pattern vertices participate in matching but are dropped
    from the rows (like unreturned Cypher variables).
    """

    pattern: Graph
    bindings: dict[str, int]
    match_result: MatchResult
    rows: list[dict[str, int]] = field(default_factory=list)

    @property
    def count(self) -> int:
        return self.match_result.count

    @property
    def truncated(self) -> bool:
        return self.match_result.truncated

    @property
    def timed_out(self) -> bool:
        return self.match_result.timed_out

    @property
    def columns(self) -> list[str]:
        return sorted(self.bindings)

    def __iter__(self) -> Iterator[dict[str, int]]:
        return iter(self.rows)

    def __len__(self) -> int:
        return len(self.rows)

    def distinct(self, *names: str) -> set[tuple]:
        """Distinct value tuples of the given columns."""
        if not names:
            names = tuple(self.columns)
        return {tuple(row[name] for name in names) for row in self.rows}

    def __repr__(self) -> str:
        return (
            f"<QueryResult {len(self.rows)} rows,"
            f" columns={self.columns}>"
        )


def run_query(
    engine,
    text: str,
    variant: Variant | str = Variant.EDGE_INDUCED,
    **match_kwargs,
) -> QueryResult:
    """Parse ``text`` and run it on ``engine`` (a :class:`CSCE`).

    Extra keyword arguments go straight to ``engine.match`` — limits, time
    budgets, restrictions, and seeds all work. Seeds may be given by *name*
    (``seed={"a": 4}``) or by pattern vertex id.
    """
    pattern, bindings = parse_pattern(text)
    seed = match_kwargs.get("seed")
    if seed:
        resolved = {}
        for key, value in seed.items():
            if isinstance(key, str):
                try:
                    resolved[bindings[key]] = value
                except KeyError:
                    raise KeyError(
                        f"seed name {key!r} does not appear in the query"
                    ) from None
            else:
                resolved[key] = value
        match_kwargs["seed"] = resolved
    result = engine.match(pattern, variant, **match_kwargs)
    rows = []
    if result.embeddings is not None:
        for mapping in result.embeddings:
            rows.append({name: mapping[v] for name, v in bindings.items()})
    return QueryResult(
        pattern=pattern,
        bindings=bindings,
        match_result=result,
        rows=rows,
    )
