"""The CSCE facade — the library's primary public entry point.

Usage::

    from repro import CSCE, Variant

    engine = CSCE(data_graph)            # offline: builds the CCSR store
    result = engine.match(pattern)       # online: read + plan + execute
    print(result.count, result.total_seconds)

Planner configurations reproduce Fig. 13's ablation:

* ``"csce"`` — GCF with cluster tie-breaks, then LDSF fine-tuning (default);
* ``"ri_cluster"`` — GCF with cluster tie-breaks, no LDSF;
* ``"ri"`` — plain RI rules, no data-graph knowledge;
* ``"rm"`` — RapidMatch-style backward-connectivity ordering;
* ``"cost"`` — Graphflow-style systematic cost estimation (an extension
  beyond the paper's heuristics, see :mod:`repro.core.cost`).
"""

from __future__ import annotations

import logging
import time

from repro.ccsr.store import CCSRStore
from repro.core.dag import build_dag
from repro.core.descendants import compute_descendant_sizes
from repro.core.executor import MatchOptions, MatchResult, execute
from repro.core.gcf import gcf_order, rapidmatch_order
from repro.core.ldsf import ldsf_order
from repro.core.plan import Plan, assemble_plan
from repro.core.variants import Variant
from repro.errors import PlanError
from repro.graph.model import Graph
from repro.obs import NULL_OBS

logger = logging.getLogger(__name__)

PLANNERS = ("csce", "ri_cluster", "ri", "rm", "cost")


class CSCE:
    """Clustered-CSR + Sequential-Candidate-Equivalence matching engine."""

    def __init__(self, graph: Graph | CCSRStore, obs=None):
        """Build (or adopt) the CCSR store for a data graph.

        Passing a :class:`Graph` runs the offline clustering stage; passing
        a prebuilt :class:`CCSRStore` shares it across engines. ``obs`` (a
        :class:`repro.obs.Observation`) becomes the engine's default
        instrumentation for every run; per-call ``obs=`` arguments win.
        """
        if isinstance(graph, CCSRStore):
            self.store = graph
        else:
            self.store = CCSRStore(graph)
        self.obs = obs

    # ------------------------------------------------------------------
    def build_plan(
        self,
        pattern: Graph,
        variant: Variant | str = Variant.EDGE_INDUCED,
        planner: str = "csce",
        obs=None,
    ) -> Plan:
        """Read clusters and optimize a matching plan (Sections IV–VI)."""
        if planner not in PLANNERS:
            raise PlanError(f"unknown planner {planner!r}; choose from {PLANNERS}")
        variant = Variant.parse(variant)
        obs = obs or self.obs or NULL_OBS
        tracer = obs.tracer
        start = time.perf_counter()
        task = self.store.read(pattern, variant, obs=obs)

        rationale: list | None = [] if tracer.enabled else None
        with tracer.span(
            "plan", planner=planner, variant=variant.value
        ) as plan_span:
            if planner == "rm":
                order = rapidmatch_order(pattern, task)
            elif planner == "cost":
                from repro.core.cost import cost_based_order

                order = cost_based_order(pattern, task)
            else:
                with tracer.span("plan.gcf"):
                    order = gcf_order(
                        pattern,
                        task,
                        use_cluster_tiebreak=planner in ("csce", "ri_cluster"),
                        rationale=rationale,
                    )
            dag = build_dag(pattern, order, variant, task)
            descendant_sizes = compute_descendant_sizes(dag)
            if planner == "csce":
                with tracer.span("plan.ldsf"):
                    order = ldsf_order(
                        dag,
                        pattern,
                        task,
                        label_frequency=self.store.label_frequency,
                        descendant_sizes=descendant_sizes,
                    )
                dag = build_dag(pattern, order, variant, task)
            plan = assemble_plan(
                self.store,
                task,
                pattern,
                order,
                dag,
                variant,
                planner_name=planner,
                descendant_sizes=descendant_sizes,
                obs=obs,
            )
            plan_span.set("order", list(order))
            if rationale:
                plan_span.set("rationale", rationale)
        plan.plan_seconds = time.perf_counter() - start - task.read_seconds
        if rationale:
            plan.order_rationale = rationale
        logger.debug(
            "planned %s/%s: order=%s in %.4fs",
            planner,
            variant.value,
            plan.order,
            plan.plan_seconds,
        )
        return plan

    # ------------------------------------------------------------------
    def match(
        self,
        pattern: Graph,
        variant: Variant | str = Variant.EDGE_INDUCED,
        count_only: bool = False,
        max_embeddings: int | None = None,
        time_limit: float | None = None,
        use_sce: bool = True,
        planner: str = "csce",
        plan: Plan | None = None,
        restrictions: tuple[tuple[int, int], ...] | None = None,
        seed: dict[int, int] | None = None,
        obs=None,
    ) -> MatchResult:
        """Find embeddings of ``pattern`` in the data graph.

        Parameters
        ----------
        variant:
            ``"edge_induced"`` (default), ``"vertex_induced"``, or
            ``"homomorphic"`` — or a :class:`Variant`.
        count_only:
            Count embeddings without materializing them; enables the SCE
            count factorization.
        max_embeddings / time_limit:
            Resource caps; exceeding them returns a truncated result.
        use_sce:
            Ablation switch for candidate memoization + factorization.
        plan:
            A prebuilt plan to execute (skips planning); its variant must
            agree with ``variant``.
        restrictions:
            Symmetry restrictions ``(u, v)`` forcing ``f(u) < f(v)``; with a
            full restriction chain each automorphism orbit is found once.
        seed:
            Pinned mappings ``{pattern vertex: data vertex}``; only
            embeddings extending the seed are produced (delta matching).
        obs:
            A :class:`repro.obs.Observation` receiving spans (``match`` →
            ``read``/``plan``/``execute``), counters, and heartbeats for
            this run; ``None`` keeps instrumentation disabled.
        """
        variant = Variant.parse(variant)
        obs = obs or self.obs or NULL_OBS
        with obs.tracer.span(
            "match", engine="CSCE", variant=variant.value
        ) as span:
            if plan is None:
                plan = self.build_plan(pattern, variant, planner=planner, obs=obs)
            elif plan.variant is not variant:
                raise PlanError(
                    f"plan was built for {plan.variant}, not {variant}"
                )
            options = MatchOptions(
                count_only=count_only,
                max_embeddings=max_embeddings,
                time_limit=time_limit,
                use_sce=use_sce,
                restrictions=tuple(restrictions) if restrictions else None,
                seed=dict(seed) if seed else None,
                obs=obs if obs.enabled else None,
            )
            result = execute(plan, options)
            span.set("count", result.count)
        return result

    def count(self, pattern: Graph, variant: Variant | str = Variant.EDGE_INDUCED, **kwargs) -> int:
        """Shorthand: the embedding count (``count_only`` matching)."""
        return self.match(pattern, variant, count_only=True, **kwargs).count

    def query(
        self,
        text: str,
        variant: Variant | str = Variant.EDGE_INDUCED,
        **match_kwargs,
    ):
        """Run a DSL pattern expression and get named rows back.

        >>> engine.query("(a:P)-[:knows]-(b:P)").rows
        [{'a': 0, 'b': 1}, {'a': 1, 'b': 0}]
        """
        from repro.core.query import run_query

        return run_query(self, text, variant, **match_kwargs)

    def sce_report(
        self,
        pattern: Graph,
        variant: Variant | str = Variant.EDGE_INDUCED,
        paper_faithful: bool = True,
    ):
        """How much Sequential Candidate Equivalence this task exhibits.

        Returns the :class:`~repro.core.equivalence.SCEStats` measured on
        the GCF order's dependency DAG — the Fig. 12 metric, available for
        any (pattern, variant) without running the match.
        """
        from repro.core.equivalence import sce_statistics

        variant = Variant.parse(variant)
        task = self.store.read(pattern, variant)
        order = gcf_order(pattern, task)
        dag = build_dag(pattern, order, variant, task, paper_faithful=paper_faithful)
        return sce_statistics(pattern, dag)

    def __repr__(self) -> str:
        return f"<CSCE over {self.store!r}>"
