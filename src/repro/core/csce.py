"""The CSCE facade — the library's primary public entry point.

Usage::

    from repro import CSCE, Variant

    engine = CSCE(data_graph)            # offline: builds the CCSR store
    result = engine.match(pattern)       # online: read + plan + compile + execute
    print(result.count, result.total_seconds)

    for embedding in engine.match_iter(pattern):   # lazy streaming
        consume(embedding)

Every query runs through the engine's :class:`repro.engine.MatchSession`:
logical plans are compiled once into a
:class:`~repro.engine.PhysicalPlan` and cached per (pattern, variant,
planner, restrictions, store version), so repeated patterns skip the
read→optimize→compile pipeline.

Planner configurations reproduce Fig. 13's ablation:

* ``"csce"`` — GCF with cluster tie-breaks, then LDSF fine-tuning (default);
* ``"ri_cluster"`` — GCF with cluster tie-breaks, no LDSF;
* ``"ri"`` — plain RI rules, no data-graph knowledge;
* ``"rm"`` — RapidMatch-style backward-connectivity ordering;
* ``"cost"`` — Graphflow-style systematic cost estimation (an extension
  beyond the paper's heuristics, see :mod:`repro.core.cost`).
"""

from __future__ import annotations

import logging

from repro.ccsr.store import CCSRStore
from repro.core.dag import build_dag
from repro.core.gcf import gcf_order
from repro.core.plan import Plan
from repro.core.variants import Variant
from repro.engine.executor import EmbeddingStream, execute_physical
from repro.engine.physical import PhysicalPlan, compile_plan
from repro.engine.results import MatchOptions, MatchResult
from repro.engine.session import PLANNERS, MatchSession, plan_query
from repro.errors import PlanError
from repro.graph.model import Graph
from repro.obs import NULL_OBS

logger = logging.getLogger(__name__)

__all__ = ["CSCE", "PLANNERS"]


class CSCE:
    """Clustered-CSR + Sequential-Candidate-Equivalence matching engine."""

    def __init__(
        self,
        graph: Graph | CCSRStore,
        obs=None,
        plan_cache_size: int = 64,
        verify: bool = False,
    ):
        """Build (or adopt) the CCSR store for a data graph.

        Passing a :class:`Graph` runs the offline clustering stage; passing
        a prebuilt :class:`CCSRStore` shares it across engines. ``obs`` (a
        :class:`repro.obs.Observation`) becomes the engine's default
        instrumentation for every run; per-call ``obs=`` arguments win.
        ``plan_cache_size`` bounds the session's compiled-plan LRU.
        ``verify=True`` is a debug mode: every freshly compiled plan runs
        the ahead-of-execution verifier
        (:mod:`repro.engine.verify`) and an unsound plan raises
        :class:`~repro.errors.PlanVerificationError` instead of executing.
        """
        self.session = MatchSession(
            graph, obs=obs, cache_size=plan_cache_size, verify=verify
        )
        self.store = self.session.store
        self.obs = obs

    # ------------------------------------------------------------------
    def build_plan(
        self,
        pattern: Graph,
        variant: Variant | str = Variant.EDGE_INDUCED,
        planner: str = "csce",
        obs=None,
    ) -> Plan:
        """Read clusters and optimize a matching plan (Sections IV–VI).

        Always plans fresh (no cache) — this is the inspection entry point
        behind ``repro plan`` / ``repro explain``. :meth:`match` compiles
        and caches through the session instead.
        """
        return plan_query(
            self.store,
            pattern,
            Variant.parse(variant),
            planner=planner,
            obs=obs or self.obs or NULL_OBS,
        )

    # ------------------------------------------------------------------
    def _compiled(
        self,
        pattern: Graph,
        variant: Variant,
        planner: str,
        plan: Plan | None,
        restrictions: tuple[tuple[int, int], ...] | None,
        obs,
    ) -> PhysicalPlan:
        """The physical plan for one call: session-cached, or compiled from
        a caller-supplied logical plan."""
        if plan is None:
            return self.session.compile(
                pattern, variant, planner=planner,
                restrictions=restrictions, obs=obs,
            ).physical
        if plan.variant is not variant:
            raise PlanError(
                f"plan was built for {plan.variant}, not {variant}"
            )
        return compile_plan(plan, restrictions=restrictions)

    def match(
        self,
        pattern: Graph,
        variant: Variant | str = Variant.EDGE_INDUCED,
        count_only: bool = False,
        max_embeddings: int | None = None,
        time_limit: float | None = None,
        use_sce: bool = True,
        planner: str = "csce",
        plan: Plan | None = None,
        restrictions: tuple[tuple[int, int], ...] | None = None,
        seed: dict[int, int] | None = None,
        obs=None,
        governor=None,
        workers: int = 1,
        pool_checkpoint_dir=None,
        pool_monitor=None,
        stall_timeout: float | None = None,
        max_respawns: int | None = None,
        max_unit_attempts: int = 3,
    ) -> MatchResult:
        """Find embeddings of ``pattern`` in the data graph.

        Parameters
        ----------
        variant:
            ``"edge_induced"`` (default), ``"vertex_induced"``, or
            ``"homomorphic"`` — or a :class:`Variant`.
        count_only:
            Count embeddings without materializing them; enables the SCE
            count factorization.
        max_embeddings / time_limit:
            Resource caps; exceeding them returns a truncated result
            (cooperative — the engine stops at the next checkpoint).
        use_sce:
            Ablation switch for candidate memoization + factorization.
        plan:
            A prebuilt logical plan to execute (skips planning and the
            session cache); its variant must agree with ``variant``.
        restrictions:
            Symmetry restrictions ``(u, v)`` forcing ``f(u) < f(v)``; with a
            full restriction chain each automorphism orbit is found once.
        seed:
            Pinned mappings ``{pattern vertex: data vertex}``; only
            embeddings extending the seed are produced (delta matching).
            Seeds rebind onto the cached compiled plan without recompiling.
        obs:
            A :class:`repro.obs.Observation` receiving spans (``match`` →
            ``read``/``plan``/``execute``), counters, and heartbeats for
            this run; ``None`` keeps instrumentation disabled. Cache hits
            skip the read/plan spans (the work didn't happen) and bump the
            ``plan_cache.hits`` counter instead.
        governor:
            A :class:`repro.engine.ResourceGovernor` enforcing a unified
            budget (deadline, embedding cap, memory ceiling with the
            degradation ladder) and a cooperative cancel token. Stops
            surface as ``result.stop_reason`` with the partial count;
            ``result.check()`` converts them to typed exceptions.
        workers:
            Number of worker processes. ``N > 1`` shards the search into
            portable work units executed by a :mod:`repro.engine.pool`
            process pool (requires ``count_only=True``); the merged count
            is exactly the sequential count and ``result.shards``
            summarizes the per-worker split.
        pool_checkpoint_dir:
            With ``workers > 1``: a directory that receives one shard
            checkpoint per unfinished work unit when the pool stops early;
            :meth:`resume_pool` continues from it with exact combined
            counts. Requires a session-compiled plan (no ``plan=``).
        pool_monitor:
            With ``workers > 1``: a :class:`repro.engine.PoolMonitor` the
            pool keeps refreshed with merged counters and per-worker rows
            (the live `csce top` hook for parallel runs).
        stall_timeout:
            With ``workers > 1``: seconds a busy worker may go silent
            before the stall watchdog SIGKILLs it and re-dispatches its
            unit (``None`` disables the watchdog).
        max_respawns:
            With ``workers > 1``: cap on replacement workers after
            deaths/stall kills (default ``3 * workers``).
        max_unit_attempts:
            With ``workers > 1``: attempts a work unit gets before it is
            quarantined to ``quarantine-NNNN.json`` in
            ``pool_checkpoint_dir`` (recover with
            :meth:`retry_quarantined`) instead of aborting the match.
        """
        variant = Variant.parse(variant)
        obs = obs or self.obs or NULL_OBS
        restrictions = tuple(restrictions) if restrictions else None
        with obs.tracer.span(
            "match", engine="CSCE", variant=variant.value
        ) as span:
            physical = self._compiled(
                pattern, variant, planner, plan, restrictions, obs
            )
            options = MatchOptions(
                count_only=count_only,
                max_embeddings=max_embeddings,
                time_limit=time_limit,
                use_sce=use_sce,
                restrictions=restrictions,
                seed=dict(seed) if seed else None,
                obs=obs if obs.enabled else None,
                governor=governor,
                workers=workers,
                stall_timeout=stall_timeout,
                max_respawns=max_respawns,
                max_unit_attempts=max_unit_attempts,
            )
            if workers > 1:
                result = self._match_parallel(
                    physical, options, pattern, variant, planner, plan,
                    pool_checkpoint_dir, pool_monitor,
                )
            else:
                result = execute_physical(physical, options)
            span.set("count", result.count)
        return result

    def _match_parallel(
        self, physical, options, pattern, variant, planner, plan,
        pool_checkpoint_dir, pool_monitor,
    ) -> MatchResult:
        """Dispatch a ``workers > 1`` match to the process pool, wiring the
        shard-checkpoint directory and live monitor that can't ride on
        :class:`MatchOptions`."""
        from repro.engine.executor import specialize
        from repro.engine.pool import execute_parallel

        checkpoint = None
        if pool_checkpoint_dir is not None:
            if plan is not None:
                raise PlanError(
                    "pool_checkpoint_dir requires a session-compiled plan;"
                    " drop the plan= argument"
                )
            from repro.engine.checkpoint import PoolCheckpointDir

            checkpoint = PoolCheckpointDir(
                pool_checkpoint_dir, self.store, pattern, variant, planner
            )
        return execute_parallel(
            specialize(physical, options),
            options,
            checkpoint=checkpoint,
            monitor=pool_monitor,
        )

    def match_iter(
        self,
        pattern: Graph,
        variant: Variant | str = Variant.EDGE_INDUCED,
        max_embeddings: int | None = None,
        time_limit: float | None = None,
        use_sce: bool = True,
        planner: str = "csce",
        plan: Plan | None = None,
        restrictions: tuple[tuple[int, int], ...] | None = None,
        seed: dict[int, int] | None = None,
        obs=None,
        governor=None,
        checkpoint_path=None,
    ) -> EmbeddingStream:
        """Stream embeddings lazily, one ``{vertex: data vertex}`` dict at
        a time.

        Returns an :class:`repro.engine.EmbeddingStream`: iterate it (or
        use it as a context manager) and the search runs exactly as far as
        you consume — first results of a huge query arrive without paying
        for the rest. ``max_embeddings`` / ``time_limit`` (or a
        ``governor`` budget/cancel token) end the stream cooperatively
        with ``stream.stop_reason`` set; ``stream.result()`` snapshots a
        :class:`MatchResult` at any point.

        With ``checkpoint_path``, a stream that stops early (any
        ``stop_reason``) automatically writes a resumable checkpoint
        there; :meth:`resume` picks it up and continues mid-frame with
        exact combined counts (see :mod:`repro.engine.checkpoint`).
        Requires a session-compiled plan (no caller-supplied ``plan``),
        since resume recompiles through the session.

        The stream holds no tracer span open (its lifetime belongs to the
        consumer); heartbeats and profiling from ``obs`` stay live.
        """
        variant = Variant.parse(variant)
        obs = obs or self.obs or NULL_OBS
        restrictions = tuple(restrictions) if restrictions else None
        sink = None
        if checkpoint_path is not None:
            if plan is not None:
                raise PlanError(
                    "checkpoint_path requires a session-compiled plan;"
                    " drop the plan= argument"
                )
            from repro.engine.checkpoint import CheckpointSink

            sink = CheckpointSink(
                checkpoint_path, self.store, pattern, variant, planner
            )
        physical = self._compiled(
            pattern, variant, planner, plan, restrictions, obs
        )
        options = MatchOptions(
            max_embeddings=max_embeddings,
            time_limit=time_limit,
            use_sce=use_sce,
            restrictions=restrictions,
            seed=dict(seed) if seed else None,
            obs=obs if obs.enabled else None,
            governor=governor,
        )
        return EmbeddingStream(physical, options, checkpoint_sink=sink)

    def resume(
        self,
        checkpoint,
        max_embeddings=...,
        time_limit=...,
        governor=None,
        obs=None,
        checkpoint_path=None,
    ) -> EmbeddingStream:
        """Resume a suspended stream from a checkpoint file (or document).

        Validates the checkpoint against this engine's store —
        :class:`repro.errors.CheckpointError` if the store has mutated
        since the checkpoint was written (cluster contents drive the
        serialized candidate lists, so resuming onto changed data would
        corrupt counts). ``max_embeddings``/``time_limit`` default to the
        checkpoint's own limits; pass an override (including ``None`` for
        unlimited) to change them. ``checkpoint_path`` re-arms
        auto-checkpointing, so repeated suspend/resume cycles work with
        the same path.
        """
        from repro.engine.checkpoint import KEEP, load_checkpoint, restore_stream

        if not isinstance(checkpoint, dict):
            checkpoint = load_checkpoint(checkpoint)
        return restore_stream(
            checkpoint,
            self.session,
            max_embeddings=KEEP if max_embeddings is ... else max_embeddings,
            time_limit=KEEP if time_limit is ... else time_limit,
            governor=governor,
            obs=obs or self.obs,
            checkpoint_path=checkpoint_path,
        )

    def resume_pool(
        self,
        directory,
        workers: int = 2,
        max_embeddings=...,
        time_limit=...,
        governor=None,
        obs=None,
        checkpoint_dir=None,
        monitor=None,
        stall_timeout: float | None = None,
        max_respawns: int | None = None,
        max_unit_attempts: int = 3,
    ) -> MatchResult:
        """Resume a partially-completed parallel match from a directory of
        shard checkpoints (written via ``pool_checkpoint_dir`` /
        ``csce match --workers N --checkpoint DIR``).

        Every shard is validated against this engine's store and against
        its siblings (same pattern, store, and query configuration —
        :class:`repro.errors.CheckpointError` on any mismatch). The
        returned result folds the checkpointed progress into the new run:
        its count is exactly the count the uninterrupted sequential match
        would have produced. ``checkpoint_dir`` re-arms shard
        checkpointing for repeated suspend/resume cycles; ``monitor``
        attaches a live :class:`repro.engine.PoolMonitor` as in
        :meth:`match`.
        """
        from repro.engine.checkpoint import load_checkpoint_dir
        from repro.engine.pool import resume_parallel

        payloads = load_checkpoint_dir(directory)
        return resume_parallel(
            payloads,
            self.session,
            workers,
            max_embeddings=max_embeddings,
            time_limit=time_limit,
            governor=governor,
            obs=obs or self.obs,
            checkpoint_dir=checkpoint_dir,
            monitor=monitor,
            stall_timeout=stall_timeout,
            max_respawns=max_respawns,
            max_unit_attempts=max_unit_attempts,
        )

    def retry_quarantined(
        self,
        directory,
        max_embeddings=...,
        time_limit=...,
        governor=None,
        obs=None,
        keep_files: bool = False,
    ) -> MatchResult:
        """Replay the poison-unit residue a parallel match quarantined.

        Loads every ``quarantine-NNNN.json`` in ``directory`` (written by
        a ``csce match --workers N --checkpoint DIR`` run whose units
        exhausted their attempt budget), validates each against this
        engine's store, and re-executes the payloads **single-process** —
        the environment where the pool-only failure modes (worker death,
        injected ``pool.worker_beat`` faults) cannot recur. The returned
        :class:`MatchResult` counts exactly the embeddings the original
        match was missing: folding ``match.count + retry.count``
        reproduces the fault-free total.

        ``max_embeddings``/``time_limit`` default to the limits recorded
        in the residue documents (pass an override — including ``None``
        for unlimited — to change them). On a complete replay
        (``stop_reason is None``) the residue files are deleted unless
        ``keep_files=True``; a replay that stopped early leaves every
        file untouched — discard its partial result and retry, or resume
        it like any checkpoint.
        """
        import os

        from repro.engine.checkpoint import (
            check_store_compatibility,
            load_quarantine_dir,
            pattern_digest,
        )
        from repro.engine.pool import _execute_inline
        from repro.errors import CheckpointError
        from repro.graph.io import parse_graph_text

        pairs = load_quarantine_dir(directory)
        paths = [path for path, _ in pairs]
        payloads = [payload for _, payload in pairs]
        for payload in payloads:
            check_store_compatibility(payload, self.store)
        first = payloads[0]
        pattern = parse_graph_text(
            first["pattern"]["text"], name="quarantine"
        )
        if pattern_digest(pattern) != first["pattern"]["digest"]:
            raise CheckpointError(
                "quarantine residue pattern does not match its digest"
                " (corrupt document)"
            )
        query = first["query"]
        variant = Variant.parse(query["variant"])
        restrictions = (
            tuple((int(u), int(v)) for u, v in query["restrictions"])
            if query["restrictions"]
            else None
        )
        seed = (
            {int(u): int(v) for u, v in query["seed"]}
            if query.get("seed")
            else None
        )
        limits = first["limits"]
        if max_embeddings is ...:
            max_embeddings = limits.get("max_embeddings")
        if time_limit is ...:
            time_limit = limits.get("time_limit")
        obs = obs or self.obs
        compiled = self.session.compile(
            pattern,
            variant,
            planner=query["planner"],
            restrictions=restrictions,
            obs=obs,
        )
        options = MatchOptions(
            count_only=True,
            max_embeddings=max_embeddings,
            time_limit=time_limit,
            use_sce=bool(query["use_sce"]),
            restrictions=restrictions,
            seed=seed,
            obs=obs if obs is not None and getattr(obs, "enabled", False) else None,
            governor=governor,
        )
        result = _execute_inline(
            compiled.physical,
            options,
            [dict(payload["state"]) for payload in payloads],
        )
        if result.stop_reason is None and not keep_files:
            for path in paths:
                try:
                    os.unlink(path)
                except OSError:  # pragma: no cover - best-effort cleanup
                    logger.warning(
                        "could not delete replayed residue %s", path
                    )
        return result

    def count(self, pattern: Graph, variant: Variant | str = Variant.EDGE_INDUCED, **kwargs) -> int:
        """Shorthand: the embedding count (``count_only`` matching)."""
        return self.match(pattern, variant, count_only=True, **kwargs).count

    def query(
        self,
        text: str,
        variant: Variant | str = Variant.EDGE_INDUCED,
        **match_kwargs,
    ):
        """Run a DSL pattern expression and get named rows back.

        >>> engine.query("(a:P)-[:knows]-(b:P)").rows
        [{'a': 0, 'b': 1}, {'a': 1, 'b': 0}]
        """
        from repro.core.query import run_query

        return run_query(self, text, variant, **match_kwargs)

    def sce_report(
        self,
        pattern: Graph,
        variant: Variant | str = Variant.EDGE_INDUCED,
        paper_faithful: bool = True,
    ):
        """How much Sequential Candidate Equivalence this task exhibits.

        Returns the :class:`~repro.core.equivalence.SCEStats` measured on
        the GCF order's dependency DAG — the Fig. 12 metric, available for
        any (pattern, variant) without running the match.
        """
        from repro.core.equivalence import sce_statistics

        variant = Variant.parse(variant)
        task = self.store.read(pattern, variant, obs=self.obs or NULL_OBS)
        order = gcf_order(pattern, task)
        dag = build_dag(pattern, order, variant, task, paper_faithful=paper_faithful)
        return sce_statistics(pattern, dag)

    def __repr__(self) -> str:
        return f"<CSCE over {self.store!r}>"
