"""Run options and results for the physical-operator engine.

These used to live in ``repro.core.executor``; they moved here with the
compiled engine so that every execution front-end (the :class:`repro.core.CSCE`
facade, :mod:`repro.core.continuous`, the baselines, and the bench harness)
shares one options/result contract. ``repro.core.executor`` re-exports both
names for compatibility.

This module deliberately imports nothing from ``repro`` — it sits at the
bottom of the engine layer and must stay importable mid-way through package
initialization.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, NoReturn

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.core.variants import Variant

#: Minimum elapsed time used as the throughput denominator. Instant runs
#: (below the clock's resolution) would otherwise report 0 embeddings/s for
#: a nonzero count, which reads as "no progress" in bench tables.
MIN_THROUGHPUT_ELAPSED = 1e-6

# Stop reasons: why a run ended before exhausting the search space. A
# completed run has ``stop_reason=None``. Defined here (not in
# ``engine.governor``) because this module sits at the bottom of the engine
# layer; the governor re-exports them.
STOP_TIME_LIMIT = "time_limit"
STOP_EMBEDDING_LIMIT = "embedding_limit"
STOP_MEMORY_LIMIT = "memory_limit"
STOP_CANCELLED = "cancelled"
STOP_QUARANTINED = "quarantined"

#: All valid non-None ``stop_reason`` values (run-report validation).
STOP_REASONS = (
    STOP_TIME_LIMIT,
    STOP_EMBEDDING_LIMIT,
    STOP_MEMORY_LIMIT,
    STOP_CANCELLED,
    STOP_QUARANTINED,
)

#: Stop reasons that leave the frame stack intact and therefore support
#: checkpoint/resume (an embedding-limit stop is resumable too: the cap
#: fires *after* emitting, so the next step continues cleanly). A
#: ``"quarantined"`` stop is *not* resumable through the stream path —
#: its residue lives in quarantine files replayed by
#: ``csce retry-quarantined``.
RESUMABLE_STOP_REASONS = (
    STOP_TIME_LIMIT,
    STOP_EMBEDDING_LIMIT,
    STOP_MEMORY_LIMIT,
    STOP_CANCELLED,
)


def raise_stop(stop_reason: str, partial_count: int) -> NoReturn:
    """Raise the typed :class:`~repro.errors.LimitExceeded` subclass for a
    ``stop_reason``, carrying ``partial_count``. The single place mapping
    stop reasons to exception types, so every front-end that converts the
    cooperative flags to exceptions reports the same partial count."""
    from repro.errors import (
        EmbeddingLimitExceeded,
        LimitExceeded,
        MatchCancelled,
        MemoryLimitExceeded,
        TimeLimitExceeded,
    )

    exc_types = {
        STOP_TIME_LIMIT: TimeLimitExceeded,
        STOP_EMBEDDING_LIMIT: EmbeddingLimitExceeded,
        STOP_MEMORY_LIMIT: MemoryLimitExceeded,
        STOP_CANCELLED: MatchCancelled,
    }
    exc = exc_types.get(stop_reason, LimitExceeded)
    raise exc(
        f"run stopped early: {stop_reason}", partial_count=partial_count
    )


@dataclass
class MatchOptions:
    """Knobs for one matching run.

    ``max_embeddings`` truncates the search after that many results (the
    existing-works convention of stopping at 1e5); ``time_limit`` is a soft
    wall-clock budget in seconds; ``use_sce`` toggles candidate memoization
    and count factorization (the paper's headline optimization) for
    ablations; ``count_only`` skips materializing embeddings. Both limits
    are cooperative in the iterative engine: the run stops at the next
    check, sets the ``truncated``/``timed_out`` flag, and returns the
    partial count — no exceptions on the engine path.
    """

    count_only: bool = False
    max_embeddings: int | None = None
    time_limit: float | None = None
    use_sce: bool = True
    restrictions: tuple[tuple[int, int], ...] | None = None
    """Optional symmetry restrictions: each ``(u, v)`` requires
    ``f(u) < f(v)``. With the restrictions from
    :func:`repro.baselines.symmetry.symmetry_restrictions`, every
    automorphism orbit is enumerated exactly once — e.g. each k-clique once
    instead of k! times. Restrictions disable count factorization (they
    couple otherwise independent regions)."""

    seed: dict[int, int] | None = None
    """Optional pinned mappings ``{pattern vertex: data vertex}``. Pinned
    vertices are still validated against their candidate sets (labels,
    backward edges, negations, injectivity), so a seeded run enumerates
    exactly the embeddings extending the seed — the building block of
    continuous/delta matching (:mod:`repro.core.continuous`). Seeds disable
    count factorization."""

    memo_limit: int = 1_000_000
    """Cap on cached SCE candidate sets; beyond it, computation continues
    uncached (memory bound for adversarial patterns)."""

    obs: object | None = None
    """Optional :class:`repro.obs.Observation` carrying the run's tracer,
    counter registry, and heartbeat. ``None`` (the default) selects the
    no-op instruments — the zero-cost-when-disabled path."""

    governor: object | None = None
    """Optional :class:`repro.engine.governor.ResourceGovernor` enforcing a
    unified budget (deadline, embedding cap, memory ceiling) and a
    cooperative cancel token. ``None`` (the default) keeps the legacy
    per-option limits with zero governance overhead."""

    workers: int = 1
    """Number of worker processes. ``1`` (the default) runs the classic
    in-process executor; ``N > 1`` shards the search into portable
    :class:`repro.engine.workunit` payloads executed by a
    :mod:`repro.engine.pool` process pool with work-stealing, exact merged
    counts, and per-worker budgets derived from this options object.
    Parallel execution requires ``count_only=True`` (embedding streams are
    not portable across process boundaries)."""

    stall_timeout: float | None = None
    """Seconds without any liveness message (ready/beat/split/done) from a
    *busy* pool worker before the parent's stall watchdog escalates:
    record a ``worker_stall`` flight-recorder event, SIGKILL the process,
    and re-dispatch its unit through the death-recovery path (counted
    against the respawn budget). ``None`` (the default) disables the
    watchdog — a clean workload never sees a stall kill."""

    max_respawns: int | None = None
    """Cap on pool worker respawns after deaths or stall kills. ``None``
    (the default) keeps the historical budget of 3 x ``workers``."""

    max_unit_attempts: int = 3
    """Attempts a pool work unit gets before it is declared poisonous and
    quarantined (serialized to ``quarantine-NNNN.json`` in the pool
    checkpoint directory instead of aborting the match; replay it with
    ``csce retry-quarantined``)."""


@dataclass
class MatchResult:
    """Outcome of one matching run, with the paper's reporting fields."""

    count: int
    variant: "Variant"
    embeddings: list[dict[int, int]] | None = None
    elapsed: float = 0.0
    read_seconds: float = 0.0
    plan_seconds: float = 0.0
    compile_seconds: float = 0.0
    """Time spent lowering the logical plan to its physical operators;
    0.0 when the run reused a cached :class:`repro.engine.PhysicalPlan`
    from a :class:`repro.engine.MatchSession`."""

    truncated: bool = False
    timed_out: bool = False
    stop_reason: str | None = None
    """Why the run ended early, or ``None`` for an exhaustive run. One of
    :data:`STOP_REASONS`: ``"time_limit"``, ``"embedding_limit"``,
    ``"memory_limit"``, or ``"cancelled"``. The legacy ``truncated`` /
    ``timed_out`` booleans are kept in sync (embedding-limit ↔ truncated,
    time-limit ↔ timed_out) for existing callers."""

    degradation: list[str] = field(default_factory=list)
    """Governor degradation-ladder events, in order: ``"evict_memo"``
    (LRU-evicted half the SCE memo), ``"disable_memo"`` (memoization off
    for the rest of the run), ``"suspend"`` (pressure persisted; the run
    stopped with ``stop_reason="memory_limit"``). Empty on ungoverned runs."""

    progress: dict | None = None
    """Progress-estimator snapshot (``{"percent", "eta_seconds",
    "updates"}``, see :class:`repro.obs.progress.ProgressEstimator`) for
    observed runs: a monotone percent-complete of the explored
    root-candidate space — pinned to 100 for exhaustive runs — and the
    smoothed ETA the run ended with. ``None`` on unobserved runs (the
    estimator only exists when an ``Observation`` is attached)."""

    stats: dict = field(default_factory=dict)
    """Unified search counters — the same key set on *every* execution path
    (enumeration and ``count_only`` factorized counting emit identical
    keys; see :data:`repro.obs.counters.STAT_KEYS`):

    * ``nodes`` — search-tree nodes expanded;
    * ``computed`` / ``memo_hits`` / ``memo_misses`` — candidate-set cold
      computations vs. SCE cache hits and misses (``memo_misses`` stays 0
      under ``use_sce=False``, distinguishing cold computes from misses);
    * ``intersections`` — sorted neighbor-list intersections performed;
    * ``negation_checks`` — vertex-induced negation-cluster probes;
    * ``backtracks`` — dead-end returns (nodes contributing no embedding);
    * ``prunes_injective`` / ``prunes_restriction`` — candidates rejected
      by injectivity or symmetry restrictions;
    * ``factorizations`` / ``group_memo_hits`` — SCE count-factorization
      events and memoized-region reuses (0 on the enumeration path).
    """

    shards: dict | None = None
    """Per-worker shard summary for parallel runs (``workers > 1``): the
    ``merge_run_reports`` shards block — ``{"count", "workers", "counts",
    "stop_reasons", "execute_seconds_sum"}`` — where ``counts`` sums
    exactly to :attr:`count`. Pool runs that quarantined poison units add
    ``quarantined_units`` to the block. ``None`` on single-process runs."""

    quarantined_units: int = 0
    """Work units the pool quarantined after exhausting their attempt
    budget (see :attr:`MatchOptions.max_unit_attempts`). Nonzero only on
    parallel runs, and always paired with ``stop_reason="quarantined"``
    unless a more severe budget stop happened first; the missing counts
    live in ``quarantine-NNNN.json`` files recoverable with
    ``csce retry-quarantined``."""

    @property
    def total_seconds(self) -> float:
        """Total time the paper reports: read + optimize + compile + execute."""
        return (
            self.elapsed
            + self.read_seconds
            + self.plan_seconds
            + self.compile_seconds
        )

    @property
    def throughput(self) -> float:
        """Embeddings per second of execution time (Fig. 7/8 metric).

        Instant runs (elapsed below the timer's resolution) are clamped to
        :data:`MIN_THROUGHPUT_ELAPSED` so a nonzero count never reports a
        throughput of 0.
        """
        if self.count <= 0:
            return 0.0
        return self.count / max(self.elapsed, MIN_THROUGHPUT_ELAPSED)

    def check(self) -> "MatchResult":
        """Raise the typed :class:`~repro.errors.LimitExceeded` subclass
        matching ``stop_reason`` (with ``partial_count == count``), or
        return ``self`` unchanged for complete runs.

        The engine never raises on its own — limits are flags — but some
        callers prefer exception control flow; this adapter guarantees the
        exception's ``partial_count`` always equals the result's count.
        """
        if self.stop_reason is None:
            return self
        raise_stop(self.stop_reason, self.count)

    def __repr__(self) -> str:
        # embedding/time limits keep their legacy names; the newer stop
        # reasons (memory_limit, cancelled) have no legacy flag to show.
        flags = []
        if self.truncated:
            flags.append("truncated")
        if self.timed_out:
            flags.append("timed-out")
        if self.stop_reason in (STOP_MEMORY_LIMIT, STOP_CANCELLED):
            flags.append(self.stop_reason)
        if self.quarantined_units:
            flags.append(f"quarantined:{self.quarantined_units}")
        if self.degradation:
            flags.append("degraded:" + ">".join(self.degradation))
        suffix = f" [{', '.join(flags)}]" if flags else ""
        return (
            f"<MatchResult {self.variant} count={self.count}"
            f" {self.total_seconds:.4f}s{suffix}>"
        )
