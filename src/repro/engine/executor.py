"""The iterative physical-plan executor (Section III, green stage).

Embeddings grow one vertex at a time following the compiled op sequence;
each step intersects cluster neighbor lists (worst-case-optimal-join style)
through :class:`~repro.engine.candidates.CandidateComputer`. The search is
driven by an explicit per-depth frame stack — no Python recursion — which
buys four things the old recursive interpreter could not offer:

* **streaming**: :func:`stream` is a plain generator over the frame stack,
  so :class:`EmbeddingStream` (behind ``CSCE.match_iter``) yields
  embeddings lazily, one ``next()`` at a time, with the search suspended
  in between;
* **cooperative limits**: deadlines, embedding caps, memory budgets and
  cancellation set ``stop_reason`` on the :class:`Runtime` and end the
  loop — no control-flow exceptions, and a partially-consumed stream is
  always in a consistent state;
* **checkpointing**: the frame stack lives in a :class:`SearchState` whose
  contents serialize to a resumable checkpoint
  (:mod:`repro.engine.checkpoint`) — suspend on one process, resume on
  another;
* **no recursion-limit games**: a 2000-vertex pattern (the paper's largest)
  needs 2000 stack frames under recursion; here it needs three parallel
  arrays of length 2000.

Counting runs share the same :class:`Runtime`; factorized counting lives in
:mod:`repro.engine.counting` on its own frame machine. Resource governance
(budgets, the degradation ladder, cancel tokens) is polled at tick
boundaries via :class:`repro.engine.governor.ResourceGovernor`; the
``engine.tick`` fault site fires at the same cadence for the chaos suite.
"""

from __future__ import annotations

import logging
import time

import numpy as np

from typing import TYPE_CHECKING, Iterator

from repro.engine.candidates import CandidateComputer
from repro.engine.physical import PhysicalPlan, compile_plan
from repro.engine.results import (
    MatchOptions,
    MatchResult,
    STOP_EMBEDDING_LIMIT,
    STOP_TIME_LIMIT,
)
from repro.obs import (
    NULL_OBS,
    NULL_RECORDER,
    ProgressEstimator,
    search_state_fraction,
    unified_stats,
)
from repro.testing import faults

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.engine.checkpoint import CheckpointSink

logger = logging.getLogger(__name__)

_TIME_CHECK_INTERVAL = 2048


def _contains_sorted(array: np.ndarray, value: int) -> bool:
    """Membership test in a sorted candidate array (binary search)."""
    idx = int(np.searchsorted(array, value))
    return idx < array.shape[0] and int(array[idx]) == value


def _satisfies(
    candidate: int,
    assignment: list[int],
    restrictions: tuple[tuple[int, bool], ...],
) -> bool:
    """Check the ``f(u) < f(v)`` restrictions anchored at this op."""
    for other, candidate_is_smaller in restrictions:
        image = assignment[other]
        if candidate_is_smaller:
            if candidate >= image:
                return False
        elif candidate <= image:
            return False
    return True


def specialize(physical: PhysicalPlan, options: MatchOptions) -> PhysicalPlan:
    """Bind per-run restrictions/seed into the physical plan when they
    differ from what was compiled in.

    Lets one cached plan serve runs with varying seeds (cheap pin rebind)
    and keeps ``execute_physical(compile_plan(plan), options)`` faithful to
    the options even when the caller compiled without them.
    """
    restrictions = tuple(options.restrictions) if options.restrictions else ()
    if restrictions != physical.restrictions:
        physical = compile_plan(physical.logical, restrictions=restrictions)
    if options.seed:
        physical = physical.with_seed(options.seed)
    return physical


class SearchState:
    """The enumeration frame stack, extracted so it can be checkpointed.

    Everything :func:`stream` mutates between two yields lives here: the
    partial ``assignment`` (pattern vertex → data vertex, ``-1`` unbound),
    the injectivity ``used`` set, the per-depth candidate lists ``values``
    (``None`` = depth not yet entered), scan cursors ``index``, backtrack
    watermarks ``emitted_at``, and the current depth ``pos``. The generator
    keeps ``state.pos`` current at every suspension point (yield, stop,
    close), so a snapshot taken between ``next()`` calls is always
    resumable.
    """

    __slots__ = ("assignment", "used", "values", "index", "emitted_at", "pos")

    def __init__(
        self,
        assignment: list[int],
        used: set[int],
        values: list[list | None],
        index: list[int],
        emitted_at: list[int],
        pos: int,
    ) -> None:
        self.assignment = assignment
        self.used = used
        self.values = values
        self.index = index
        self.emitted_at = emitted_at
        self.pos = pos

    @classmethod
    def fresh(cls, n: int) -> "SearchState":
        return cls([-1] * n, set(), [None] * n, [0] * n, [0] * n, 0)

    def to_payload(self) -> dict:
        """A JSON-serializable snapshot (candidate lists included, so a
        mid-scan frame resumes at the exact cursor position)."""
        return {
            "assignment": list(self.assignment),
            "used": sorted(self.used),
            "values": [None if v is None else list(v) for v in self.values],
            "index": list(self.index),
            "emitted_at": list(self.emitted_at),
            "pos": self.pos,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "SearchState":
        return cls(
            [int(x) for x in payload["assignment"]],
            {int(x) for x in payload["used"]},
            [
                None if v is None else [int(x) for x in v]
                for v in payload["values"]
            ],
            [int(x) for x in payload["index"]],
            [int(x) for x in payload["emitted_at"]],
            int(payload["pos"]),
        )


class Runtime:
    """Mutable per-run execution state: counters, limits, instruments.

    Shared by the streaming generator and the counting fast path so both
    report identical :data:`~repro.obs.counters.STAT_KEYS` semantics. When
    a :class:`~repro.engine.governor.ResourceGovernor` is attached, its
    budget folds into the deadline/cap (tightest wins) and its
    memory/cancellation checks run at tick boundaries; ``degradation`` and
    ``gov_stage`` record the ladder's progress.
    """

    __slots__ = (
        "options",
        "computer",
        "profile",
        "governor",
        "nodes",
        "emitted",
        "backtracks",
        "prunes_injective",
        "prunes_restriction",
        "truncated",
        "timed_out",
        "stop_reason",
        "degradation",
        "gov_stage",
        "max_embeddings",
        "progress",
        "search_state",
        "_deadline",
        "_heartbeat",
        "_recorder",
        "_ticking",
        "_interval",
    )

    def __init__(self, physical: PhysicalPlan, options: MatchOptions) -> None:
        self.options = options
        obs = options.obs or NULL_OBS
        profiler = getattr(obs, "profile", None)
        # None when profiling is off: the hot loops pay one is-None branch.
        self.profile = (
            profiler.search if profiler is not None and profiler.enabled else None
        )
        self.computer = CandidateComputer(
            physical,
            use_sce=options.use_sce,
            memo_limit=options.memo_limit,
            profile=self.profile,
        )
        self.nodes = 0
        self.emitted = 0
        self.backtracks = 0
        self.prunes_injective = 0
        self.prunes_restriction = 0
        self.truncated = False
        self.timed_out = False
        self.stop_reason: str | None = None
        self.degradation: list[str] = []
        self.gov_stage = 0
        gov = options.governor
        self.governor = gov
        if gov is not None:
            gov.ensure_tracing()
            self.max_embeddings = gov.effective_cap(options.max_embeddings)
            self._deadline = gov.effective_deadline(options.time_limit)
        else:
            self.max_embeddings = options.max_embeddings
            self._deadline = (
                time.perf_counter() + options.time_limit
                if options.time_limit is not None
                else None
            )
        self._heartbeat = obs.heartbeat
        self._recorder = getattr(obs, "recorder", NULL_RECORDER)
        # Progress estimation exists exactly when an observation is
        # attached; the estimator registers on the observation so
        # heartbeats, the metrics pump, and run-reports read one object.
        if obs.enabled:
            self.progress: ProgressEstimator | None = ProgressEstimator()
            obs.attach_progress(self.progress)
        else:
            self.progress = None
        #: The live frame stack, published by stream()/count_capped() so
        #: the tick-time progress probe can read the candidate cursors.
        self.search_state: SearchState | None = None
        # Under fault injection every tick must reach the fault site, so
        # the periodic work runs densely; in production it is amortized.
        self._interval = 1 if faults.active() else _TIME_CHECK_INTERVAL
        # One flag guards the periodic work: without a deadline, governor,
        # injector, live heartbeat, recorder, or progress estimator, tick
        # never computes the modulo.
        self._ticking = (
            self._deadline is not None
            or self._heartbeat.enabled
            or gov is not None
            or self._recorder.enabled
            or self.progress is not None
            or self._interval == 1
        )

    def preflight(self) -> bool:
        """Governance check before the first frame step, so a token that
        was tripped before (or between) runs stops even searches too small
        to reach a tick boundary. False means: do not start."""
        gov = self.governor
        if gov is None:
            return True
        reason = gov.check(self)
        if reason is not None:
            if reason == STOP_TIME_LIMIT:
                self.timed_out = True
            elif reason == STOP_EMBEDDING_LIMIT:
                self.truncated = True
            self.stop_reason = reason
            self.note_stop(reason)
            return False
        return True

    def note_stop(self, reason: str, depth: int = 0) -> None:
        """Record a cooperative stop in the flight recorder (no-op when
        the recorder is off) — one place, so every stop path leaves the
        same tail event."""
        if self._recorder.enabled:
            self._recorder.record(
                "stop",
                reason=reason,
                nodes=self.nodes,
                emitted=self.emitted,
                depth=depth,
            )

    def tick(self, depth: int = 0, phase: str = "enumerate") -> bool:
        """Account one search-tree node; False once a limit fired (the
        deadline passed, the governor's budget breached and the ladder
        bottomed out, or the cancel token tripped). Sets ``stop_reason``
        (and the legacy ``timed_out`` flag) before returning False."""
        self.nodes += 1
        if self._ticking and self.nodes % self._interval == 0:
            if self.search_state is not None:
                # stream() keeps `pos` in a local for speed and only syncs
                # it at suspension points; sync it here too so anything
                # sampled at a tick (the progress probe, an on-demand
                # checkpoint from the inspector) sees a consistent state.
                self.search_state.pos = depth
            recorder = self._recorder
            if faults.ACTIVE is not None:
                # Record before firing so an action that raises still
                # leaves its mark in the ring buffer.
                if recorder.enabled:
                    recorder.record(
                        "fault", site="engine.tick", depth=depth,
                        phase=phase, nodes=self.nodes,
                    )
                faults.fire(
                    "engine.tick", depth=depth, phase=phase, nodes=self.nodes
                )
            progress = self.progress
            if progress is not None and self.search_state is not None:
                state = self.search_state
                progress.update(
                    search_state_fraction(state.values, state.index)
                )
            if self._heartbeat.enabled:
                self._heartbeat.beat(
                    self.nodes, self.emitted, depth, phase=phase,
                    progress=progress,
                )
            if recorder.enabled:
                recorder.record(
                    "tick", nodes=self.nodes, emitted=self.emitted,
                    depth=depth, phase=phase,
                )
            gov = self.governor
            if gov is not None:
                reason = gov.check(self)
                if reason is not None:
                    # Keep the legacy flags in step with governor-imposed
                    # stops (a mid-run `budget` tightening arrives here,
                    # not through the runtime's own deadline/cap).
                    if reason == STOP_TIME_LIMIT:
                        self.timed_out = True
                    elif reason == STOP_EMBEDDING_LIMIT:
                        self.truncated = True
                    self.stop_reason = reason
                    self.note_stop(reason, depth)
                    return False
            if (
                self._deadline is not None
                and time.perf_counter() > self._deadline
            ):
                self.timed_out = True
                self.stop_reason = STOP_TIME_LIMIT
                self.note_stop(STOP_TIME_LIMIT, depth)
                return False
        return True

    def release(self) -> None:
        """Return governor-owned resources (tracemalloc) after the run."""
        if self.governor is not None:
            self.governor.release()

    def stats(self) -> dict:
        """The unified stats snapshot (all :data:`STAT_KEYS`)."""
        return unified_stats(
            nodes=self.nodes,
            candidate_stats=self.computer.stats,
            backtracks=self.backtracks,
            prunes_injective=self.prunes_injective,
            prunes_restriction=self.prunes_restriction,
        )

    def progress_snapshot(self, complete: bool = False) -> dict | None:
        """The progress block for results/reports, or ``None`` when no
        estimator is attached. ``complete=True`` pins the estimate to
        100% first (the search ran to exhaustion)."""
        if self.progress is None:
            return None
        if complete and self.stop_reason is None:
            self.progress.complete()
        return self.progress.as_dict()


def stream(
    physical: PhysicalPlan, runtime: Runtime, state: SearchState | None = None
) -> Iterator[tuple[int, ...]]:
    """Iteratively enumerate embeddings; yields tuples indexed by pattern
    vertex id. Cooperative: on a limit, sets ``runtime.stop_reason`` and
    returns. Pass a restored :class:`SearchState` to resume a checkpointed
    search mid-frame; the state is kept current at every suspension point.
    """
    if physical.impossible():
        return
    ops = physical.ops
    n = len(ops)
    if not runtime.preflight():
        return
    if n == 0:
        runtime.emitted += 1
        yield ()
        return
    if state is None:
        state = SearchState.fresh(n)
    # Publish the frame stack for the tick-time progress probe (the probe
    # reads the same list objects the loop mutates below).
    runtime.search_state = state
    # Hot path: everything the loop touches is bound to locals.
    raw = runtime.computer.raw
    injective = physical.injective
    max_embeddings = runtime.max_embeddings
    profile = runtime.profile
    assignment = state.assignment
    used = state.used
    add, discard = used.add, used.discard
    # Per-depth frames: the candidate list, the scan cursor, and the
    # emitted-count watermark for backtrack accounting.
    values = state.values
    index = state.index
    emitted_at = state.emitted_at
    pos = state.pos
    try:
        while pos >= 0:
            op = ops[pos]
            vals = values[pos]
            if vals is None:
                # Entering this depth fresh: one tick per expansion, exactly
                # like one recursive extend() call.
                if not runtime.tick(pos):
                    return
                candidates = raw(op, assignment)
                if profile is not None:
                    profile.visit(pos, candidates.shape[0])
                pin = op.pin
                if pin is not None:
                    vals = [pin] if _contains_sorted(candidates, pin) else []
                else:
                    vals = candidates.tolist()
                values[pos] = vals
                index[pos] = 0
                emitted_at[pos] = runtime.emitted
            u = op.u
            # Unassign the value the previous iteration consumed at this depth
            # (returning from a child, or continuing after a leaf emission).
            if assignment[u] != -1:
                if injective:
                    discard(assignment[u])
                assignment[u] = -1
            i = index[pos]
            restrictions = op.restrictions
            chosen = -1
            while i < len(vals):
                v = vals[i]
                i += 1
                if injective and v in used:
                    runtime.prunes_injective += 1
                    continue
                if restrictions and not _satisfies(v, assignment, restrictions):
                    runtime.prunes_restriction += 1
                    continue
                chosen = v
                break
            index[pos] = i
            if chosen < 0:
                if runtime.emitted == emitted_at[pos]:
                    runtime.backtracks += 1
                    if profile is not None:
                        profile.backtrack(pos)
                values[pos] = None
                pos -= 1
                continue
            assignment[u] = chosen
            if injective:
                add(chosen)
            if pos + 1 == n:
                runtime.emitted += 1
                state.pos = pos
                yield tuple(assignment)
                if max_embeddings is not None and runtime.emitted >= max_embeddings:
                    runtime.truncated = True
                    runtime.stop_reason = STOP_EMBEDDING_LIMIT
                    runtime.note_stop(STOP_EMBEDDING_LIMIT, pos)
                    return
                continue
            pos += 1
    finally:
        # Keep the checkpointable state current on every exit path: limit
        # stops, exhaustion (pos == -1), and generator close().
        state.pos = pos


def count_capped(
    physical: PhysicalPlan,
    runtime: Runtime,
    state: SearchState | None = None,
) -> int:
    """Count embeddings without yielding — the fast path for capped,
    restricted, or seeded counting runs (no per-embedding generator
    hand-off). Same frame machine as :func:`stream`.

    Pass a restored :class:`SearchState` to resume mid-frame — the path
    pool workers use to execute a portable
    :mod:`~repro.engine.workunit` payload. The state's ``pos`` is kept
    current on every exit (limit stops and exhaustion), so a stopped
    count is itself re-shardable.
    """
    if physical.impossible():
        return 0
    ops = physical.ops
    n = len(ops)
    if not runtime.preflight():
        return 0
    if n == 0:
        runtime.emitted += 1
        return runtime.emitted
    raw = runtime.computer.raw
    injective = physical.injective
    max_embeddings = runtime.max_embeddings
    profile = runtime.profile
    if state is None:
        state = SearchState.fresh(n)
    assignment = state.assignment
    used = state.used
    add, discard = used.add, used.discard
    values = state.values
    index = state.index
    emitted_at = state.emitted_at
    pos = state.pos
    # Publish the loop's live lists so the progress probe (and a pool
    # worker's split listener) sees the cursors.
    runtime.search_state = state
    try:
        while pos >= 0:
            op = ops[pos]
            vals = values[pos]
            if vals is None:
                if not runtime.tick(pos, phase="count"):
                    return runtime.emitted
                candidates = raw(op, assignment)
                if profile is not None:
                    profile.visit(pos, candidates.shape[0])
                pin = op.pin
                if pin is not None:
                    vals = [pin] if _contains_sorted(candidates, pin) else []
                else:
                    vals = candidates.tolist()
                values[pos] = vals
                index[pos] = 0
                emitted_at[pos] = runtime.emitted
            u = op.u
            if assignment[u] != -1:
                if injective:
                    discard(assignment[u])
                assignment[u] = -1
            i = index[pos]
            restrictions = op.restrictions
            chosen = -1
            while i < len(vals):
                v = vals[i]
                i += 1
                if injective and v in used:
                    runtime.prunes_injective += 1
                    continue
                if restrictions and not _satisfies(v, assignment, restrictions):
                    runtime.prunes_restriction += 1
                    continue
                chosen = v
                break
            index[pos] = i
            if chosen < 0:
                if runtime.emitted == emitted_at[pos]:
                    runtime.backtracks += 1
                    if profile is not None:
                        profile.backtrack(pos)
                values[pos] = None
                pos -= 1
                continue
            assignment[u] = chosen
            if injective:
                add(chosen)
            if pos + 1 == n:
                runtime.emitted += 1
                if max_embeddings is not None and runtime.emitted >= max_embeddings:
                    runtime.truncated = True
                    runtime.stop_reason = STOP_EMBEDDING_LIMIT
                    runtime.note_stop(STOP_EMBEDDING_LIMIT, pos)
                    return runtime.emitted
                continue
            pos += 1
        return runtime.emitted
    finally:
        # Mirror stream(): the state stays resumable on every exit path.
        state.pos = pos


class EmbeddingStream:
    """A lazy, resumable iterator of embeddings (``CSCE.match_iter``).

    Yields ``{pattern vertex: data vertex}`` dicts one at a time; the
    search is suspended between ``next()`` calls, so consuming three
    embeddings of a billion-result query does three embeddings of work.
    Progress counters (``count``, ``stats``) and the cooperative stop
    flags (``truncated``, ``timed_out``, ``stop_reason``) are readable at
    any point, also mid-iteration. ``close()`` (or exiting a ``with``
    block) abandons the remaining search.

    ``state``/``emitted`` restore a checkpointed search
    (:func:`repro.engine.checkpoint.load_checkpoint` →
    ``CSCE.resume``); ``checkpoint_sink`` is an object with a
    ``write(stream)`` method called automatically when the stream stops
    early with a resumable ``stop_reason`` (the auto-checkpoint-on-suspend
    behavior of ``CSCE.match_iter(..., checkpoint_path=...)``).

    Streams do not fold their stats into an Observation's counter registry
    (the run has no natural end); read ``.stats`` or ``.result()`` instead.
    Heartbeats and per-depth profiling stay live while iterating.
    """

    def __init__(
        self,
        physical: PhysicalPlan,
        options: MatchOptions | None = None,
        state: SearchState | None = None,
        emitted: int = 0,
        checkpoint_sink: CheckpointSink | None = None,
    ) -> None:
        options = options or MatchOptions()
        physical = specialize(physical, options)
        self.physical = physical
        self.options = options
        self.runtime = Runtime(physical, options)
        self.runtime.emitted = emitted
        self.state = state or SearchState.fresh(len(physical.ops))
        self.checkpoint_sink = checkpoint_sink
        self._gen = stream(physical, self.runtime, self.state)
        self._n = physical.num_vertices
        self._finished = False
        self._started = time.perf_counter()
        recorder = self.runtime._recorder
        if recorder.enabled:
            recorder.record(
                "run_start", mode="stream", ops=len(physical.ops)
            )

    def __iter__(self) -> "EmbeddingStream":
        return self

    def __next__(self) -> dict[int, int]:
        try:
            tup = next(self._gen)
        except StopIteration:
            self._finish()
            raise
        return {u: tup[u] for u in range(self._n)}

    def __enter__(self) -> "EmbeddingStream":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def _finish(self) -> None:
        """End-of-stream housekeeping: release governor resources, then
        auto-checkpoint if the run suspended and a sink is attached."""
        if self._finished:
            return
        self._finished = True
        self.runtime.release()
        recorder = self.runtime._recorder
        if self.checkpoint_sink is not None and self.stop_reason is not None:
            self.checkpoint_sink.write(self)
            if recorder.enabled:
                recorder.record(
                    "checkpoint",
                    path=str(getattr(self.checkpoint_sink, "path", "")),
                    emitted=self.runtime.emitted,
                )
        if self.runtime.progress is not None and self.stop_reason is None:
            self.runtime.progress.complete()
        if recorder.enabled:
            recorder.record(
                "run_end",
                mode="stream",
                emitted=self.runtime.emitted,
                stop_reason=self.stop_reason,
            )

    def close(self) -> None:
        """Abandon the remaining search; counters keep their last state."""
        self._gen.close()
        if not self._finished:
            self._finished = True
            self.runtime.release()

    @property
    def count(self) -> int:
        """Embeddings yielded so far (including any checkpointed prefix)."""
        return self.runtime.emitted

    @property
    def truncated(self) -> bool:
        return self.runtime.truncated

    @property
    def timed_out(self) -> bool:
        return self.runtime.timed_out

    @property
    def stop_reason(self) -> str | None:
        """Why the stream stopped early, or ``None`` (still running or
        ran to exhaustion)."""
        return self.runtime.stop_reason

    @property
    def stats(self) -> dict:
        """Unified stats snapshot of the search so far."""
        return self.runtime.stats()

    def result(self) -> MatchResult:
        """A :class:`MatchResult` snapshot of the stream's progress.

        ``elapsed`` is wall time since the stream was opened (it includes
        the consumer's time between ``next()`` calls); embeddings are not
        re-materialized.
        """
        plan = self.physical.logical
        return MatchResult(
            count=self.runtime.emitted,
            variant=plan.variant,
            embeddings=None,
            elapsed=time.perf_counter() - self._started,
            read_seconds=plan.task_clusters.read_seconds,
            plan_seconds=max(0.0, plan.plan_seconds),
            compile_seconds=self.physical.compile_seconds,
            truncated=self.runtime.truncated,
            timed_out=self.runtime.timed_out,
            stop_reason=self.runtime.stop_reason,
            degradation=list(self.runtime.degradation),
            progress=self.runtime.progress_snapshot(),
            stats=self.runtime.stats(),
        )


def execute_physical(
    physical: PhysicalPlan, options: MatchOptions | None = None
) -> MatchResult:
    """Run a compiled plan to completion and package the result.

    Counting runs go through the SCE-factorized counter when eligible
    (uncapped, unrestricted, unseeded); every other run drives the
    iterative frame machine. Limits surface as ``stop_reason`` (plus the
    legacy ``truncated``/``timed_out`` flags) with the partial count,
    never as exceptions.
    """
    options = options or MatchOptions()
    if options.workers > 1:
        # Parallel counting: shard the search into portable work units and
        # merge the workers' exact counts. The pool re-enters this function
        # per-unit with workers=1 inside each worker process.
        from repro.engine.pool import execute_parallel

        return execute_parallel(specialize(physical, options), options)
    obs = options.obs or NULL_OBS
    physical = specialize(physical, options)
    plan = physical.logical
    start = time.perf_counter()
    truncated = False
    timed_out = False
    stop_reason: str | None = None
    degradation: list[str] = []
    embeddings: list[dict[int, int]] | None = None
    progress: dict | None = None

    recorder = getattr(obs, "recorder", NULL_RECORDER)
    if recorder.enabled:
        recorder.record(
            "run_start",
            mode="count" if options.count_only else "enumerate",
            variant=plan.variant.value,
            ops=len(physical.ops),
        )

    gov = options.governor
    # Exact SCE-factorized counting only applies to uncapped, unrestricted,
    # unseeded counting; a max_embeddings cap needs enumeration semantics
    # (results are counted one by one up to the cap, the 1e5-cap convention
    # of existing works), and restrictions/seeds couple independent regions.
    # A governed embedding cap disqualifies it the same way an option cap
    # does.
    try:
        if (
            options.count_only
            and not physical.restrictions
            and not physical.has_pins
            and options.max_embeddings is None
            and (gov is None or gov.budget.max_embeddings is None)
        ):
            from repro.engine.counting import count_physical

            with obs.tracer.span(
                "execute", mode="count", variant=plan.variant.value
            ) as span:
                count, stats, stop_reason, degradation = count_physical(
                    physical, options
                )
                timed_out = stop_reason == STOP_TIME_LIMIT
                span.set("count", count)
            # The factorized counter attaches its own estimator to the
            # Observation; snapshot it (pinned to 100% on exhaustive runs).
            estimator = getattr(obs, "progress", None)
            if estimator is not None:
                if stop_reason is None:
                    estimator.complete()
                progress = estimator.as_dict()
        else:
            runtime = Runtime(physical, options)
            count = 0
            with obs.tracer.span(
                "execute", mode="enumerate", variant=plan.variant.value
            ) as span:
                if options.count_only:
                    count = count_capped(physical, runtime)
                else:
                    collected: list[dict[int, int]] = []
                    n = physical.num_vertices
                    for tup in stream(physical, runtime):
                        collected.append({u: tup[u] for u in range(n)})
                    count = runtime.emitted
                    embeddings = collected
                truncated = runtime.truncated
                timed_out = runtime.timed_out
                stop_reason = runtime.stop_reason
                degradation = list(runtime.degradation)
                span.set("count", count)
                span.set("nodes", runtime.nodes)
            stats = runtime.stats()
            progress = runtime.progress_snapshot(complete=True)
    finally:
        if gov is not None:
            gov.release()

    if recorder.enabled:
        recorder.record(
            "run_end",
            count=count,
            nodes=stats.get("nodes", 0),
            stop_reason=stop_reason,
        )
    if obs.enabled:
        obs.counters.merge(stats)
    result = MatchResult(
        count=count,
        variant=plan.variant,
        embeddings=embeddings,
        elapsed=time.perf_counter() - start,
        read_seconds=plan.task_clusters.read_seconds,
        plan_seconds=max(0.0, plan.plan_seconds),
        compile_seconds=physical.compile_seconds,
        truncated=truncated,
        timed_out=timed_out,
        stop_reason=stop_reason,
        degradation=degradation,
        progress=progress,
        stats=stats,
    )
    if logger.isEnabledFor(logging.DEBUG):
        logger.debug(
            "executed %s: count=%d nodes=%d elapsed=%.4fs%s",
            plan.variant.value,
            count,
            stats.get("nodes", 0),
            result.elapsed,
            f" (stopped: {stop_reason})" if stop_reason else "",
        )
    return result
