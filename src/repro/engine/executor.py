"""The iterative physical-plan executor (Section III, green stage).

Embeddings grow one vertex at a time following the compiled op sequence;
each step intersects cluster neighbor lists (worst-case-optimal-join style)
through :class:`~repro.engine.candidates.CandidateComputer`. The search is
driven by an explicit per-depth frame stack — no Python recursion — which
buys three things the old recursive interpreter could not offer:

* **streaming**: :func:`stream` is a plain generator over the frame stack,
  so :class:`EmbeddingStream` (behind ``CSCE.match_iter``) yields
  embeddings lazily, one ``next()`` at a time, with the search suspended
  in between;
* **cooperative limits**: ``max_embeddings`` and ``time_limit`` set the
  ``truncated`` / ``timed_out`` flags on the :class:`Runtime` and end the
  loop — no control-flow exceptions, and a partially-consumed stream is
  always in a consistent state;
* **no recursion-limit games**: a 2000-vertex pattern (the paper's largest)
  needs 2000 stack frames under recursion; here it needs three parallel
  arrays of length 2000.

Counting runs share the same :class:`Runtime`; factorized counting lives in
:mod:`repro.engine.counting` on its own frame machine.
"""

from __future__ import annotations

import logging
import time

import numpy as np

from repro.engine.candidates import CandidateComputer
from repro.engine.physical import PhysicalPlan, compile_plan
from repro.engine.results import MatchOptions, MatchResult
from repro.obs import NULL_OBS, unified_stats

logger = logging.getLogger(__name__)

_TIME_CHECK_INTERVAL = 2048


def _contains_sorted(array: np.ndarray, value: int) -> bool:
    """Membership test in a sorted candidate array (binary search)."""
    idx = int(np.searchsorted(array, value))
    return idx < array.shape[0] and int(array[idx]) == value


def _satisfies(
    candidate: int,
    assignment: list[int],
    restrictions: tuple[tuple[int, bool], ...],
) -> bool:
    """Check the ``f(u) < f(v)`` restrictions anchored at this op."""
    for other, candidate_is_smaller in restrictions:
        image = assignment[other]
        if candidate_is_smaller:
            if candidate >= image:
                return False
        elif candidate <= image:
            return False
    return True


def specialize(physical: PhysicalPlan, options: MatchOptions) -> PhysicalPlan:
    """Bind per-run restrictions/seed into the physical plan when they
    differ from what was compiled in.

    Lets one cached plan serve runs with varying seeds (cheap pin rebind)
    and keeps ``execute_physical(compile_plan(plan), options)`` faithful to
    the options even when the caller compiled without them.
    """
    restrictions = tuple(options.restrictions) if options.restrictions else ()
    if restrictions != physical.restrictions:
        physical = compile_plan(physical.logical, restrictions=restrictions)
    if options.seed:
        physical = physical.with_seed(options.seed)
    return physical


class Runtime:
    """Mutable per-run execution state: counters, limits, instruments.

    Shared by the streaming generator and the counting fast path so both
    report identical :data:`~repro.obs.counters.STAT_KEYS` semantics.
    """

    __slots__ = (
        "options",
        "computer",
        "profile",
        "nodes",
        "emitted",
        "backtracks",
        "prunes_injective",
        "prunes_restriction",
        "truncated",
        "timed_out",
        "_deadline",
        "_heartbeat",
        "_ticking",
    )

    def __init__(self, physical: PhysicalPlan, options: MatchOptions):
        self.options = options
        obs = options.obs or NULL_OBS
        profiler = getattr(obs, "profile", None)
        # None when profiling is off: the hot loops pay one is-None branch.
        self.profile = (
            profiler.search if profiler is not None and profiler.enabled else None
        )
        self.computer = CandidateComputer(
            physical,
            use_sce=options.use_sce,
            memo_limit=options.memo_limit,
            profile=self.profile,
        )
        self.nodes = 0
        self.emitted = 0
        self.backtracks = 0
        self.prunes_injective = 0
        self.prunes_restriction = 0
        self.truncated = False
        self.timed_out = False
        self._deadline = (
            time.perf_counter() + options.time_limit
            if options.time_limit is not None
            else None
        )
        self._heartbeat = obs.heartbeat
        # One flag guards the periodic work: without a deadline or a live
        # heartbeat, tick never even computes the interval modulo.
        self._ticking = self._deadline is not None or self._heartbeat.enabled

    def tick(self, depth: int = 0, phase: str = "enumerate") -> bool:
        """Account one search-tree node; False once the deadline passed."""
        self.nodes += 1
        if self._ticking and self.nodes % _TIME_CHECK_INTERVAL == 0:
            if self._heartbeat.enabled:
                self._heartbeat.beat(self.nodes, self.emitted, depth, phase=phase)
            if (
                self._deadline is not None
                and time.perf_counter() > self._deadline
            ):
                return False
        return True

    def stats(self) -> dict:
        """The unified stats snapshot (all :data:`STAT_KEYS`)."""
        return unified_stats(
            nodes=self.nodes,
            candidate_stats=self.computer.stats,
            backtracks=self.backtracks,
            prunes_injective=self.prunes_injective,
            prunes_restriction=self.prunes_restriction,
        )


def stream(physical: PhysicalPlan, runtime: Runtime):
    """Iteratively enumerate embeddings; yields tuples indexed by pattern
    vertex id. Cooperative: on a limit, sets the runtime flag and returns.
    """
    if physical.impossible():
        return
    ops = physical.ops
    n = len(ops)
    if n == 0:
        runtime.emitted += 1
        yield ()
        return
    # Hot path: everything the loop touches is bound to locals.
    raw = runtime.computer.raw
    injective = physical.injective
    max_embeddings = runtime.options.max_embeddings
    profile = runtime.profile
    assignment = [-1] * n
    used: set[int] = set()
    add, discard = used.add, used.discard
    # Per-depth frames: the candidate list, the scan cursor, and the
    # emitted-count watermark for backtrack accounting.
    values: list[list | None] = [None] * n
    index = [0] * n
    emitted_at = [0] * n
    pos = 0
    while pos >= 0:
        op = ops[pos]
        vals = values[pos]
        if vals is None:
            # Entering this depth fresh: one tick per expansion, exactly
            # like one recursive extend() call.
            if not runtime.tick(pos):
                runtime.timed_out = True
                return
            candidates = raw(op, assignment)
            if profile is not None:
                profile.visit(pos, candidates.shape[0])
            pin = op.pin
            if pin is not None:
                vals = [pin] if _contains_sorted(candidates, pin) else []
            else:
                vals = candidates.tolist()
            values[pos] = vals
            index[pos] = 0
            emitted_at[pos] = runtime.emitted
        u = op.u
        # Unassign the value the previous iteration consumed at this depth
        # (returning from a child, or continuing after a leaf emission).
        if assignment[u] != -1:
            if injective:
                discard(assignment[u])
            assignment[u] = -1
        i = index[pos]
        restrictions = op.restrictions
        chosen = -1
        while i < len(vals):
            v = vals[i]
            i += 1
            if injective and v in used:
                runtime.prunes_injective += 1
                continue
            if restrictions and not _satisfies(v, assignment, restrictions):
                runtime.prunes_restriction += 1
                continue
            chosen = v
            break
        index[pos] = i
        if chosen < 0:
            if runtime.emitted == emitted_at[pos]:
                runtime.backtracks += 1
                if profile is not None:
                    profile.backtrack(pos)
            values[pos] = None
            pos -= 1
            continue
        assignment[u] = chosen
        if injective:
            add(chosen)
        if pos + 1 == n:
            runtime.emitted += 1
            yield tuple(assignment)
            if max_embeddings is not None and runtime.emitted >= max_embeddings:
                runtime.truncated = True
                return
            continue
        pos += 1


def count_capped(physical: PhysicalPlan, runtime: Runtime) -> int:
    """Count embeddings without yielding — the fast path for capped,
    restricted, or seeded counting runs (no per-embedding generator
    hand-off). Same frame machine as :func:`stream`."""
    if physical.impossible():
        return 0
    ops = physical.ops
    n = len(ops)
    if n == 0:
        runtime.emitted += 1
        return runtime.emitted
    raw = runtime.computer.raw
    injective = physical.injective
    max_embeddings = runtime.options.max_embeddings
    profile = runtime.profile
    assignment = [-1] * n
    used: set[int] = set()
    add, discard = used.add, used.discard
    values: list[list | None] = [None] * n
    index = [0] * n
    emitted_at = [0] * n
    pos = 0
    while pos >= 0:
        op = ops[pos]
        vals = values[pos]
        if vals is None:
            if not runtime.tick(pos):
                runtime.timed_out = True
                return runtime.emitted
            candidates = raw(op, assignment)
            if profile is not None:
                profile.visit(pos, candidates.shape[0])
            pin = op.pin
            if pin is not None:
                vals = [pin] if _contains_sorted(candidates, pin) else []
            else:
                vals = candidates.tolist()
            values[pos] = vals
            index[pos] = 0
            emitted_at[pos] = runtime.emitted
        u = op.u
        if assignment[u] != -1:
            if injective:
                discard(assignment[u])
            assignment[u] = -1
        i = index[pos]
        restrictions = op.restrictions
        chosen = -1
        while i < len(vals):
            v = vals[i]
            i += 1
            if injective and v in used:
                runtime.prunes_injective += 1
                continue
            if restrictions and not _satisfies(v, assignment, restrictions):
                runtime.prunes_restriction += 1
                continue
            chosen = v
            break
        index[pos] = i
        if chosen < 0:
            if runtime.emitted == emitted_at[pos]:
                runtime.backtracks += 1
                if profile is not None:
                    profile.backtrack(pos)
            values[pos] = None
            pos -= 1
            continue
        assignment[u] = chosen
        if injective:
            add(chosen)
        if pos + 1 == n:
            runtime.emitted += 1
            if max_embeddings is not None and runtime.emitted >= max_embeddings:
                runtime.truncated = True
                return runtime.emitted
            continue
        pos += 1
    return runtime.emitted


class EmbeddingStream:
    """A lazy, resumable iterator of embeddings (``CSCE.match_iter``).

    Yields ``{pattern vertex: data vertex}`` dicts one at a time; the
    search is suspended between ``next()`` calls, so consuming three
    embeddings of a billion-result query does three embeddings of work.
    Progress counters (``count``, ``stats``) and the cooperative limit
    flags (``truncated``, ``timed_out``) are readable at any point, also
    mid-iteration. ``close()`` (or exiting a ``with`` block) abandons the
    remaining search.

    Streams do not fold their stats into an Observation's counter registry
    (the run has no natural end); read ``.stats`` or ``.result()`` instead.
    Heartbeats and per-depth profiling stay live while iterating.
    """

    def __init__(self, physical: PhysicalPlan, options: MatchOptions | None = None):
        options = options or MatchOptions()
        physical = specialize(physical, options)
        self.physical = physical
        self.options = options
        self.runtime = Runtime(physical, options)
        self._gen = stream(physical, self.runtime)
        self._n = physical.num_vertices
        self._started = time.perf_counter()

    def __iter__(self) -> "EmbeddingStream":
        return self

    def __next__(self) -> dict[int, int]:
        tup = next(self._gen)
        return {u: tup[u] for u in range(self._n)}

    def __enter__(self) -> "EmbeddingStream":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        """Abandon the remaining search; counters keep their last state."""
        self._gen.close()

    @property
    def count(self) -> int:
        """Embeddings yielded so far."""
        return self.runtime.emitted

    @property
    def truncated(self) -> bool:
        return self.runtime.truncated

    @property
    def timed_out(self) -> bool:
        return self.runtime.timed_out

    @property
    def stats(self) -> dict:
        """Unified stats snapshot of the search so far."""
        return self.runtime.stats()

    def result(self) -> MatchResult:
        """A :class:`MatchResult` snapshot of the stream's progress.

        ``elapsed`` is wall time since the stream was opened (it includes
        the consumer's time between ``next()`` calls); embeddings are not
        re-materialized.
        """
        plan = self.physical.logical
        return MatchResult(
            count=self.runtime.emitted,
            variant=plan.variant,
            embeddings=None,
            elapsed=time.perf_counter() - self._started,
            read_seconds=plan.task_clusters.read_seconds,
            plan_seconds=max(0.0, plan.plan_seconds),
            compile_seconds=self.physical.compile_seconds,
            truncated=self.runtime.truncated,
            timed_out=self.runtime.timed_out,
            stats=self.runtime.stats(),
        )


def execute_physical(
    physical: PhysicalPlan, options: MatchOptions | None = None
) -> MatchResult:
    """Run a compiled plan to completion and package the result.

    Counting runs go through the SCE-factorized counter when eligible
    (uncapped, unrestricted, unseeded); every other run drives the
    iterative frame machine. Limits surface as ``truncated``/``timed_out``
    flags with the partial count, never as exceptions.
    """
    options = options or MatchOptions()
    obs = options.obs or NULL_OBS
    physical = specialize(physical, options)
    plan = physical.logical
    start = time.perf_counter()
    truncated = False
    timed_out = False
    embeddings: list[dict[int, int]] | None = None

    # Exact SCE-factorized counting only applies to uncapped, unrestricted,
    # unseeded counting; a max_embeddings cap needs enumeration semantics
    # (results are counted one by one up to the cap, the 1e5-cap convention
    # of existing works), and restrictions/seeds couple independent regions.
    if (
        options.count_only
        and not physical.restrictions
        and not physical.has_pins
        and options.max_embeddings is None
    ):
        from repro.engine.counting import count_physical

        with obs.tracer.span(
            "execute", mode="count", variant=plan.variant.value
        ) as span:
            count, stats, timed_out = count_physical(physical, options)
            span.set("count", count)
    else:
        runtime = Runtime(physical, options)
        count = 0
        with obs.tracer.span(
            "execute", mode="enumerate", variant=plan.variant.value
        ) as span:
            if options.count_only:
                count = count_capped(physical, runtime)
            else:
                collected: list[dict[int, int]] = []
                n = physical.num_vertices
                for tup in stream(physical, runtime):
                    collected.append({u: tup[u] for u in range(n)})
                count = runtime.emitted
                embeddings = collected
            truncated = runtime.truncated
            timed_out = runtime.timed_out
            span.set("count", count)
            span.set("nodes", runtime.nodes)
        stats = runtime.stats()

    if obs.enabled:
        obs.counters.merge(stats)
    result = MatchResult(
        count=count,
        variant=plan.variant,
        embeddings=embeddings,
        elapsed=time.perf_counter() - start,
        read_seconds=plan.task_clusters.read_seconds,
        plan_seconds=max(0.0, plan.plan_seconds),
        compile_seconds=physical.compile_seconds,
        truncated=truncated,
        timed_out=timed_out,
        stats=stats,
    )
    if logger.isEnabledFor(logging.DEBUG):
        logger.debug(
            "executed %s: count=%d nodes=%d elapsed=%.4fs%s",
            plan.variant.value,
            count,
            stats.get("nodes", 0),
            result.elapsed,
            " (truncated)" if truncated else (" (timed out)" if timed_out else ""),
        )
    return result
