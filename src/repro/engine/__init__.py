"""The physical-operator execution engine.

The engine separates the *logical* plan (what each step must check — see
:mod:`repro.core.plan`) from the *physical* plan (how it executes):

* :func:`compile_plan` lowers a :class:`~repro.core.plan.Plan` into a
  :class:`PhysicalPlan` — a tuple of :class:`ExtendOp` step operators with
  backward-edge fetchers, negation probes, SCE memo ids, symmetry
  restrictions, and seed pins resolved at compile time;
* :func:`execute_physical` runs a compiled plan on the **iterative**
  executor (explicit frame stack, no Python recursion; limits are
  cooperative flags, not exceptions);
* :class:`EmbeddingStream` streams embeddings lazily (``CSCE.match_iter``);
* :func:`count_physical` is the SCE-factorized counting terminal over the
  same operators;
* :class:`MatchSession` holds a store plus an LRU cache of compiled plans,
  shared by enumeration, counting, continuous matching, and baselines.

Layering: this package sits between ``repro.core`` planning and the
front-ends; it must never import ``repro.cli`` or ``repro.bench``
(enforced by ``tools/check_layering.py`` in CI).
"""

from repro.engine.results import (
    MIN_THROUGHPUT_ELAPSED,
    MatchOptions,
    MatchResult,
)
from repro.engine.physical import (
    ExtendOp,
    PhysicalPlan,
    compile_plan,
    pattern_fingerprint,
)
from repro.engine.candidates import CandidateComputer
from repro.engine.executor import (
    EmbeddingStream,
    Runtime,
    count_capped,
    execute_physical,
    stream,
)
from repro.engine.counting import FactorizedCounter, count_physical
from repro.engine.session import (
    PLANNERS,
    CompiledQuery,
    MatchSession,
    plan_query,
)

__all__ = [
    "MIN_THROUGHPUT_ELAPSED",
    "MatchOptions",
    "MatchResult",
    "ExtendOp",
    "PhysicalPlan",
    "compile_plan",
    "pattern_fingerprint",
    "CandidateComputer",
    "EmbeddingStream",
    "Runtime",
    "count_capped",
    "execute_physical",
    "stream",
    "FactorizedCounter",
    "count_physical",
    "PLANNERS",
    "CompiledQuery",
    "MatchSession",
    "plan_query",
]
