"""The physical-operator execution engine.

The engine separates the *logical* plan (what each step must check — see
:mod:`repro.core.plan`) from the *physical* plan (how it executes):

* :func:`compile_plan` lowers a :class:`~repro.core.plan.Plan` into a
  :class:`PhysicalPlan` — a tuple of :class:`ExtendOp` step operators with
  backward-edge fetchers, negation probes, SCE memo ids, symmetry
  restrictions, and seed pins resolved at compile time;
* :func:`execute_physical` runs a compiled plan on the **iterative**
  executor (explicit frame stack, no Python recursion; limits are
  cooperative flags, not exceptions);
* :class:`EmbeddingStream` streams embeddings lazily (``CSCE.match_iter``);
* :func:`count_physical` is the SCE-factorized counting terminal over the
  same operators;
* :class:`MatchSession` holds a store plus an LRU cache of compiled plans,
  shared by enumeration, counting, continuous matching, and baselines;
* :class:`ResourceGovernor` enforces a unified :class:`Budget` (deadline,
  embedding cap, memory ceiling with a graceful-degradation ladder) and a
  cooperative :class:`CancelToken` over any run;
* :mod:`repro.engine.checkpoint` suspends/resumes the streaming executor's
  frame stack across processes (``CSCE.resume``);
* :mod:`repro.engine.workunit` shards one search into portable
  :class:`SearchState` payloads (root-candidate ranges, work-steal splits)
  and :mod:`repro.engine.pool` executes them on a multi-process worker
  pool with exact merged counts (``MatchOptions(workers=N)``);
* :mod:`repro.engine.verify` statically verifies a compiled plan against
  its store before execution (``csce verify``,
  ``MatchSession(verify=True)``).

Layering: this package sits between ``repro.core`` planning and the
front-ends; it must never import ``repro.cli`` or ``repro.bench``
(enforced by the ``layering`` pass of ``python -m tools.reprolint`` in CI).
"""

from repro.engine.results import (
    MIN_THROUGHPUT_ELAPSED,
    STOP_CANCELLED,
    STOP_EMBEDDING_LIMIT,
    STOP_MEMORY_LIMIT,
    STOP_QUARANTINED,
    STOP_REASONS,
    STOP_TIME_LIMIT,
    MatchOptions,
    MatchResult,
)
from repro.engine.governor import (
    Budget,
    CancelToken,
    ResourceGovernor,
    RetryPolicy,
)
from repro.engine.physical import (
    ExtendOp,
    PhysicalPlan,
    compile_plan,
    pattern_fingerprint,
)
from repro.engine.candidates import CandidateComputer
from repro.engine.executor import (
    EmbeddingStream,
    Runtime,
    SearchState,
    count_capped,
    execute_physical,
    stream,
)
from repro.engine.checkpoint import (
    CheckpointSink,
    PoolCheckpointDir,
    load_checkpoint,
    load_checkpoint_dir,
    load_quarantine_dir,
    restore_stream,
    worker_scoped_path,
    write_checkpoint,
)
from repro.engine.workunit import (
    make_root_units,
    root_candidates,
    split_search_state,
)
from repro.engine.pool import (
    PoolMonitor,
    execute_parallel,
    resume_parallel,
)
from repro.engine.counting import FactorizedCounter, count_physical
from repro.engine.session import (
    PLANNERS,
    CompiledQuery,
    MatchSession,
    plan_query,
)
from repro.engine.verify import (
    Diagnostic,
    VerificationReport,
    verify_physical,
    verify_plan,
)

__all__ = [
    "MIN_THROUGHPUT_ELAPSED",
    "STOP_CANCELLED",
    "STOP_EMBEDDING_LIMIT",
    "STOP_MEMORY_LIMIT",
    "STOP_QUARANTINED",
    "STOP_REASONS",
    "STOP_TIME_LIMIT",
    "MatchOptions",
    "MatchResult",
    "Budget",
    "CancelToken",
    "ResourceGovernor",
    "RetryPolicy",
    "SearchState",
    "CheckpointSink",
    "PoolCheckpointDir",
    "load_checkpoint",
    "load_checkpoint_dir",
    "load_quarantine_dir",
    "restore_stream",
    "worker_scoped_path",
    "write_checkpoint",
    "make_root_units",
    "root_candidates",
    "split_search_state",
    "PoolMonitor",
    "execute_parallel",
    "resume_parallel",
    "ExtendOp",
    "PhysicalPlan",
    "compile_plan",
    "pattern_fingerprint",
    "CandidateComputer",
    "EmbeddingStream",
    "Runtime",
    "count_capped",
    "execute_physical",
    "stream",
    "FactorizedCounter",
    "count_physical",
    "PLANNERS",
    "CompiledQuery",
    "MatchSession",
    "plan_query",
    "Diagnostic",
    "VerificationReport",
    "verify_physical",
    "verify_plan",
]
