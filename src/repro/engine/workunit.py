"""Portable work units: sharding one search into resumable pieces.

A *work unit* is a :class:`~repro.engine.executor.SearchState` payload —
the exact JSON shape PR 4's checkpoints already serialize — describing a
sub-region of the search space. Because candidate sets at depth ``d``
depend only on the assignment prefix above ``d``, partitioning the
candidate list at any open depth partitions the remaining subtree
*exactly*: executing the pieces independently (in any order, on any
process) and summing the emitted counts reproduces the sequential count.

Two shard shapes are produced here:

* **root-range shards** (:func:`make_root_units`): the initial
  decomposition — the depth-0 candidate list, computed once in the
  parent, chopped into contiguous ranges. Each payload is a fresh frame
  stack pre-seeded with its range at depth 0, so the executor resumes it
  without any hot-loop changes (a pre-seeded depth skips candidate
  computation naturally).
* **split shards** (:func:`split_search_state`): work stealing — a live,
  oversized unit donates the untouched back half of the shallowest
  still-open candidate list. The kept state is truncated in place; the
  donated payload carries the assignment prefix above the split depth.

Splitting is only sound at a *tick boundary*: there ``values[pos]`` is
``None`` (the current depth's list is not yet built), the current depth's
assignment slot has been cleared, and ``state.pos`` is synced — so every
depth the split loop can reach holds a quiescent cursor and in-place
truncation cannot race the executor. The pool's worker-side heartbeat
listener runs exactly there.
"""

from __future__ import annotations

from repro.engine.candidates import CandidateComputer
from repro.engine.executor import SearchState, _contains_sorted
from repro.engine.physical import PhysicalPlan

#: A donated depth must keep at least this many unconsumed candidates to
#: be worth shipping; below it the steal overhead exceeds the work.
MIN_SPLIT_REMAINING = 2


def root_candidates(physical: PhysicalPlan) -> list[int]:
    """The depth-0 candidate list of a compiled plan, pin-filtered.

    Computed with memoization off — this runs once in the pool parent, on
    an empty assignment, so there is nothing to memoize. Returns ``[]``
    for impossible plans (the pool then short-circuits to a zero result).
    """
    if physical.impossible() or not physical.ops:
        return []
    op = physical.ops[0]
    computer = CandidateComputer(physical, use_sce=False)
    candidates = computer.raw(op, [-1] * len(physical.ops))
    pin = op.pin
    if pin is not None:
        return [pin] if _contains_sorted(candidates, pin) else []
    return [int(v) for v in candidates.tolist()]


def make_root_units(physical: PhysicalPlan, shards: int) -> list[dict]:
    """Shard the root-candidate range into ``shards`` contiguous units.

    Each unit is a ``SearchState.to_payload()`` dict whose depth-0
    candidate list is one chunk of the root range (chunk sizes differ by
    at most one); empty chunks are dropped, so fewer units than requested
    come back when the root range is small. Executing every unit and
    summing the counts is exactly the sequential search.
    """
    if shards < 1:
        raise ValueError(f"shards must be positive: {shards}")
    roots = root_candidates(physical)
    if not roots:
        return []
    n = len(physical.ops)
    shards = min(shards, len(roots))
    base, extra = divmod(len(roots), shards)
    units: list[dict] = []
    start = 0
    for i in range(shards):
        size = base + (1 if i < extra else 0)
        chunk = roots[start : start + size]
        start += size
        if not chunk:
            continue
        values: list[list | None] = [None] * n
        values[0] = chunk
        units.append(
            {
                "assignment": [-1] * n,
                "used": [],
                "values": values,
                "index": [0] * n,
                "emitted_at": [0] * n,
                "pos": 0,
            }
        )
    return units


def split_search_state(
    state: SearchState,
    injective: bool,
    op_vertices: tuple[int, ...],
    min_remaining: int = MIN_SPLIT_REMAINING,
) -> dict | None:
    """Steal the back half of the shallowest splittable depth of a live
    frame stack, or return ``None`` when nothing is worth donating.

    Must be called at a tick boundary (see the module docstring). The
    kept ``state`` is truncated **in place** — its candidate list at the
    split depth loses the donated suffix, nothing else changes — and the
    returned payload is a fresh frame stack that re-enters the search at
    the split depth with the same assignment prefix. ``op_vertices`` maps
    each depth to its pattern vertex (``physical.ops[d].u``), needed to
    reconstruct the donated prefix assignment and injectivity set.
    """
    if min_remaining < 2:
        raise ValueError(f"min_remaining must be >= 2: {min_remaining}")
    values = state.values
    index = state.index
    for depth, vals in enumerate(values):
        if vals is None:
            # Depths below an unentered one are unentered too.
            break
        remaining = len(vals) - index[depth]
        if remaining < min_remaining:
            continue
        cut = index[depth] + (remaining + 1) // 2
        donated_vals = vals[cut:]
        del vals[cut:]
        n = len(values)
        assignment = [-1] * n
        donated_values: list[list | None] = [None] * n
        donated_index = [0] * n
        prefix: list[int] = []
        for d in range(depth):
            image = state.assignment[op_vertices[d]]
            assignment[op_vertices[d]] = image
            prefix.append(image)
            # Each prefix depth is a fully-consumed single-candidate
            # list: backtracking out of the donated depth then unwinds
            # straight to exhaustion instead of recomputing (and
            # re-enumerating) candidates the victim still owns.
            donated_values[d] = [image]
            donated_index[d] = 1
        donated_values[depth] = donated_vals
        return {
            "assignment": assignment,
            "used": sorted(prefix) if injective else [],
            "values": donated_values,
            "index": donated_index,
            "emitted_at": [0] * n,
            "pos": depth,
        }
    return None
