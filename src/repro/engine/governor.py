"""Resource governance for long-running searches.

CSCE targets large patterns whose searches can run for minutes and whose
SCE memo tables grow with the number of distinct ``(op, prior-assignment)``
keys — exactly the regime where a production engine must survive deadlines,
memory pressure, and operator interrupts instead of dying with a stack
trace. This module provides the three pieces:

* :class:`Budget` — a unified, immutable resource budget: wall-clock
  deadline, embedding cap, and a **memory ceiling** (MiB) sampled
  cooperatively at frame-step boundaries via :mod:`tracemalloc` (the same
  machinery :class:`repro.obs.profile.Profiler` uses).
* :class:`CancelToken` — a thread-safe cooperative cancellation flag. The
  CLI trips it from a SIGINT handler; injected faults trip it from the
  chaos suite. The engine polls it at tick boundaries and stops with a
  truncated-but-valid result, never a ``KeyboardInterrupt`` traceback.
* :class:`ResourceGovernor` — combines both and applies the
  **graceful-degradation ladder** on a memory breach: first evict half the
  SCE memo (LRU-style), then disable memoization for the remainder of the
  run, and only suspend (``stop_reason="memory_limit"``) if pressure
  persists. Each rung is recorded in the run's ``degradation`` list and
  the observation counters (``governor_evictions`` etc.).

Because the executor keeps its entire search state in an explicit frame
stack (PR 3), a governed stop is just a cooperative ``return`` — the
partial counts are exact, and the frame stack itself can be checkpointed
(:mod:`repro.engine.checkpoint`) and resumed later.

Memory sampling is cheap but not free (one ``tracemalloc`` read per
:data:`~repro.engine.executor._TIME_CHECK_INTERVAL` ticks) and tracemalloc
tracing itself slows allocation; a governor with no memory budget never
starts tracing, so the default (unlimited) budget adds no overhead beyond
a single attribute check per tick window.
"""

from __future__ import annotations

from typing import Any, Callable

import random
import threading
import time
import tracemalloc
from dataclasses import dataclass

from repro.engine.results import (  # noqa: F401  (re-exported)
    RESUMABLE_STOP_REASONS,
    STOP_CANCELLED,
    STOP_EMBEDDING_LIMIT,
    STOP_MEMORY_LIMIT,
    STOP_REASONS,
    STOP_TIME_LIMIT,
)
from repro.testing import faults

#: Degradation-ladder event names, in escalation order.
DEGRADE_EVICT = "evict_memo"
DEGRADE_DISABLE = "disable_memo"
DEGRADE_SUSPEND = "suspend"

#: Fraction of the memo evicted on the ladder's first rung.
EVICT_FRACTION = 0.5


@dataclass(frozen=True)
class Budget:
    """A unified resource budget. ``None`` fields are unlimited.

    ``time_limit`` and ``max_embeddings`` mirror the same-named
    :class:`~repro.engine.results.MatchOptions` fields; when both a budget
    and an option specify a limit, the tighter one wins.
    ``memory_limit_mb`` is new: a ceiling on Python-heap usage (MiB, as
    reported by :func:`tracemalloc.get_traced_memory`) checked
    cooperatively at frame-step boundaries.
    """

    time_limit: float | None = None
    max_embeddings: int | None = None
    memory_limit_mb: float | None = None

    @property
    def unlimited(self) -> bool:
        return (
            self.time_limit is None
            and self.max_embeddings is None
            and self.memory_limit_mb is None
        )


class CancelToken:
    """A thread-safe cooperative cancellation flag.

    Trip it from a signal handler, another thread, or an injected fault;
    the engine polls :attr:`cancelled` at tick boundaries and stops with
    ``stop_reason="cancelled"``. Reusable: :meth:`clear` re-arms it, so a
    long-lived :class:`~repro.core.continuous.ContinuousMatcher` can absorb
    a cancellation on one delta and keep serving the next.
    """

    __slots__ = ("_event", "reason")

    def __init__(self) -> None:
        self._event = threading.Event()
        self.reason: str | None = None

    def trip(self, reason: str = "cancelled") -> None:
        """Request cancellation (safe to call from a signal handler)."""
        self.reason = reason
        self._event.set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def clear(self) -> None:
        """Re-arm the token for the next run."""
        self._event.clear()
        self.reason = None

    def __repr__(self) -> str:
        state = f"tripped: {self.reason}" if self.cancelled else "armed"
        return f"<CancelToken {state}>"


class ResourceGovernor:
    """Enforces a :class:`Budget` + :class:`CancelToken` over one or more
    runs, applying the graceful-degradation ladder on memory breaches.

    The governor is attached via ``MatchOptions(governor=...)`` and polled
    by the engine's tick machinery through :meth:`check`, which is
    duck-typed over the executor's :class:`~repro.engine.executor.Runtime`
    and the counter's :class:`~repro.engine.counting.FactorizedCounter`
    (both expose ``computer``, ``options``, ``degradation`` and
    ``gov_stage``). It owns tracemalloc the same way
    :class:`repro.obs.profile.Profiler` does: starts tracing only when a
    memory budget exists and tracing is off, and stops it only if it
    started it.
    """

    def __init__(
        self,
        budget: Budget | None = None,
        cancel: CancelToken | None = None,
        obs: object | None = None,
    ) -> None:
        self.budget = budget or Budget()
        self.cancel = cancel or CancelToken()
        self.obs = obs
        self._owns_tracing = False
        # Live-tightening state (see tighten()): the time/embedding
        # dimensions of the *initial* budget are folded into the runtime
        # at construction, so mid-run changes need governor-level
        # overrides that check() enforces itself.
        self._tighten_lock = threading.Lock()
        self._deadline_override: float | None = None
        self._cap_override: int | None = None

    # -- tracemalloc ownership ----------------------------------------
    def ensure_tracing(self) -> None:
        """Start tracemalloc if a memory budget requires sampling."""
        if self.budget.memory_limit_mb is None:
            return
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._owns_tracing = True

    def release(self) -> None:
        """Stop tracemalloc if (and only if) this governor started it."""
        if self._owns_tracing:
            tracemalloc.stop()
            self._owns_tracing = False

    # -- live tightening (inspector `budget` command) -----------------
    def tighten(
        self,
        time_limit: float | None = None,
        max_embeddings: int | None = None,
        memory_limit_mb: float | None = None,
    ) -> Budget:
        """Tighten the budget mid-run; returns the new effective budget.

        Caps can only shrink (min-merge with the existing budget — a
        governor cannot *grant* resources a run was started without).
        ``time_limit`` counts from *now*: it becomes an absolute deadline
        checked at the next tick, alongside the runtime's original one.
        Thread-safe: called from inspector socket threads while the
        executor thread polls :meth:`check`.
        """
        with self._tighten_lock:
            old = self.budget
            if time_limit is not None:
                deadline = time.perf_counter() + time_limit
                if (
                    self._deadline_override is None
                    or deadline < self._deadline_override
                ):
                    self._deadline_override = deadline
            if max_embeddings is not None:
                if (
                    self._cap_override is None
                    or max_embeddings < self._cap_override
                ):
                    self._cap_override = max_embeddings

            def _min(a, b):
                if a is None:
                    return b
                if b is None:
                    return a
                return min(a, b)

            self.budget = Budget(
                time_limit=_min(old.time_limit, time_limit),
                max_embeddings=_min(old.max_embeddings, max_embeddings),
                memory_limit_mb=_min(old.memory_limit_mb, memory_limit_mb),
            )
        # A newly-imposed memory ceiling needs sampling to be live.
        self.ensure_tracing()
        return self.budget

    # -- sampling ------------------------------------------------------
    def memory_mb(self) -> float:
        """Current traced Python-heap usage in MiB (0.0 when not tracing),
        plus any simulated pressure from the ``governor.memory`` fault
        site (the chaos suite's way of testing the ladder without
        actually allocating gigabytes)."""
        current = 0.0
        if tracemalloc.is_tracing():
            current = tracemalloc.get_traced_memory()[0] / (1024.0 * 1024.0)
        extra = faults.fire("governor.memory")
        if extra is not None:
            current += float(extra)
        return current

    # -- the cooperative check ----------------------------------------
    def check(self, run: Any) -> str | None:
        """One governance step; returns a stop reason or ``None``.

        ``run`` is the executor's ``Runtime`` or the factorized counter —
        anything with ``computer`` (a
        :class:`~repro.engine.candidates.CandidateComputer`),
        ``degradation`` (list of ladder events) and ``gov_stage`` (int
        ladder position, starts at 0). Called from ``tick()`` at the same
        cadence as the deadline check, so its cost is amortized over
        :data:`~repro.engine.executor._TIME_CHECK_INTERVAL` frame steps.

        The time/embedding dimensions of the budget are *not* checked here
        — they are folded into the runtime's own deadline/cap at
        construction (min of option and budget), keeping the hot path
        identical to the ungoverned engine.
        """
        if self.cancel.cancelled:
            return STOP_CANCELLED
        # Mid-run tightenings (see tighten()): the runtime's own
        # deadline/cap were frozen at construction, so post-hoc limits
        # are enforced here instead.
        deadline = self._deadline_override
        if deadline is not None and time.perf_counter() >= deadline:
            return STOP_TIME_LIMIT
        cap = self._cap_override
        if cap is not None:
            emitted = getattr(run, "emitted", None)
            if emitted is not None and emitted >= cap:
                return STOP_EMBEDDING_LIMIT
        limit = self.budget.memory_limit_mb
        if limit is None:
            return None
        if self.memory_mb() <= limit:
            return None
        # Memory breach: climb the degradation ladder one rung per breach.
        stage = run.gov_stage
        computer = run.computer
        if stage == 0:
            evicted = computer.evict(EVICT_FRACTION)
            run.gov_stage = 1
            run.degradation.append(DEGRADE_EVICT)
            self._count("governor_evictions")
            self._record_degrade(DEGRADE_EVICT, 1)
            if evicted:
                return None
            # Nothing to evict — fall through to the next rung now rather
            # than burning another full tick window under pressure.
            stage = 1
        if stage == 1:
            computer.disable_memo()
            run.gov_stage = 2
            run.degradation.append(DEGRADE_DISABLE)
            self._count("governor_memo_disabled")
            self._record_degrade(DEGRADE_DISABLE, 2)
            return None
        # stage >= 2: eviction and disabling did not relieve pressure.
        run.degradation.append(DEGRADE_SUSPEND)
        self._count("governor_suspensions")
        self._record_degrade(DEGRADE_SUSPEND, 3)
        return STOP_MEMORY_LIMIT

    def _count(self, name: str) -> None:
        obs = self.obs
        if obs is not None and getattr(obs, "enabled", False):
            obs.counters.inc(name)

    def _record_degrade(self, rung: str, stage: int) -> None:
        """Leave the ladder climb in the flight recorder, so a post-mortem
        dump shows *which* rungs fired before a memory-limit stop."""
        obs = self.obs
        if obs is None:
            return
        recorder = getattr(obs, "recorder", None)
        if recorder is not None and recorder.enabled:
            recorder.record("degrade", rung=rung, stage=stage)

    # -- convenience ---------------------------------------------------
    def effective_deadline(self, time_limit: float | None) -> float | None:
        """Absolute deadline combining the budget with a per-run option."""
        limits = [
            t for t in (time_limit, self.budget.time_limit) if t is not None
        ]
        if not limits:
            return None
        return time.perf_counter() + min(limits)

    def effective_cap(self, max_embeddings: int | None) -> int | None:
        """Embedding cap combining the budget with a per-run option."""
        caps = [
            c
            for c in (max_embeddings, self.budget.max_embeddings)
            if c is not None
        ]
        return min(caps) if caps else None

    def __repr__(self) -> str:
        return (
            f"<ResourceGovernor budget={self.budget}"
            f" cancel={self.cancel!r}>"
        )


class RetryPolicy:
    """Bounded exponential backoff for absorbing transient faults.

    Wraps a callable that may fail transiently (the ``ccsr.read_cluster``
    site is the first user: a production store hits real I/O there) and
    retries it up to ``max_attempts`` total attempts. The delay before
    retry *k* is ``min(max_delay, base_delay * 2**(k-1))``, scaled by a
    jitter factor drawn from a **seeded** private :class:`random.Random` —
    two policies built with the same seed produce byte-identical delay
    sequences, so a chaos run is reproducible from its seed alone.

    Clock discipline: only :func:`time.perf_counter` is read, and a policy
    constructed with an absolute ``deadline`` (a ``perf_counter`` value,
    e.g. :meth:`ResourceGovernor.effective_deadline`) never sleeps past
    it — when the remaining budget cannot cover the next backoff, the
    original exception is re-raised immediately instead of burning the
    run's deadline on sleeps.

    ``retries`` counts the retries actually performed (the
    ``ccsr.read_retries`` observation counter mirrors it at the read
    site), so absorbed faults stay visible instead of silent.
    """

    def __init__(
        self,
        max_attempts: int = 3,
        base_delay: float = 0.01,
        max_delay: float = 0.25,
        jitter: float = 0.5,
        seed: int = 0,
        deadline: float | None = None,
    ) -> None:
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1: {max_attempts}")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1]: {jitter}")
        self.max_attempts = max_attempts
        self.base_delay = base_delay
        self.max_delay = max_delay
        self.jitter = jitter
        self.seed = seed
        self.deadline = deadline
        self.retries = 0
        self._rng = random.Random(seed)

    def with_deadline(self, deadline: float | None) -> "RetryPolicy":
        """A fresh policy with the same knobs bound to ``deadline``."""
        return RetryPolicy(
            max_attempts=self.max_attempts,
            base_delay=self.base_delay,
            max_delay=self.max_delay,
            jitter=self.jitter,
            seed=self.seed,
            deadline=deadline,
        )

    def backoff(self, attempt: int) -> float:
        """The jittered delay before retrying after failure ``attempt``
        (1-based). Deterministic given the construction seed."""
        delay = min(self.max_delay, self.base_delay * (2 ** (attempt - 1)))
        return delay * (1.0 - self.jitter * self._rng.random())

    def run(
        self,
        fn: Callable[[], Any],
        retry_on: tuple = (Exception,),
        on_retry: Callable[[int, float], None] | None = None,
    ) -> Any:
        """Call ``fn`` until it succeeds, a non-``retry_on`` error
        escapes, the attempt budget is spent, or the deadline forbids
        another backoff. ``on_retry(attempt, delay)`` fires before each
        sleep (the read site uses it to bump ``ccsr.read_retries``)."""
        attempt = 1
        while True:
            try:
                return fn()
            except retry_on:
                if attempt >= self.max_attempts:
                    raise
                delay = self.backoff(attempt)
                if self.deadline is not None:
                    remaining = self.deadline - time.perf_counter()
                    if remaining <= delay:
                        raise
                self.retries += 1
                if on_retry is not None:
                    on_retry(attempt, delay)
                if delay > 0.0:
                    time.sleep(delay)
                attempt += 1
