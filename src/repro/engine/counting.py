"""Embedding counting with SCE factorization, on the physical engine.

Enumeration must spell out every embedding, but counting can exploit
Sequential Candidate Equivalence directly: once the unmatched suffix of the
plan splits into regions with no dependency path between them (components of
``H``), their counts multiply — each region is matched once instead of once
per sibling combination (the paper's R1/R2 example in Section I).

Under the injective variants the product is only sound when sibling regions
cannot compete for the same data vertices. Candidates always carry their
pattern vertex's label, so regions with disjoint label sets are safe —
exactly Definition 1's observation that ``C \\ {v_x} = C`` when labels
differ. Regions sharing labels are merged and enumerated jointly.

Region counts are memoized on (region, images of its dependency frontier,
the used data vertices that could collide with it), so identical subproblems
across sibling mappings are solved once — SCE's "all succeed or fail the
same way" reuse.

Like the enumeration executor, the counter is **iterative**: each
``count(positions)`` activation of the old recursion is an explicit frame —
a *sequential* frame scanning one op's candidates, or a *product* frame
multiplying independent group counts — on a heap-allocated stack, and time
limits are cooperative (the partial top-level count is returned with the
``timed_out`` flag, never an exception).
"""

from __future__ import annotations

import time

from repro.engine.candidates import CandidateComputer
from repro.engine.physical import PhysicalPlan
from repro.engine.results import MatchOptions, STOP_TIME_LIMIT
from repro.obs import NULL_OBS, NULL_RECORDER, ProgressEstimator, unified_stats
from repro.testing import faults

_TIME_CHECK_INTERVAL = 2048

_SEQ = 0
_PROD = 1


class _Frame:
    """One suspended ``count(positions)`` activation."""

    __slots__ = (
        "kind",
        "acc",
        "awaiting",
        "top_level",
        # sequential frames: scan one op's candidate list
        "pos",
        "u",
        "rest",
        "values",
        "index",
        # product frames: multiply independent group counts
        "groups",
        "group_index",
        "pending_key",
    )

    def __init__(self, kind: int, top_level: bool = False) -> None:
        self.kind = kind
        self.acc = 0 if kind == _SEQ else 1
        self.awaiting = False
        self.top_level = top_level
        self.pending_key = None


class FactorizedCounter:
    """Counts embeddings of a compiled plan with SCE factorization.

    Only sound for unseeded, unrestricted counting — the eligibility gate
    lives in :func:`repro.engine.executor.execute_physical`.
    """

    def __init__(self, physical: PhysicalPlan, options: MatchOptions) -> None:
        plan = physical.logical
        self.physical = physical
        self.plan = plan
        self.options = options
        obs = options.obs or NULL_OBS
        profiler = getattr(obs, "profile", None)
        self._profile = (
            profiler.search if profiler is not None and profiler.enabled else None
        )
        self.computer = CandidateComputer(
            physical,
            use_sce=options.use_sce,
            memo_limit=options.memo_limit,
            profile=self._profile,
        )
        self.ops = physical.ops
        self.position = plan.position
        self.order = plan.order
        self.injective = plan.variant.injective
        self.labels = [
            plan.pattern.vertex_label(v) for v in range(plan.num_vertices)
        ]
        self.assignment = [-1] * plan.num_vertices
        self.used: set[int] = set()
        self.nodes = 0
        self.factorizations = 0
        self.group_memo_hits = 0
        self.backtracks = 0
        self.prunes_injective = 0
        self.timed_out = False
        self.stop_reason: str | None = None
        self.degradation: list[str] = []
        self.gov_stage = 0
        self._group_memo: dict[tuple, int] = {}
        gov = options.governor
        self.governor = gov
        if gov is not None:
            gov.ensure_tracing()
            self._deadline = gov.effective_deadline(options.time_limit)
        else:
            self._deadline = (
                time.perf_counter() + options.time_limit
                if options.time_limit is not None
                else None
            )
        self._heartbeat = obs.heartbeat
        self._recorder = getattr(obs, "recorder", NULL_RECORDER)
        # Same contract as the enumeration Runtime: the estimator exists
        # exactly when an observation is attached, and registers on it so
        # heartbeats/metrics/reports all read the one object.
        if obs.enabled:
            self.progress: ProgressEstimator | None = ProgressEstimator()
            obs.attach_progress(self.progress)
        else:
            self.progress = None
        #: The live frame stack, published by :meth:`count` for the
        #: tick-time progress probe.
        self._stack: list[_Frame] | None = None
        self._interval = 1 if faults.active() else _TIME_CHECK_INTERVAL
        self._ticking = (
            self._deadline is not None
            or self._heartbeat.enabled
            or gov is not None
            or self._recorder.enabled
            or self.progress is not None
            or self._interval == 1
        )
        self._top_level_count = 0

    # ------------------------------------------------------------------
    def count(self) -> int:
        """Total embedding count (partial top-level count on a stop).

        On an early stop (deadline, memory suspension, cancellation) the
        partial count is the last *committed* top-level sequential
        accumulation — it never overcounts, but if the top-level frame is
        a product (``_PROD``) the in-flight product is discarded, so the
        partial count can lag the work done. The same value flows into the
        exception, the :class:`~repro.engine.results.MatchResult`, and the
        run-report (the ``partial_count`` consistency contract)."""
        if self.physical.impossible():
            return 0
        gov = self.governor
        if gov is not None:
            reason = gov.check(self)
            if reason is not None:
                self.stop_reason = reason
                self._note_stop(reason)
                return 0
        n = len(self.ops)
        stack: list[_Frame] = []
        # Publish for the tick-time progress probe.
        self._stack = stack
        retval = self._enter(tuple(range(n)), stack, top_level=True)
        while stack and self.stop_reason is None:
            frame = stack[-1]
            if frame.kind == _SEQ:
                retval = self._step_seq(frame, stack, retval)
            else:
                retval = self._step_prod(frame, stack, retval)
        if self.stop_reason is not None:
            return self._top_level_count
        return retval

    # ------------------------------------------------------------------
    def _enter(
        self, positions: tuple[int, ...], stack: list[_Frame], top_level: bool = False
    ) -> int | None:
        """Start counting ``positions``: resolve trivially (returning the
        value) or push the appropriate frame (returning ``None``)."""
        if not positions:
            return 1
        if self.options.use_sce and len(positions) > 1:
            groups = self._independent_groups(positions)
            if len(groups) > 1:
                self.factorizations += 1
                frame = _Frame(_PROD)
                frame.groups = groups
                frame.group_index = 0
                stack.append(frame)
                return None
        # Sequential step: scan the first position's candidates.
        pos = positions[0]
        self._tick(pos)
        op = self.ops[pos]
        candidates = self.computer.raw(op, self.assignment)
        if self._profile is not None:
            self._profile.visit(pos, candidates.shape[0])
        frame = _Frame(_SEQ, top_level=top_level)
        frame.pos = pos
        frame.u = op.u
        frame.rest = positions[1:]
        frame.values = candidates.tolist()
        frame.index = 0
        stack.append(frame)
        return None

    def _step_seq(
        self, frame: _Frame, stack: list[_Frame], retval: int | None
    ) -> int | None:
        if frame.awaiting:
            # A child finished counting the rest under the current value.
            frame.acc += retval
            v = self.assignment[frame.u]
            if self.injective:
                self.used.discard(v)
            self.assignment[frame.u] = -1
            frame.awaiting = False
            if frame.top_level:
                self._top_level_count = frame.acc
        vals = frame.values
        i = frame.index
        chosen = -1
        while i < len(vals):
            v = vals[i]
            i += 1
            if self.injective and v in self.used:
                self.prunes_injective += 1
                continue
            chosen = v
            break
        frame.index = i
        if chosen < 0:
            if frame.acc == 0:
                self.backtracks += 1
                if self._profile is not None:
                    self._profile.backtrack(frame.pos)
            stack.pop()
            return frame.acc
        self.assignment[frame.u] = chosen
        if self.injective:
            self.used.add(chosen)
        frame.awaiting = True
        return self._enter(frame.rest, stack)

    def _step_prod(
        self, frame: _Frame, stack: list[_Frame], retval: int | None
    ) -> int | None:
        if frame.awaiting:
            self._group_memo[frame.pending_key] = retval
            frame.acc *= retval
            frame.awaiting = False
            if frame.acc == 0:
                stack.pop()
                return 0
        if frame.group_index >= len(frame.groups):
            stack.pop()
            return frame.acc
        group = frame.groups[frame.group_index]
        frame.group_index += 1
        key = self._group_key(group)
        cached = self._group_memo.get(key)
        if cached is not None:
            self.group_memo_hits += 1
            frame.acc *= cached
            if frame.acc == 0:
                stack.pop()
                return 0
            return retval
        frame.pending_key = key
        frame.awaiting = True
        return self._enter(group, stack)

    # ------------------------------------------------------------------
    def _group_key(self, positions: tuple[int, ...]) -> tuple:
        """Memo key of one independent region: its dependency-frontier
        images plus the used data vertices that could collide with it."""
        members = {self.order[p] for p in positions}
        frontier = sorted(
            {
                prior
                for p in positions
                for prior in self.ops[p].priors
                if prior not in members
            }
        )
        if self.injective:
            group_labels = {self.labels[self.order[p]] for p in positions}
            data_labels = self.plan.task_clusters.data_vertex_labels
            relevant_used = frozenset(
                v for v in self.used if data_labels[v] in group_labels
            )
        else:
            relevant_used = frozenset()
        return (
            positions,
            tuple(self.assignment[prior] for prior in frontier),
            relevant_used,
        )

    def _independent_groups(
        self, positions: tuple[int, ...]
    ) -> list[tuple[int, ...]]:
        """Split the suffix into independent groups.

        Components come from ``H`` restricted to the unmatched vertices; for
        injective variants, components sharing any vertex label are merged
        back together (the product would otherwise double-count collisions).
        """
        vertices = [self.order[p] for p in positions]
        components = self.plan.dag.undirected_components(vertices)
        if len(components) <= 1:
            return [positions]
        if self.injective:
            components = self._merge_by_labels(components)
            if len(components) <= 1:
                return [positions]
        return [
            tuple(sorted(self.position[v] for v in component))
            for component in components
        ]

    def _merge_by_labels(self, components: list[list[int]]) -> list[list[int]]:
        parent = list(range(len(components)))

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = parent[x]
            return x

        owner: dict = {}
        for idx, component in enumerate(components):
            for v in component:
                label = self.labels[v]
                if label in owner:
                    parent[find(idx)] = find(owner[label])
                else:
                    owner[label] = idx
        merged: dict[int, list[int]] = {}
        for idx, component in enumerate(components):
            merged.setdefault(find(idx), []).extend(component)
        return [sorted(group) for group in merged.values()]

    # ------------------------------------------------------------------
    def _fraction(self) -> float:
        """Explored fraction of the candidate space, read off the live
        frame stack — the counting twin of
        :func:`repro.obs.progress.search_state_fraction`. Only the
        top-level chain of sequential frames contributes (a product frame
        ends the chain: its groups have no defined scan order), which
        still yields a monotone, conservative estimate."""
        stack = self._stack
        if not stack:
            return 0.0
        fraction = 0.0
        scale = 1.0
        for frame in stack:
            if frame.kind != _SEQ:
                break
            total = len(frame.values)
            if total == 0:
                break
            fraction += scale * max(0, frame.index - 1) / total
            scale /= total
            if scale < 1e-18:
                break
        return min(1.0, fraction)

    def _note_stop(self, reason: str, depth: int = 0) -> None:
        """Leave the stop event in the flight-recorder ring (no-op when
        the recorder is off)."""
        if self._recorder.enabled:
            self._recorder.record(
                "stop",
                reason=reason,
                nodes=self.nodes,
                emitted=self._top_level_count,
                depth=depth,
            )

    def _tick(self, depth: int = 0) -> None:
        self.nodes += 1
        if self._ticking and self.nodes % self._interval == 0:
            recorder = self._recorder
            if faults.ACTIVE is not None:
                # Record before firing so a raising action still leaves
                # its mark in the ring buffer.
                if recorder.enabled:
                    recorder.record(
                        "fault", site="engine.tick", depth=depth,
                        phase="count", nodes=self.nodes,
                    )
                faults.fire(
                    "engine.tick", depth=depth, phase="count", nodes=self.nodes
                )
            progress = self.progress
            if progress is not None:
                progress.update(self._fraction())
            if self._heartbeat.enabled:
                self._heartbeat.beat(
                    self.nodes, self._top_level_count, depth, phase="count",
                    progress=progress,
                )
            if recorder.enabled:
                recorder.record(
                    "tick", nodes=self.nodes, emitted=self._top_level_count,
                    depth=depth, phase="count",
                )
            gov = self.governor
            if gov is not None:
                reason = gov.check(self)
                if reason is not None:
                    if reason == STOP_TIME_LIMIT:
                        # A governor-imposed deadline (e.g. tightened
                        # mid-run) keeps the legacy flag in step.
                        self.timed_out = True
                    self.stop_reason = reason
                    self._note_stop(reason, depth)
                    return
            if (
                self._deadline is not None
                and time.perf_counter() > self._deadline
            ):
                self.timed_out = True
                self.stop_reason = STOP_TIME_LIMIT
                self._note_stop(STOP_TIME_LIMIT, depth)


def count_physical(
    physical: PhysicalPlan, options: MatchOptions
) -> tuple[int, dict, str | None, list[str]]:
    """Count embeddings of a compiled plan; returns
    ``(count, stats, stop_reason, degradation)``.

    ``stats`` carries the full unified key set
    (:data:`repro.obs.counters.STAT_KEYS`), matching the enumeration path
    key-for-key; ``prunes_restriction`` is always 0 here because
    restrictions force the enumeration path. On an early stop the count is
    the partial top-level count (cooperative, no exception) and
    ``stop_reason`` names the cause; ``degradation`` lists any
    governor-ladder events.
    """
    counter = FactorizedCounter(physical, options)
    total = counter.count()
    stats = unified_stats(
        nodes=counter.nodes,
        candidate_stats=counter.computer.stats,
        backtracks=counter.backtracks,
        prunes_injective=counter.prunes_injective,
        factorizations=counter.factorizations,
        group_memo_hits=counter.group_memo_hits,
    )
    return total, stats, counter.stop_reason, list(counter.degradation)
