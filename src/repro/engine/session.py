"""MatchSession: one store, one compiled-plan cache, every front-end.

The session owns the read→optimize→compile pipeline and a small LRU cache
of its output, so that enumeration (:class:`repro.core.CSCE`), factorized
counting, continuous/delta matching (:mod:`repro.core.continuous`), and the
symmetry-breaking baseline all execute the same cached
:class:`~repro.engine.physical.PhysicalPlan` instead of replanning per call.

Cache keys are ``(pattern fingerprint, variant, planner, restrictions,
store version)``. The store version counter bumps on every incremental
update (:meth:`~repro.ccsr.store.CCSRStore.insert_edge` and friends rebuild
cluster objects, so compiled plans bound to the old clusters must not be
reused); stale entries simply stop matching and age out of the LRU.
``use_sce`` and seeds are deliberately *not* part of the key — memoization
is runtime state, and seeds rebind via
:meth:`~repro.engine.physical.PhysicalPlan.with_seed` without recompiling.

Cache hits return the original plan object, whose ``read_seconds`` /
``plan_seconds`` describe the priced-once planning work; only
``elapsed`` varies per run.
"""

from __future__ import annotations

import logging
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

from repro.ccsr.store import CCSRStore
from repro.core.dag import build_dag
from repro.core.descendants import compute_descendant_sizes
from repro.core.gcf import gcf_order, rapidmatch_order
from repro.core.ldsf import ldsf_order
from repro.core.plan import Plan, assemble_plan
from repro.core.variants import Variant
from repro.engine.physical import (
    PhysicalPlan,
    compile_plan,
    pattern_fingerprint,
)
from repro.errors import PlanError
from repro.graph.model import Graph
from repro.obs import NULL_OBS

logger = logging.getLogger(__name__)

PLANNERS = ("csce", "ri_cluster", "ri", "rm", "cost")


def plan_query(
    store: CCSRStore,
    pattern: Graph,
    variant: Variant | str = Variant.EDGE_INDUCED,
    planner: str = "csce",
    obs: Any = None,
) -> Plan:
    """Read clusters and optimize a matching plan (Sections IV–VI).

    This is the logical-planning pipeline behind ``CSCE.build_plan``:
    Algorithm 1 read, GCF ordering (with cluster tie-breaks for the
    cluster-aware planners), dependency-DAG construction, and LDSF
    fine-tuning for the full ``csce`` configuration.
    """
    if planner not in PLANNERS:
        raise PlanError(f"unknown planner {planner!r}; choose from {PLANNERS}")
    variant = Variant.parse(variant)
    obs = obs or NULL_OBS
    tracer = obs.tracer
    start = time.perf_counter()
    task = store.read(pattern, variant, obs=obs)

    rationale: list | None = [] if tracer.enabled else None
    with tracer.span(
        "plan", planner=planner, variant=variant.value
    ) as plan_span:
        if planner == "rm":
            order = rapidmatch_order(pattern, task)
        elif planner == "cost":
            from repro.core.cost import cost_based_order

            order = cost_based_order(pattern, task)
        else:
            with tracer.span("plan.gcf"):
                order = gcf_order(
                    pattern,
                    task,
                    use_cluster_tiebreak=planner in ("csce", "ri_cluster"),
                    rationale=rationale,
                )
        dag = build_dag(pattern, order, variant, task)
        descendant_sizes = compute_descendant_sizes(dag)
        if planner == "csce":
            with tracer.span("plan.ldsf"):
                order = ldsf_order(
                    dag,
                    pattern,
                    task,
                    label_frequency=store.label_frequency,
                    descendant_sizes=descendant_sizes,
                )
            dag = build_dag(pattern, order, variant, task)
        plan = assemble_plan(
            store,
            task,
            pattern,
            order,
            dag,
            variant,
            planner_name=planner,
            descendant_sizes=descendant_sizes,
            obs=obs,
        )
        plan_span.set("order", list(order))
        if rationale:
            plan_span.set("rationale", rationale)
    # Clamped at zero: perf_counter deltas minus read_seconds can come out
    # a hair negative when the clocks' resolutions disagree.
    plan.plan_seconds = max(
        0.0, time.perf_counter() - start - task.read_seconds
    )
    if rationale:
        plan.order_rationale = rationale
    logger.debug(
        "planned %s/%s: order=%s in %.4fs",
        planner,
        variant.value,
        plan.order,
        plan.plan_seconds,
    )
    return plan


@dataclass(frozen=True)
class CompiledQuery:
    """A plan-cache entry: the logical plan and its compiled form.

    ``cached`` tells whether this call was served from the session cache
    (True) or planned and compiled fresh (False).
    """

    plan: Plan
    physical: PhysicalPlan
    cached: bool = False


class MatchSession:
    """A store plus an LRU cache of compiled plans, shared across runs.

    Build one per data graph (or adopt an existing :class:`CCSRStore`) and
    route every query through :meth:`compile`; repeated patterns skip the
    read→optimize→compile pipeline entirely. The :class:`repro.core.CSCE`
    facade owns one internally; baselines and the bench harness can share
    it to amortize planning across engines.
    """

    def __init__(
        self,
        graph: Graph | CCSRStore,
        obs: Any = None,
        cache_size: int = 64,
        verify: bool = False,
    ) -> None:
        if isinstance(graph, CCSRStore):
            self.store = graph
        else:
            self.store = CCSRStore(graph)
        self.obs = obs
        self.cache_size = cache_size
        self.verify = verify
        """Debug mode: run the ahead-of-execution verifier
        (:func:`repro.engine.verify.verify_physical`) on every freshly
        compiled plan, raising
        :class:`~repro.errors.PlanVerificationError` before the executor
        ever sees an unsound plan. Cache hits were verified when first
        compiled and are not re-checked."""
        self._cache: OrderedDict[tuple, CompiledQuery] = OrderedDict()
        self.cache_hits = 0
        self.cache_misses = 0

    # ------------------------------------------------------------------
    def cache_key(
        self,
        pattern: Graph,
        variant: Variant,
        planner: str,
        restrictions: tuple[tuple[int, int], ...] | None,
    ) -> tuple:
        return (
            pattern_fingerprint(pattern),
            variant.value,
            planner,
            tuple(restrictions) if restrictions else (),
            self.store.version,
        )

    def compile(
        self,
        pattern: Graph,
        variant: Variant | str = Variant.EDGE_INDUCED,
        planner: str = "csce",
        restrictions: tuple[tuple[int, int], ...] | None = None,
        obs: Any = None,
    ) -> CompiledQuery:
        """The cached read→optimize→compile pipeline.

        Returns a :class:`CompiledQuery`; on a hit no cluster is read and
        no span is emitted (bump ``plan_cache.hits`` instead), so traced
        sessions see read/plan spans only for fresh plans.
        """
        variant = Variant.parse(variant)
        if planner not in PLANNERS:
            raise PlanError(
                f"unknown planner {planner!r}; choose from {PLANNERS}"
            )
        obs = obs or self.obs or NULL_OBS
        key = self.cache_key(pattern, variant, planner, restrictions)
        entry = self._cache.get(key)
        if entry is not None:
            self._cache.move_to_end(key)
            self.cache_hits += 1
            if obs.enabled:
                obs.counters.inc("plan_cache.hits")
            return CompiledQuery(plan=entry.plan, physical=entry.physical, cached=True)
        self.cache_misses += 1
        if obs.enabled:
            obs.counters.inc("plan_cache.misses")
        plan = plan_query(self.store, pattern, variant, planner=planner, obs=obs)
        physical = compile_plan(
            plan, restrictions=tuple(restrictions) if restrictions else None
        )
        if self.verify:
            from repro.engine.verify import verify_physical

            verify_physical(physical, self.store).raise_for_errors()
        entry = CompiledQuery(plan=plan, physical=physical, cached=False)
        self._cache[key] = entry
        while len(self._cache) > self.cache_size:
            self._cache.popitem(last=False)
        return entry

    def clear_cache(self) -> None:
        self._cache.clear()

    @property
    def cache_info(self) -> dict:
        """Hit/miss/size counters, for tests and reports."""
        return {
            "hits": self.cache_hits,
            "misses": self.cache_misses,
            "size": len(self._cache),
            "capacity": self.cache_size,
        }

    def __repr__(self) -> str:
        return (
            f"<MatchSession over {self.store!r}"
            f" cache={len(self._cache)}/{self.cache_size}>"
        )
