"""Multi-process parallel matching: a pool of workers over portable units.

``MatchOptions(workers=N)`` routes a counting run here instead of the
single-process executor. The search is decomposed into portable
:mod:`~repro.engine.workunit` payloads (root-candidate range shards,
refined by work-stealing splits), executed by ``N`` forked worker
processes, and merged **exactly**: summing the per-unit emitted counts
reproduces the sequential count because candidate partitioning partitions
the search subtree (see :mod:`repro.engine.workunit`).

Transactional message protocol (exactness under worker death)
-------------------------------------------------------------
Each worker owns a private task queue (one dispatched unit at a time) and
reports on a shared result queue. Every message atomically transfers
responsibility, and a SIGKILL can only truncate the *tail* of a worker's
message stream, so the parent always holds a consistent prefix:

* ``split`` carries the truncated *kept* payload, the *donated* payload,
  and the emitted/stats delta since the worker's last bank. The parent
  merges the delta immediately ("banking"), records the kept payload as
  the unit's new identity, and enqueues the donated half as a new unit.
  If the worker dies and the split message was lost, the parent
  re-enqueues the unit's previous payload — which still covers both
  halves, and the lost delta was never merged. Either way: exact.
* ``done`` carries the delta since the last bank (a typed
  :class:`~repro.obs.merge.WorkerSnapshot`), the unit's stop reason, and
  a residual payload when the unit stopped early. A unit whose ``done``
  was lost is simply re-run in full — nothing of it was merged.

Budgets derive from the parent's: the deadline is shipped as an absolute
``time.perf_counter`` value (valid across ``fork`` — CLOCK_MONOTONIC is
system-wide), the memory ceiling is divided evenly, and each dispatch
caps the unit at the pool cap minus the confirmed total. Every worker
runs its own :class:`~repro.engine.governor.ResourceGovernor` wired to a
shared cancel event, so a parent-initiated stop (SIGINT, inspector
``cancel``, budget breach) drains the pool cooperatively, each worker
returning a resumable residual. The merged ``stop_reason`` is
deterministic: the parent's initiating reason wins; worker ``cancelled``
echoes of that initiation stay per-shard only.

Observability: worker heartbeats feed the parent's progress/ETA and the
live inspector (per-worker rows via :class:`PoolMonitor`); the flight
recorder logs ``unit``/``steal``/``worker`` events; the final
:class:`~repro.engine.results.MatchResult` carries the
``merge_run_reports`` shards block and exact merged counters.

Self-healing supervision (see ``docs/robustness.md``)
-----------------------------------------------------
Three escalation legs keep a sick pool from wedging or aborting:

* **Stall watchdog** — the parent stamps ``last_seen`` on every worker
  message; a *busy* worker silent past ``MatchOptions.stall_timeout`` is
  SIGKILLed (``worker_stall`` event, ``pool.stall_kills`` counter) and
  its unit re-runs through the ordinary death-recovery path, spending
  the respawn budget. A dead-but-silent worker can no longer stall
  ``run()`` forever.
* **Poison-unit quarantine** — a unit that exhausts
  ``MatchOptions.max_unit_attempts`` no longer raises
  :class:`~repro.errors.PoolError`; it is serialized to
  ``quarantine-NNNN.json`` in the pool checkpoint directory (standard
  checkpoint wire format) and the match completes with
  ``stop_reason="quarantined"`` and ``MatchResult.quarantined_units``
  set. ``csce retry-quarantined`` replays the residue single-process
  and folds the counts exactly.
* **Retrying cluster reads** — transient
  :class:`~repro.errors.ClusterReadError` during the read phase is
  absorbed by :class:`~repro.engine.governor.RetryPolicy` before it can
  ever fail a unit (wired inside :meth:`repro.ccsr.store.CCSRStore.read`).
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import queue as queue_mod
import signal
import time

from collections import deque
from typing import TYPE_CHECKING, Callable

from repro.engine.executor import Runtime, SearchState, count_capped
from repro.engine.governor import Budget, ResourceGovernor
from repro.engine.physical import PhysicalPlan
from repro.engine.results import (
    STOP_CANCELLED,
    STOP_EMBEDDING_LIMIT,
    STOP_MEMORY_LIMIT,
    STOP_QUARANTINED,
    STOP_TIME_LIMIT,
    MatchOptions,
    MatchResult,
)
from repro.engine.workunit import make_root_units, split_search_state
from repro.errors import PoolError
from repro.testing import faults
from repro.obs import (
    NULL_OBS,
    RUN_REPORT_VERSION,
    Heartbeat,
    Observation,
    ProgressEstimator,
    WorkerSnapshot,
    merge_counters,
    merge_run_reports,
    search_state_fraction,
)

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.engine.checkpoint import PoolCheckpointDir

logger = logging.getLogger(__name__)

#: Every message kind a worker may put on the shared result queue, in
#: protocol order. Closed registry — the ``message_protocol`` reprolint
#: pass checks that every send site uses a registered kind and that the
#: parent dispatch (:meth:`_PoolDriver._handle`) handles all of them
#: exhaustively, so an unroutable message fails lint instead of silently
#: dropping a worker's progress delta.
MESSAGE_KINDS: tuple[str, ...] = (
    "ready",
    "started",
    "beat",
    "split",
    "done",
    "failed",
    "bye",
)

#: Initial root-range shards per worker: finer than 1:1 so the tail of a
#: skewed workload rebalances through the queue before stealing kicks in.
DEFAULT_UNITS_PER_WORKER = 4

#: A unit whose executing worker died this many times is declared fatal.
MAX_UNIT_ATTEMPTS = 3

#: Worker heartbeat interval (seconds) — the steal-check/beat cadence.
_WORKER_HEARTBEAT = 0.1

#: Parent drive-loop result-queue poll timeout (seconds).
_POLL_INTERVAL = 0.05

#: Seconds to wait for workers to drain after a stop before terminating.
_DRAIN_GRACE = 10.0

#: Replacement-worker budget: the pool respawns at most ``3 * workers``
#: replacements before giving up (a crash loop, not transient deaths).
_RESPAWN_FACTOR = 3

#: Merged-stop severity, least to most severe. When no parent-initiated
#: reason exists, the most severe worker-reported reason wins — a
#: deterministic function of the *set* of reasons, not their arrival order.
_STOP_SEVERITY = (
    STOP_EMBEDDING_LIMIT,
    STOP_TIME_LIMIT,
    STOP_MEMORY_LIMIT,
    STOP_CANCELLED,
)


def _silent(line: str) -> None:
    """No-op heartbeat sink: worker heartbeats exist for their listeners
    (beat messages + steal checks), not for log lines."""


def _stats_delta(now: dict, banked: dict) -> dict:
    """Per-key difference of two cumulative stats snapshots."""
    return {key: value - banked.get(key, 0) for key, value in now.items()}


class _SharedCancelToken:
    """Duck-types :class:`~repro.engine.governor.CancelToken` over a
    ``multiprocessing.Event`` so per-worker governors observe the parent's
    pool-wide cancellation."""

    __slots__ = ("_event", "reason")

    def __init__(self, event) -> None:
        self._event = event
        self.reason: str | None = None

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def trip(self, reason: str | None = None) -> None:
        self.reason = reason
        self._event.set()


class _NullComputer:
    """Stand-in candidate computer for the parent's governor probe: the
    memory ladder's evict/disable hooks have nothing to act on in the
    parent process (the memos live in the workers)."""

    def evict(self) -> int:
        return 0

    def disable_memo(self) -> None:
        return None


class _ParentProbe:
    """The minimal runtime surface :meth:`ResourceGovernor.check` needs,
    so the parent drive loop honors cancel tokens, inspector-tightened
    budgets, and the memory ladder between queue drains."""

    def __init__(self) -> None:
        self.computer = _NullComputer()
        self.degradation: list[str] = []
        self.gov_stage = 0
        self.emitted = 0
        self.truncated = False
        self.timed_out = False


class _PoolRuntime:
    """Duck-typed ``stream.runtime`` for the live inspector: the parent
    drive loop refreshes these fields each iteration, and the inspector's
    heartbeat listener samples them exactly like a sequential run's
    :class:`~repro.engine.executor.Runtime`."""

    def __init__(self) -> None:
        self.emitted = 0
        self.nodes = 0
        self.stop_reason: str | None = None
        self.degradation: list[str] = []
        self.gov_stage = 0
        self.progress: ProgressEstimator | None = None
        self._stats: dict = {}

    def stats(self) -> dict:
        return dict(self._stats)


class PoolMonitor:
    """Duck-typed "stream" the :class:`~repro.obs.inspect.MatchInspector`
    can attach to while a pool run is live: ``runtime`` mirrors the merged
    pool state, ``worker_rows()`` feeds the per-worker table in
    ``csce top``. ``checkpoint_sink`` stays ``None`` — the inspector's
    ``checkpoint-now`` answers "no checkpoint target" (pool checkpoints
    are directory-scoped and written at stop time)."""

    def __init__(self) -> None:
        self.runtime = _PoolRuntime()
        self.checkpoint_sink = None
        self._rows: list[dict] = []
        self._health: dict = {}

    def worker_rows(self) -> list[dict]:
        return [dict(row) for row in self._rows]

    def health(self) -> dict:
        """Supervision snapshot for the inspector's ``health`` command:
        ``{"stall_timeout", "stall_kills", "quarantined_units",
        "respawns_left", "max_beat_age"}`` — refreshed by the parent
        drive loop each iteration."""
        return dict(self._health)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
def _run_unit(
    worker_id: str,
    physical: PhysicalPlan,
    parent_options: MatchOptions,
    unit_id: int,
    payload: dict,
    cap: int | None,
    results,
    cancel_event,
    need_work,
    deadline: float | None,
    memory_limit_mb: float | None,
) -> None:
    """Execute one work unit inside a worker process and report the
    delta-banked outcome (see the module docstring's protocol)."""
    # Fired before any runtime state exists, so a unit-targeted poison
    # action surfaces as a clean "failed" message even for units shorter
    # than one heartbeat interval.
    faults.fire("pool.worker_beat", worker=worker_id, unit=unit_id)
    state = SearchState.from_payload(payload)
    heartbeat = Heartbeat(interval=_WORKER_HEARTBEAT, emit=_silent)
    obs = Observation(trace=False, record=False, heartbeat=heartbeat)
    remaining = None
    if deadline is not None:
        remaining = max(0.001, deadline - time.perf_counter())
    governor = ResourceGovernor(
        Budget(
            time_limit=remaining,
            max_embeddings=cap,
            memory_limit_mb=memory_limit_mb,
        ),
        cancel=_SharedCancelToken(cancel_event),
        obs=obs,
    )
    options = MatchOptions(
        count_only=True,
        use_sce=parent_options.use_sce,
        restrictions=parent_options.restrictions,
        seed=parent_options.seed,
        memo_limit=parent_options.memo_limit,
        obs=obs,
        governor=governor,
    )
    runtime = Runtime(physical, options)
    banked = {"emitted": 0, "stats": {}}
    op_vertices = tuple(op.u for op in physical.ops)
    injective = physical.injective

    def on_beat() -> None:
        # Runs on the executor thread at a tick boundary — the only
        # point where splitting the live frame stack is sound.
        faults.fire("pool.worker_beat", worker=worker_id, unit=unit_id)
        live = runtime.stats()
        results.put(
            (
                "beat",
                worker_id,
                unit_id,
                live.get("nodes", 0) - banked["stats"].get("nodes", 0),
                runtime.emitted - banked["emitted"],
                search_state_fraction(state.values, state.index),
            )
        )
        if not need_work.is_set():
            return
        donated = split_search_state(state, injective, op_vertices)
        if donated is None:
            return
        need_work.clear()
        d_emitted = runtime.emitted - banked["emitted"]
        d_stats = _stats_delta(live, banked["stats"])
        banked["emitted"] = runtime.emitted
        banked["stats"] = live
        results.put(
            (
                "split",
                worker_id,
                unit_id,
                state.to_payload(),
                donated,
                d_emitted,
                d_stats,
            )
        )

    heartbeat.add_listener(on_beat)
    started = time.perf_counter()
    try:
        count_capped(physical, runtime, state)
    finally:
        runtime.release()
    final = runtime.stats()
    residual = state.to_payload() if runtime.stop_reason is not None else None
    snapshot = WorkerSnapshot(
        worker=worker_id, stats=_stats_delta(final, banked["stats"])
    )
    results.put(
        (
            "done",
            worker_id,
            unit_id,
            snapshot.to_dict(),
            runtime.emitted - banked["emitted"],
            runtime.stop_reason,
            list(runtime.degradation),
            time.perf_counter() - started,
            residual,
        )
    )


def _worker_main(
    worker_id: str,
    physical: PhysicalPlan,
    parent_options: MatchOptions,
    tasks,
    results,
    cancel_event,
    need_work,
    deadline: float | None,
    memory_limit_mb: float | None,
) -> None:
    """Worker process entry point: loop over the private task queue until
    the sentinel (or pool-wide cancellation while idle)."""
    # The parent owns SIGINT handling (drain + merged partial result);
    # a terminal ^C must not kill children mid-unit.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    os.environ["REPRO_WORKER"] = worker_id
    results.put(("ready", worker_id, os.getpid()))
    while True:
        try:
            item = tasks.get(timeout=0.2)
        except queue_mod.Empty:
            if cancel_event.is_set():
                break
            continue
        if item is None:
            break
        unit_id, payload, cap = item
        results.put(("started", worker_id, unit_id))
        try:
            _run_unit(
                worker_id,
                physical,
                parent_options,
                unit_id,
                payload,
                cap,
                results,
                cancel_event,
                need_work,
                deadline,
                memory_limit_mb,
            )
        except Exception as exc:
            # A unit-level error (e.g. an injected ClusterReadError) is
            # reported, not fatal to the worker: the parent re-enqueues
            # the unit (nothing was merged) up to MAX_UNIT_ATTEMPTS.
            results.put(("failed", worker_id, unit_id, repr(exc)))
    results.put(("bye", worker_id))


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------
class _PoolDriver:
    """The parent drive loop: dispatch, steal arbitration, delta banking,
    death recovery, budget enforcement, and exact merging."""

    def __init__(
        self,
        ctx,
        physical: PhysicalPlan,
        options: MatchOptions,
        units: list[dict],
        prior_emitted: int = 0,
        prior_counters: dict | None = None,
        checkpoint: "PoolCheckpointDir | None" = None,
        monitor: PoolMonitor | None = None,
        on_event: Callable[[str, tuple], None] | None = None,
    ) -> None:
        self.ctx = ctx
        self.physical = physical
        self.options = options
        self.obs = options.obs or NULL_OBS
        self.checkpoint = checkpoint
        self.monitor = monitor
        self.on_event = on_event
        self.prior_emitted = prior_emitted
        self.prior_counters = dict(prior_counters or {})
        gov = options.governor
        self.governor = gov
        if gov is not None:
            gov.ensure_tracing()
            self.deadline = gov.effective_deadline(options.time_limit)
            self.cap = gov.effective_cap(options.max_embeddings)
            mem = gov.budget.memory_limit_mb
        else:
            self.deadline = (
                time.perf_counter() + options.time_limit
                if options.time_limit is not None
                else None
            )
            self.cap = options.max_embeddings
            mem = None
        self.worker_memory_mb = (
            mem / options.workers if mem is not None else None
        )
        self.probe = _ParentProbe()
        # Unit table: id -> {payload, attempts, status, worker}. Status
        # lifecycle: pending -> queued -> started -> done | stopped; a
        # death or failure resets to pending (attempts capped).
        self.units: dict[int, dict] = {}
        self.pending: deque[int] = deque()
        for payload in units:
            self._add_unit(payload)
        # Worker table: id -> {proc, queue, state, unit, pid, live_*}.
        self.workers: dict[str, dict] = {}
        self.worker_order: list[str] = []
        self.per_worker: dict[str, dict] = {}
        self.spawned = 0
        self.respawns_left = (
            options.max_respawns
            if options.max_respawns is not None
            else _RESPAWN_FACTOR * options.workers
        )
        self.max_unit_attempts = max(
            1, int(options.max_unit_attempts or MAX_UNIT_ATTEMPTS)
        )
        self.stall_timeout = options.stall_timeout
        self.stall_kills = 0
        self.quarantined: list[int] = []
        self.results = ctx.Queue()
        self.cancel_event = ctx.Event()
        self.need_work = ctx.Event()
        self.confirmed = prior_emitted
        self.initiated: str | None = None
        self.worker_stops: set[str] = set()
        self.sentinels_sent = False
        self.stop_started: float | None = None
        if self.obs.enabled:
            self.estimator: ProgressEstimator | None = ProgressEstimator()
            self.obs.attach_progress(self.estimator)
        else:
            self.estimator = None
        recorder = getattr(self.obs, "recorder", None)
        self.recorder = recorder if recorder is not None and recorder.enabled else None

    # -- unit/worker bookkeeping -------------------------------------
    def _add_unit(self, payload: dict) -> int:
        uid = len(self.units)
        self.units[uid] = {
            "payload": payload,
            "attempts": 0,
            "status": "pending",
            "worker": None,
        }
        self.pending.append(uid)
        return uid

    def _agg(self, wid: str) -> dict:
        agg = self.per_worker.get(wid)
        if agg is None:
            agg = self.per_worker[wid] = {
                "emitted": 0,
                "stats": {},
                "units": 0,
                "execute_seconds": 0.0,
                "stop_reasons": [],
                "degradation": [],
            }
        return agg

    def _spawn_worker(self) -> None:
        wid = f"w{self.spawned}"
        self.spawned += 1
        tasks = self.ctx.Queue()
        proc = self.ctx.Process(
            target=_worker_main,
            args=(
                wid,
                self.physical,
                self.options,
                tasks,
                self.results,
                self.cancel_event,
                self.need_work,
                self.deadline,
                self.worker_memory_mb,
            ),
            daemon=True,
        )
        proc.start()
        self.workers[wid] = {
            "proc": proc,
            "queue": tasks,
            "state": "idle",
            "unit": None,
            "pid": proc.pid,
            "live_nodes": 0,
            "live_emitted": 0,
            "beats": 0,
            "last_seen": time.perf_counter(),
        }
        self.worker_order.append(wid)
        self._agg(wid)
        self._record("worker", id=wid, pid=proc.pid, event="spawn")

    def _record(self, name: str, **fields) -> None:
        if self.recorder is not None:
            self.recorder.record(name, **fields)

    def _emit(self, kind: str, payload: tuple) -> None:
        if self.on_event is not None:
            self.on_event(kind, payload)

    def _bank(self, wid: str, d_emitted: int, d_stats: dict) -> None:
        """Merge a worker's delta into the confirmed totals — exactly
        once per message, the exactness invariant."""
        agg = self._agg(wid)
        agg["emitted"] += int(d_emitted)
        agg["stats"] = merge_counters(agg["stats"], d_stats)
        self.confirmed += int(d_emitted)

    def _initiate(self, reason: str) -> None:
        """First fatal wins: record the pool's stop reason, trip the
        shared cancel event, and begin the cooperative drain."""
        if self.initiated is not None:
            return
        self.initiated = reason
        self.cancel_event.set()
        self.stop_started = time.perf_counter()
        self._record("stop", reason=reason, nodes=self._total_nodes(),
                     emitted=self._live_emitted())
        logger.info("pool stopping: %s (confirmed %d embeddings)",
                    reason, self.confirmed)

    def _live_emitted(self) -> int:
        return self.confirmed + sum(
            w["live_emitted"] for w in self.workers.values()
            if w["state"] == "busy"
        )

    def _total_nodes(self) -> int:
        banked = sum(
            int(agg["stats"].get("nodes", 0))
            for agg in self.per_worker.values()
        )
        live = sum(
            w["live_nodes"] for w in self.workers.values()
            if w["state"] == "busy"
        )
        return banked + live + int(self.prior_counters.get("nodes", 0))

    # -- message handling --------------------------------------------
    def _handle(self, msg: tuple) -> None:
        kind = msg[0]
        # Every message kind carries the worker id at index 1; any
        # message at all is proof of life for the stall watchdog.
        sender = self.workers.get(msg[1]) if len(msg) > 1 else None
        if sender is not None:
            sender["last_seen"] = time.perf_counter()
        if kind == "ready":
            _, wid, pid = msg
            worker = self.workers.get(wid)
            if worker is not None:
                worker["pid"] = pid
        elif kind == "started":
            _, wid, uid = msg
            unit = self.units.get(uid)
            if unit is not None and unit["status"] == "queued":
                unit["status"] = "started"
        elif kind == "beat":
            _, wid, uid, d_nodes, d_emitted, fraction = msg
            worker = self.workers.get(wid)
            if worker is not None and worker["unit"] == uid:
                worker["live_nodes"] = int(d_nodes)
                worker["live_emitted"] = int(d_emitted)
                worker["fraction"] = float(fraction)
                worker["beats"] += 1
        elif kind == "split":
            _, wid, uid, kept, donated, d_emitted, d_stats = msg
            self._bank(wid, d_emitted, d_stats)
            unit = self.units.get(uid)
            if unit is not None:
                unit["payload"] = kept
            worker = self.workers.get(wid)
            if worker is not None and worker["unit"] == uid:
                # Banked live progress restarts from the new bank point.
                worker["live_nodes"] = 0
                worker["live_emitted"] = 0
            new_uid = self._add_unit(donated)
            self._record("steal", victim=wid, unit=uid, new_unit=new_uid)
        elif kind == "done":
            (_, wid, uid, snapshot, d_emitted, stop_reason, degradation,
             elapsed, residual) = msg
            snap = WorkerSnapshot.from_dict(snapshot)
            self._bank(wid, d_emitted, snap.stats)
            agg = self._agg(wid)
            agg["units"] += 1
            agg["execute_seconds"] += float(elapsed)
            if len(degradation) > len(agg["degradation"]):
                agg["degradation"] = list(degradation)
            self._worker_idle(wid)
            unit = self.units.get(uid)
            if unit is None:
                return
            if stop_reason is None:
                unit["status"] = "done"
            else:
                unit["status"] = "stopped"
                if residual is not None:
                    unit["payload"] = residual
                agg["stop_reasons"].append(stop_reason)
                if self.initiated is None:
                    # A worker-side budget stop is pool-fatal: first
                    # fatal wins. Cancelled echoes of our own initiation
                    # never reach this branch (initiated is set first).
                    self._initiate(stop_reason)
                else:
                    self.worker_stops.add(stop_reason)
            self._record("unit", id=uid, worker=wid, event="done",
                         stop=stop_reason)
        elif kind == "failed":
            _, wid, uid, err = msg
            self._worker_idle(wid)
            self._requeue(uid, err=err)
        elif kind == "bye":
            _, wid = msg
            worker = self.workers.get(wid)
            if worker is not None and worker["state"] != "dead":
                worker["state"] = "exited"
        self._emit(kind, msg)

    def _worker_idle(self, wid: str) -> None:
        worker = self.workers.get(wid)
        if worker is None:
            return
        worker["unit"] = None
        worker["live_nodes"] = 0
        worker["live_emitted"] = 0
        worker["fraction"] = 0.0
        if worker["state"] == "busy":
            worker["state"] = "idle"

    def _requeue(self, uid: int, err: str | None = None,
                 count_attempt: bool = True) -> None:
        """Put a unit back on the pending queue after a failure/death.
        Nothing of it was merged since its last bank, so re-running its
        current payload is exact. At the attempt cap the unit is
        *quarantined* — never a raise — so one poison unit cannot abort
        an otherwise healthy match."""
        unit = self.units.get(uid)
        if unit is None or unit["status"] in ("done", "stopped", "quarantined"):
            return
        if count_attempt:
            unit["attempts"] += 1
        if unit["attempts"] >= self.max_unit_attempts:
            self._quarantine(uid, err)
            return
        unit["status"] = "pending"
        unit["worker"] = None
        self.pending.appendleft(uid)
        self._record("unit", id=uid, worker=None, event="requeue")

    def _quarantine(self, uid: int, err: str | None) -> None:
        """Declare a unit poisonous: terminal ``quarantined`` status,
        its current payload serialized (checkpoint wire format) to
        ``quarantine-NNNN.json`` when a checkpoint directory is
        configured. Exactness holds — nothing of the unit was merged
        since its last bank, so the quarantine file's payload covers
        exactly the missing counts, recoverable with
        ``csce retry-quarantined``."""
        unit = self.units[uid]
        unit["status"] = "quarantined"
        unit["worker"] = None
        self.quarantined.append(uid)
        path = None
        if self.checkpoint is not None:
            path = self.checkpoint.write_quarantine(
                self.options, unit["payload"], uid, unit["attempts"], err
            )
        if self.obs.enabled:
            self.obs.counters.inc("pool.quarantined_units")
        self._record(
            "quarantine", unit=uid, attempts=unit["attempts"], path=path
        )
        logger.warning(
            "pool quarantined work unit %d after %d attempt(s)%s%s",
            uid,
            unit["attempts"],
            f" (last error: {err})" if err else "",
            f"; residue at {path}" if path else " (no checkpoint dir:"
            " residue not recoverable)",
        )

    # -- stall watchdog / death recovery ------------------------------
    def _check_stalls(self) -> None:
        """Escalate on busy workers silent past ``stall_timeout``: record
        the ``worker_stall`` event and SIGKILL the process. Recovery is
        the ordinary death path (:meth:`_check_deaths` re-dispatches the
        unit and spends the respawn budget) — the watchdog only turns a
        silent wedge into a detectable death."""
        if self.stall_timeout is None:
            return
        now = time.perf_counter()
        for wid, worker in self.workers.items():
            if worker["state"] != "busy" or not worker["proc"].is_alive():
                continue
            age = now - worker["last_seen"]
            if age <= self.stall_timeout:
                continue
            self.stall_kills += 1
            if self.obs.enabled:
                self.obs.counters.inc("pool.stall_kills")
            self._record(
                "worker_stall", worker=wid, pid=worker["pid"],
                unit=worker["unit"], age=round(age, 3),
            )
            logger.warning(
                "pool worker %s (pid %s) stalled for %.1fs"
                " (stall_timeout=%.1fs); killing it",
                wid, worker["pid"], age, self.stall_timeout,
            )
            worker["proc"].kill()
            # One escalation per stall: the kill may take a poll cycle
            # to reap, and re-killing a dying pid is just noise.
            worker["last_seen"] = now

    def _check_deaths(self) -> None:
        # Snapshot: a respawn inside the loop grows the worker table.
        for wid, worker in list(self.workers.items()):
            if worker["state"] in ("dead", "exited"):
                continue
            if worker["proc"].is_alive():
                continue
            worker["state"] = "dead"
            self._record("worker", id=wid, pid=worker["pid"], event="death")
            logger.warning("pool worker %s (pid %s) died", wid, worker["pid"])
            # Recover the undispatched item from its private queue first
            # (no live worker competes on it), then the in-flight unit.
            while True:
                try:
                    item = worker["queue"].get_nowait()
                except (queue_mod.Empty, OSError):
                    break
                if item is None:
                    continue
                self._requeue(item[0], count_attempt=False)
            uid = worker["unit"]
            worker["unit"] = None
            if uid is not None:
                unit = self.units.get(uid)
                if unit is not None and unit["status"] in ("queued", "started"):
                    # A unit the worker never confirmed starting doesn't
                    # burn an attempt — the death wasn't its doing.
                    self._requeue(
                        uid,
                        err=f"worker {wid} died",
                        count_attempt=(unit["status"] == "started"),
                    )
            if not self._stopping() and self._work_remains():
                if self.respawns_left > 0:
                    self.respawns_left -= 1
                    self._spawn_worker()
                elif not any(
                    w["state"] in ("idle", "busy")
                    for w in self.workers.values()
                ):
                    raise PoolError(
                        "all pool workers died and the respawn budget is"
                        " exhausted; aborting"
                    )

    # -- dispatch / steal arbitration --------------------------------
    def _work_remains(self) -> bool:
        return any(
            u["status"] not in ("done", "stopped", "quarantined")
            for u in self.units.values()
        )

    def _stopping(self) -> bool:
        return self.initiated is not None

    def _dispatch(self) -> None:
        if self._stopping():
            return
        for wid in self.worker_order:
            if not self.pending:
                break
            worker = self.workers[wid]
            if worker["state"] != "idle":
                continue
            uid = self.pending.popleft()
            unit = self.units[uid]
            cap = (
                None
                if self.cap is None
                else max(1, self.cap - self.confirmed)
            )
            worker["queue"].put((uid, unit["payload"], cap))
            unit["status"] = "queued"
            unit["worker"] = wid
            worker["state"] = "busy"
            worker["unit"] = uid
            self._record("unit", id=uid, worker=wid, event="dispatch")

    def _arbitrate_steal(self) -> None:
        if self._stopping() or self.pending:
            self.need_work.clear()
            return
        busy = any(w["state"] == "busy" for w in self.workers.values())
        idle = any(w["state"] == "idle" for w in self.workers.values())
        if busy and idle:
            self.need_work.set()
        else:
            self.need_work.clear()

    # -- budgets / observability --------------------------------------
    def _check_budgets(self) -> None:
        if self._stopping():
            return
        if self.governor is not None:
            self.probe.emitted = self._live_emitted()
            reason = self.governor.check(self.probe)
            if reason is not None:
                self._initiate(reason)
                return
        if (
            self.deadline is not None
            and time.perf_counter() > self.deadline
        ):
            self._initiate(STOP_TIME_LIMIT)
            return
        if self.cap is not None and self._live_emitted() >= self.cap:
            self._initiate(STOP_EMBEDDING_LIMIT)

    def _observe(self) -> None:
        emitted = self._live_emitted()
        nodes = self._total_nodes()
        if self.estimator is not None:
            total = len(self.units) or 1
            done = sum(
                1 for u in self.units.values() if u["status"] == "done"
            )
            inflight = sum(
                w.get("fraction", 0.0)
                for w in self.workers.values()
                if w["state"] == "busy"
            )
            self.estimator.update((done + inflight) / total)
        if self.obs.enabled and self.obs.heartbeat.enabled:
            self.obs.heartbeat.beat(
                nodes, emitted, 0, phase="pool", progress=self.estimator
            )
        if self.monitor is not None:
            self._refresh_monitor(emitted, nodes)

    def _refresh_monitor(self, emitted: int, nodes: int) -> None:
        runtime = self.monitor.runtime
        runtime.emitted = emitted
        runtime.nodes = nodes
        runtime.stop_reason = self.initiated
        runtime.progress = self.estimator
        merged = merge_counters(
            self.prior_counters,
            *(agg["stats"] for agg in self.per_worker.values()),
        )
        runtime._stats = merged
        ladders = [agg["degradation"] for agg in self.per_worker.values()]
        runtime.degradation = max(ladders, key=len, default=[])
        rows = []
        now = time.perf_counter()
        ages = []
        for wid in self.worker_order:
            worker = self.workers[wid]
            agg = self._agg(wid)
            age = (
                round(now - worker["last_seen"], 2)
                if worker["state"] == "busy"
                else None
            )
            if age is not None:
                ages.append(age)
            rows.append(
                {
                    "worker": wid,
                    "pid": worker["pid"],
                    "state": worker["state"],
                    "unit": worker["unit"],
                    "units": agg["units"],
                    "emitted": agg["emitted"] + worker["live_emitted"],
                    "nodes": int(agg["stats"].get("nodes", 0))
                    + worker["live_nodes"],
                    "beats": worker["beats"],
                    "beat_age": age,
                }
            )
        self.monitor._rows = rows
        self.monitor._health = {
            "stall_timeout": self.stall_timeout,
            "stall_kills": self.stall_kills,
            "quarantined_units": len(self.quarantined),
            "respawns_left": self.respawns_left,
            "max_beat_age": max(ages, default=None),
        }

    # -- drive loop ----------------------------------------------------
    def _drain_results(self) -> None:
        try:
            msg = self.results.get(timeout=_POLL_INTERVAL)
        except queue_mod.Empty:
            return
        self._handle(msg)
        while True:
            try:
                msg = self.results.get_nowait()
            except queue_mod.Empty:
                break
            self._handle(msg)

    def _send_sentinels(self) -> None:
        if self.sentinels_sent:
            return
        self.sentinels_sent = True
        for worker in self.workers.values():
            if worker["state"] in ("idle", "busy"):
                try:
                    worker["queue"].put(None)
                except (OSError, ValueError):
                    pass

    def _workers_settled(self) -> bool:
        return all(
            w["state"] in ("dead", "exited")
            or not w["proc"].is_alive()
            for w in self.workers.values()
        )

    def run(self) -> tuple[str | None, float]:
        """Drive the pool to completion or a drained stop. Returns the
        merged stop reason and the execution wall time; the caller
        (:func:`execute_parallel`) packages the result."""
        started = time.perf_counter()
        for _ in range(self.options.workers):
            self._spawn_worker()
        try:
            while True:
                self._drain_results()
                self._check_stalls()
                self._check_deaths()
                self._check_budgets()
                self._dispatch()
                self._arbitrate_steal()
                self._observe()
                if not self._stopping():
                    if not self._work_remains():
                        break
                else:
                    busy = any(
                        w["state"] == "busy" for w in self.workers.values()
                    )
                    if not busy or self._workers_settled():
                        break
                    if (
                        self.stop_started is not None
                        and time.perf_counter() - self.stop_started
                        > _DRAIN_GRACE
                    ):
                        logger.warning(
                            "pool drain grace expired; terminating"
                            " stragglers (their units stay resumable)"
                        )
                        break
        finally:
            self.need_work.clear()
            self._send_sentinels()
            deadline = time.perf_counter() + 5.0
            for worker in self.workers.values():
                proc = worker["proc"]
                proc.join(timeout=max(0.1, deadline - time.perf_counter()))
                if proc.is_alive():
                    proc.terminate()
                    proc.join(timeout=1.0)
                if proc.is_alive():
                    proc.kill()
                    proc.join(timeout=1.0)
            # Post-join drain: banked messages flushed before exit still
            # count (done/split sent but not yet processed).
            while True:
                try:
                    msg = self.results.get_nowait()
                except (queue_mod.Empty, OSError):
                    break
                self._handle(msg)
            if self.governor is not None:
                self.governor.release()
        merged_stop = self._merged_stop()
        return merged_stop, time.perf_counter() - started

    def _merged_stop(self) -> str | None:
        if self.initiated is not None:
            return self.initiated
        if not self.worker_stops:
            return None
        return max(self.worker_stops, key=_STOP_SEVERITY.index)

    def unfinished_payloads(self) -> list[dict]:
        """State payloads of every unit that has not run to completion —
        what the pool checkpoint writes and resume re-enqueues.
        Quarantined units are excluded: their payloads live in
        ``quarantine-NNNN.json`` files, replayed by
        ``csce retry-quarantined`` (shipping them to resume as well
        would double count)."""
        return [
            unit["payload"]
            for uid, unit in sorted(self.units.items())
            if unit["status"] not in ("done", "quarantined")
        ]


def _shard_reports(
    driver: _PoolDriver, variant_value: str
) -> tuple[list[dict], list[str]]:
    """Per-worker mini run-reports (plus a synthetic ``checkpoint`` shard
    carrying resumed prior progress) for :func:`merge_run_reports`."""
    reports: list[dict] = []
    tags: list[str] = []
    if driver.prior_emitted or driver.prior_counters:
        tags.append("checkpoint")
        reports.append(
            {
                "format": "repro-run-report",
                "version": RUN_REPORT_VERSION,
                "engine": "CSCE",
                "variant": variant_value,
                "count": driver.prior_emitted,
                "truncated": False,
                "timed_out": False,
                "stop_reason": None,
                "degradation": [],
                "timings": {
                    "read_seconds": 0.0,
                    "plan_seconds": 0.0,
                    "execute_seconds": 0.0,
                    "total_seconds": 0.0,
                },
                "counters": dict(driver.prior_counters),
            }
        )
    for wid in driver.worker_order:
        agg = driver.per_worker[wid]
        tags.append(wid)
        reports.append(
            {
                "format": "repro-run-report",
                "version": RUN_REPORT_VERSION,
                "engine": "CSCE",
                "variant": variant_value,
                "count": agg["emitted"],
                "truncated": STOP_EMBEDDING_LIMIT in agg["stop_reasons"],
                "timed_out": STOP_TIME_LIMIT in agg["stop_reasons"],
                "stop_reason": agg["stop_reasons"][0]
                if agg["stop_reasons"]
                else None,
                "degradation": list(agg["degradation"]),
                "timings": {
                    "read_seconds": 0.0,
                    "plan_seconds": 0.0,
                    "execute_seconds": agg["execute_seconds"],
                    "total_seconds": agg["execute_seconds"],
                },
                "counters": dict(agg["stats"]),
            }
        )
    return reports, tags


def _package_result(
    physical: PhysicalPlan,
    options: MatchOptions,
    driver: _PoolDriver,
    merged_stop: str | None,
    elapsed: float,
) -> MatchResult:
    plan = physical.logical
    obs = options.obs or NULL_OBS
    quarantined = len(driver.quarantined)
    if merged_stop is None and quarantined:
        # Quarantine is the least severe stop: any budget/cancel reason
        # outranks it (the quarantined count still rides on the result).
        merged_stop = STOP_QUARANTINED
    reports, tags = _shard_reports(driver, plan.variant.value)
    if not reports:
        # Nothing ran (empty root range / impossible plan): one synthetic
        # zero shard keeps the shards invariant "workers>1 → shards set".
        reports = [
            {
                "format": "repro-run-report",
                "version": RUN_REPORT_VERSION,
                "engine": "CSCE",
                "variant": plan.variant.value,
                "count": 0,
                "truncated": False,
                "timed_out": False,
                "stop_reason": None,
                "degradation": [],
                "timings": {
                    "read_seconds": 0.0,
                    "plan_seconds": 0.0,
                    "execute_seconds": 0.0,
                    "total_seconds": 0.0,
                },
                "counters": {},
            }
        ]
        tags = ["w0"]
    merged = merge_run_reports(reports, workers=tags)
    if quarantined:
        merged["shards"]["quarantined_units"] = quarantined
    stats = merge_counters(
        driver.prior_counters,
        *(driver.per_worker[wid]["stats"] for wid in driver.worker_order),
    )
    if driver.estimator is not None and merged_stop is None:
        driver.estimator.complete()
    progress = (
        driver.estimator.as_dict() if driver.estimator is not None else None
    )
    if obs.enabled:
        obs.counters.merge(stats)
    if driver.recorder is not None:
        driver.recorder.record(
            "run_end",
            count=driver.confirmed,
            nodes=int(stats.get("nodes", 0)),
            stop_reason=merged_stop,
        )
    return MatchResult(
        count=driver.confirmed,
        variant=plan.variant,
        embeddings=None,
        elapsed=elapsed,
        read_seconds=plan.task_clusters.read_seconds,
        plan_seconds=max(0.0, plan.plan_seconds),
        compile_seconds=physical.compile_seconds,
        truncated=merged_stop == STOP_EMBEDDING_LIMIT,
        timed_out=merged_stop == STOP_TIME_LIMIT,
        stop_reason=merged_stop,
        degradation=list(merged["degradation"]),
        progress=progress,
        stats=stats,
        shards=merged["shards"],
        quarantined_units=quarantined,
    )


def execute_parallel(
    physical: PhysicalPlan,
    options: MatchOptions,
    initial_units: list[dict] | None = None,
    prior_emitted: int = 0,
    prior_counters: dict | None = None,
    checkpoint: "PoolCheckpointDir | None" = None,
    monitor: PoolMonitor | None = None,
    on_event: Callable[[str, tuple], None] | None = None,
) -> MatchResult:
    """Execute a compiled counting plan across ``options.workers``
    processes with exact merged counts (the ``--workers N`` engine path).

    ``initial_units`` overrides the root-range decomposition (pool
    resume); ``prior_emitted``/``prior_counters`` fold a resumed
    checkpoint's confirmed progress into the totals; ``checkpoint`` (a
    :class:`~repro.engine.checkpoint.PoolCheckpointDir`) receives one
    shard checkpoint per unfinished unit when the pool stops early;
    ``monitor`` is a live :class:`PoolMonitor` for the inspector;
    ``on_event`` observes every parent-processed message (tests hook
    cancellation mid-steal through it).
    """
    if not options.count_only:
        raise PoolError(
            "workers > 1 requires count_only=True: embedding enumeration"
            " cannot stream across process boundaries — run with workers=1"
            " (or match_iter) to materialize embeddings"
        )
    if options.workers < 1:
        raise PoolError(f"workers must be positive: {options.workers}")
    obs = options.obs or NULL_OBS
    recorder = getattr(obs, "recorder", None)
    if recorder is not None and recorder.enabled:
        recorder.record(
            "run_start",
            mode="pool",
            variant=physical.logical.variant.value,
            ops=len(physical.ops),
            workers=options.workers,
        )
    try:
        ctx = multiprocessing.get_context("fork")
    except ValueError:
        ctx = None
    if initial_units is not None:
        units = list(initial_units)
    else:
        units = make_root_units(
            physical, options.workers * DEFAULT_UNITS_PER_WORKER
        )
    if ctx is None or not physical.ops:
        # No fork on this platform (or a degenerate zero-op plan, which
        # only the sequential machine handles): same work units, one
        # process, same exact merge.
        return _execute_inline(
            physical, options,
            None if not physical.ops else units,
            prior_emitted, prior_counters,
        )
    driver = _PoolDriver(
        ctx,
        physical,
        options,
        units,
        prior_emitted=prior_emitted,
        prior_counters=prior_counters,
        checkpoint=checkpoint,
        monitor=monitor,
        on_event=on_event,
    )
    if not units:
        return _package_result(physical, options, driver, None, 0.0)
    merged_stop, elapsed = driver.run()
    _maybe_checkpoint(driver, options, checkpoint, merged_stop)
    return _package_result(physical, options, driver, merged_stop, elapsed)


def _maybe_checkpoint(
    driver: _PoolDriver,
    options: MatchOptions,
    checkpoint: "PoolCheckpointDir | None",
    merged_stop: str | None,
) -> None:
    if merged_stop is not None and checkpoint is not None:
        unfinished = driver.unfinished_payloads()
        if unfinished:
            written = checkpoint.write(
                options,
                unfinished,
                driver.confirmed,
                merge_counters(
                    driver.prior_counters,
                    *(
                        driver.per_worker[wid]["stats"]
                        for wid in driver.worker_order
                    ),
                ),
                merged_stop,
                list(
                    max(
                        (
                            agg["degradation"]
                            for agg in driver.per_worker.values()
                        ),
                        key=len,
                        default=[],
                    )
                ),
            )
            driver._record(
                "checkpoint", path=checkpoint.directory,
                emitted=driver.confirmed, shards=len(written),
            )


def _execute_inline(
    physical: PhysicalPlan,
    options: MatchOptions,
    units: list[dict] | None,
    prior_emitted: int = 0,
    prior_counters: dict | None = None,
) -> MatchResult:
    """Single-process fallback (no ``fork`` start method, or a zero-op
    plan): run the same work units sequentially in this process and
    package them as a one-worker pool result. Exactness is trivial —
    it is the sequential machine over an exact partition."""
    started = time.perf_counter()
    plan = physical.logical
    obs = options.obs or NULL_OBS
    gov = options.governor
    deadline = None
    cap = options.max_embeddings
    if gov is not None:
        gov.ensure_tracing()
        deadline = gov.effective_deadline(options.time_limit)
        cap = gov.effective_cap(options.max_embeddings)
    elif options.time_limit is not None:
        deadline = time.perf_counter() + options.time_limit
    total = prior_emitted
    shard_stats: dict = {}
    stop_reason: str | None = None
    degradation: list[str] = []
    execute_seconds = 0.0
    try:
        work = [None] if units is None else list(units)
        for payload in work:
            remaining_time = (
                max(0.001, deadline - time.perf_counter())
                if deadline is not None
                else None
            )
            unit_options = MatchOptions(
                count_only=True,
                max_embeddings=(
                    None if cap is None else max(1, cap - total)
                ),
                time_limit=remaining_time,
                use_sce=options.use_sce,
                restrictions=options.restrictions,
                seed=options.seed,
                memo_limit=options.memo_limit,
                obs=options.obs,
            )
            runtime = Runtime(physical, unit_options)
            state = (
                SearchState.from_payload(payload)
                if payload is not None
                else None
            )
            unit_started = time.perf_counter()
            emitted = count_capped(physical, runtime, state)
            execute_seconds += time.perf_counter() - unit_started
            total += emitted
            shard_stats = merge_counters(shard_stats, runtime.stats())
            if len(runtime.degradation) > len(degradation):
                degradation = list(runtime.degradation)
            if runtime.stop_reason is not None:
                stop_reason = runtime.stop_reason
                break
    finally:
        if gov is not None:
            gov.release()
    stats = merge_counters(prior_counters or {}, shard_stats)
    if obs.enabled:
        obs.counters.merge(stats)
    shard = {
        "format": "repro-run-report",
        "version": RUN_REPORT_VERSION,
        "engine": "CSCE",
        "variant": plan.variant.value,
        "count": total - prior_emitted,
        "truncated": stop_reason == STOP_EMBEDDING_LIMIT,
        "timed_out": stop_reason == STOP_TIME_LIMIT,
        "stop_reason": stop_reason,
        "degradation": list(degradation),
        "timings": {
            "read_seconds": 0.0,
            "plan_seconds": 0.0,
            "execute_seconds": execute_seconds,
            "total_seconds": execute_seconds,
        },
        "counters": dict(shard_stats),
    }
    merged = merge_run_reports([shard], workers=["w0"])
    return MatchResult(
        count=total,
        variant=plan.variant,
        embeddings=None,
        elapsed=time.perf_counter() - started,
        read_seconds=plan.task_clusters.read_seconds,
        plan_seconds=max(0.0, plan.plan_seconds),
        compile_seconds=physical.compile_seconds,
        truncated=stop_reason == STOP_EMBEDDING_LIMIT,
        timed_out=stop_reason == STOP_TIME_LIMIT,
        stop_reason=stop_reason,
        degradation=degradation,
        progress=None,
        stats=stats,
        shards=merged["shards"],
    )


def resume_parallel(
    payloads: list[dict],
    session,
    workers: int,
    max_embeddings=...,
    time_limit=...,
    governor=None,
    obs=None,
    checkpoint_dir: str | os.PathLike | None = None,
    monitor: PoolMonitor | None = None,
    on_event: Callable[[str, tuple], None] | None = None,
    stall_timeout: float | None = None,
    max_respawns: int | None = None,
    max_unit_attempts: int = 3,
) -> MatchResult:
    """Resume a partially-completed pool from its shard checkpoints.

    ``payloads`` is what :func:`~repro.engine.checkpoint.load_checkpoint_dir`
    returned: every shard's compatibility guards are enforced against
    ``session``'s store, unfinished unit states are re-enqueued, and the
    confirmed progress (shard 0 carries the merged emitted count and
    counters) is folded into the final exact total. ``max_embeddings`` /
    ``time_limit`` default to the checkpoint's recorded limits (pass an
    override — including ``None`` for unlimited — to change them);
    ``checkpoint_dir`` re-arms pool checkpointing for another suspend.
    """
    from repro.core.variants import Variant
    from repro.engine.checkpoint import (
        KEEP,
        PoolCheckpointDir,
        check_store_compatibility,
        pattern_digest,
        validate_checkpoint,
    )
    from repro.graph.io import parse_graph_text

    if not payloads:
        raise PoolError("resume_parallel needs at least one shard payload")
    if max_embeddings is ...:
        max_embeddings = KEEP
    if time_limit is ...:
        time_limit = KEEP
    first = payloads[0]
    for payload in payloads:
        validate_checkpoint(payload)
        check_store_compatibility(payload, session.store)
    pattern_block = first["pattern"]
    pattern = parse_graph_text(pattern_block["text"], name="checkpoint")
    if pattern_digest(pattern) != pattern_block.get("digest"):
        raise PoolError(
            "pool checkpoint pattern does not match its digest"
            " (corrupt document)"
        )
    query = first["query"]
    variant = Variant.parse(query["variant"])
    planner = query["planner"]
    restrictions = (
        tuple((int(u), int(v)) for u, v in query["restrictions"])
        if query["restrictions"]
        else None
    )
    seed = (
        {int(u): int(v) for u, v in query["seed"]}
        if query.get("seed")
        else None
    )
    limits = first["limits"]
    if max_embeddings is KEEP:
        max_embeddings = limits.get("max_embeddings")
    if time_limit is KEEP:
        time_limit = limits.get("time_limit")
    compiled = session.compile(
        pattern, variant, planner=planner, restrictions=restrictions, obs=obs
    )
    prior_emitted = sum(
        int(p["progress"].get("emitted", 0)) for p in payloads
    )
    prior_counters = merge_counters(
        *(p["progress"].get("counters") or {} for p in payloads)
    )
    degradation: list[str] = max(
        (list(p["progress"].get("degradation") or []) for p in payloads),
        key=len,
        default=[],
    )
    use_sce = bool(query["use_sce"]) and "disable_memo" not in degradation
    options = MatchOptions(
        count_only=True,
        max_embeddings=max_embeddings,
        time_limit=time_limit,
        use_sce=use_sce,
        restrictions=restrictions,
        seed=seed,
        obs=obs if obs is not None and getattr(obs, "enabled", False) else None,
        governor=governor,
        workers=workers,
        stall_timeout=stall_timeout,
        max_respawns=max_respawns,
        max_unit_attempts=max_unit_attempts,
    )
    checkpoint = None
    if checkpoint_dir is not None:
        checkpoint = PoolCheckpointDir(
            checkpoint_dir, session.store, pattern, variant, planner
        )
    return execute_parallel(
        compiled.physical,
        options,
        initial_units=[dict(p["state"]) for p in payloads],
        prior_emitted=prior_emitted,
        prior_counters=prior_counters,
        checkpoint=checkpoint,
        monitor=monitor,
        on_event=on_event,
    )
