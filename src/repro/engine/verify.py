"""Ahead-of-execution semantic verification of matching plans.

A compiled :class:`~repro.engine.physical.PhysicalPlan` is assumed sound
before it streams millions of embeddings; this module checks that
assumption *statically* — no search, no data touched beyond the cluster
map — so a planner bug (or a hand-built plan) is rejected with a typed
diagnostic instead of producing silently wrong counts:

* the matching order is a permutation, connected under the GCF rules (a
  vertex with no earlier pattern neighbor must start a new pattern
  component);
* the ``BuildDAG`` output is structurally sound (mirrored in/out sets,
  acyclic), the order is one of its topological orders, and every
  adjacency/negation dependency Algorithm 2 mandates is present;
* every *no-path* pair of the DAG is genuinely independent per
  Definition 1 — neither pattern-adjacent nor (vertex-induced)
  negation-connected, since either would make candidates sequentially
  inequivalent and break SCE reuse/factorization;
* every :class:`~repro.engine.physical.ExtendOp` references clusters that
  exist in the store's cluster map (object identity, so stale plans
  against a mutated store are caught), with variant-correct negation
  probes (the paper's vertex-induced negation clusters, with the right
  direction arithmetic);
* restriction slots sit at the later endpoint's position and seed pins
  name in-range data vertices with the pattern vertex's label.

Surfaces: :func:`verify_plan` / :func:`verify_physical` return a
:class:`VerificationReport`; ``MatchSession(verify=True)`` runs
:func:`verify_physical` on every fresh compile (debug mode); the
``csce verify`` CLI sweeps the pattern catalog across variants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.ccsr.store import FORWARD, CCSRStore
from repro.core.plan import (
    PREDECESSORS,
    SUCCESSORS,
    _EMPTY_CLUSTER,
    Plan,
)
from repro.errors import PlanError, PlanVerificationError

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.engine.physical import ExtendOp, PhysicalPlan

# Stable diagnostic codes (tests and tooling match on these).
ORDER_NOT_PERMUTATION = "order-not-permutation"
ORDER_DISCONNECTED = "order-disconnected"
DAG_INCONSISTENT = "dag-inconsistent"
DAG_CYCLE = "dag-cycle"
DAG_NOT_TOPOLOGICAL = "dag-not-topological"
DAG_MISSING_DEPENDENCY = "dag-missing-dependency"
EQUIVALENCE_PAIR_DEPENDENT = "equivalence-pair-dependent"
CONSTRAINT_ORDER = "constraint-order"
CLUSTER_KEY_UNKNOWN = "cluster-key-unknown"
NEGATION_PROBE_MISSING = "negation-probe-missing"
NEGATION_UNEXPECTED = "negation-unexpected"
RESTRICTION_MALFORMED = "restriction-malformed"
SEED_PIN_INVALID = "seed-pin-invalid"
OP_TABLE_INCONSISTENT = "op-table-inconsistent"
SPEC_COLLISION = "spec-collision"


@dataclass(frozen=True)
class Diagnostic:
    """One verification failure: a stable code, a message, and (when the
    failure is anchored to a matching step) the order position."""

    code: str
    message: str
    position: int | None = None

    def render(self) -> str:
        where = f" (position {self.position})" if self.position is not None else ""
        return f"[{self.code}]{where} {self.message}"

    def as_dict(self) -> dict:
        return {
            "code": self.code,
            "message": self.message,
            "position": self.position,
        }


@dataclass
class VerificationReport:
    """The verifier's outcome: ``ok`` plus the diagnostics (empty when
    the plan is sound)."""

    diagnostics: list[Diagnostic]

    @property
    def ok(self) -> bool:
        return not self.diagnostics

    def codes(self) -> list[str]:
        return [d.code for d in self.diagnostics]

    def raise_for_errors(self) -> "VerificationReport":
        """Raise :class:`~repro.errors.PlanVerificationError` unless ok."""
        if self.diagnostics:
            summary = "; ".join(d.render() for d in self.diagnostics[:5])
            if len(self.diagnostics) > 5:
                summary += f"; ... {len(self.diagnostics) - 5} more"
            raise PlanVerificationError(
                f"plan verification failed with"
                f" {len(self.diagnostics)} diagnostic(s): {summary}",
                diagnostics=self.diagnostics,
            )
        return self

    def as_dict(self) -> dict:
        return {
            "ok": self.ok,
            "diagnostics": [d.as_dict() for d in self.diagnostics],
        }

    def render(self) -> str:
        if self.ok:
            return "plan verification: ok"
        lines = [f"plan verification: {len(self.diagnostics)} problem(s)"]
        lines += [f"  {d.render()}" for d in self.diagnostics]
        return "\n".join(lines)


class _Collector:
    def __init__(self) -> None:
        self.diagnostics: list[Diagnostic] = []

    def add(self, code: str, message: str, position: int | None = None) -> None:
        self.diagnostics.append(Diagnostic(code, message, position))


def _pattern_components(plan: Plan) -> dict[int, int]:
    """Pattern vertex -> connected-component id (undirected view)."""
    component: dict[int, int] = {}
    next_id = 0
    for start in range(plan.pattern.num_vertices):
        if start in component:
            continue
        stack = [start]
        component[start] = next_id
        while stack:
            v = stack.pop()
            for w in plan.pattern.neighbors(v):
                if w not in component:
                    component[w] = next_id
                    stack.append(w)
        next_id += 1
    return component


def _check_order(plan: Plan, out: _Collector) -> bool:
    """Permutation + GCF connectivity. Returns False when the order is
    not even a permutation (downstream checks would KeyError)."""
    n = plan.pattern.num_vertices
    if sorted(plan.order) != list(range(n)):
        out.add(
            ORDER_NOT_PERMUTATION,
            f"order {plan.order} is not a permutation of the"
            f" {n} pattern vertices",
        )
        return False
    component = _pattern_components(plan)
    neighbor_sets = [set(plan.pattern.neighbors(v)) for v in range(n)]
    seen_components: set[int] = set()
    earlier: set[int] = set()
    for pos, u in enumerate(plan.order):
        if pos and not (neighbor_sets[u] & earlier):
            # GCF rule: a vertex without an earlier pattern neighbor may
            # only *start* a new pattern component.
            if component[u] in seen_components:
                out.add(
                    ORDER_DISCONNECTED,
                    f"vertex u{u} at position {pos} has no earlier"
                    " pattern neighbor although its component already"
                    " started — the order is disconnected under GCF"
                    " rules",
                    position=pos,
                )
        earlier.add(u)
        seen_components.add(component[u])
    return True


def _check_dag(plan: Plan, out: _Collector) -> bool:
    """DAG structure, acyclicity, topological order, and Algorithm 2
    completeness. Returns False when path-dependent checks must be
    skipped (broken vertex set or a cycle)."""
    dag = plan.dag
    n = plan.pattern.num_vertices
    if sorted(dag.vertices) != list(range(n)):
        out.add(
            DAG_INCONSISTENT,
            f"dependency DAG is over vertices {sorted(dag.vertices)},"
            f" not the {n} pattern vertices",
        )
        return False
    for src, dsts in dag.out.items():
        for dst in dsts:
            if src not in dag.inc.get(dst, set()):
                out.add(
                    DAG_INCONSISTENT,
                    f"DAG edge ({src}, {dst}) is missing from the"
                    " incoming-adjacency mirror",
                )
                return False
    for dst, srcs in dag.inc.items():
        for src in srcs:
            if dst not in dag.out.get(src, set()):
                out.add(
                    DAG_INCONSISTENT,
                    f"DAG incoming edge ({src}, {dst}) is missing from"
                    " the outgoing-adjacency mirror",
                )
                return False
    try:
        list(dag.topological_order())
    except PlanError:
        out.add(DAG_CYCLE, "dependency DAG contains a cycle")
        return False
    if not dag.is_topological_order(plan.order):
        out.add(
            DAG_NOT_TOPOLOGICAL,
            f"order {plan.order} is not a topological order of the"
            " dependency DAG",
        )
    # Algorithm 2 completeness: pattern adjacency between positions i < j
    # always creates the dependency (order[i], order[j]); under the
    # vertex-induced variant so does any negation cluster between the
    # pair (the engine's conservative BuildDAG form).
    neighbor_sets = [set(plan.pattern.neighbors(v)) for v in range(n)]
    induced = plan.variant.induced
    for j in range(1, n):
        u_j = plan.order[j]
        for i in range(j):
            u_i = plan.order[i]
            adjacent = u_i in neighbor_sets[u_j]
            negated = induced and plan.task_clusters.has_negation_between(
                u_i, u_j
            )
            if (adjacent or negated) and not dag.has_edge(u_i, u_j):
                why = "pattern-adjacent" if adjacent else "negation-connected"
                out.add(
                    DAG_MISSING_DEPENDENCY,
                    f"{why} pair (u{u_i}, u{u_j}) has no dependency"
                    " edge (Algorithm 2 would add it)",
                    position=j,
                )
    return True


def _check_equivalence_pairs(plan: Plan, out: _Collector) -> None:
    """Definition 1: every no-path pair of the DAG must be genuinely
    independent — the engine reuses candidates across exactly these
    pairs, so a dependent pair here means wrong counts, not slowness."""
    neighbor_sets = [
        set(plan.pattern.neighbors(v))
        for v in range(plan.pattern.num_vertices)
    ]
    induced = plan.variant.induced
    for a, b in plan.dag.independent_pairs():
        if b in neighbor_sets[a]:
            out.add(
                EQUIVALENCE_PAIR_DEPENDENT,
                f"(u{a}, u{b}) has no DAG path but the vertices are"
                " pattern-adjacent — Definition 1 equivalence would"
                " reuse candidates across a real dependency",
            )
        elif induced and plan.task_clusters.has_negation_between(a, b):
            out.add(
                EQUIVALENCE_PAIR_DEPENDENT,
                f"(u{a}, u{b}) has no DAG path but the data graph has"
                " negation clusters between their labels — the"
                " vertex-induced variant makes them dependent",
            )


def _cluster_known(cluster: object, store: CCSRStore) -> bool:
    """Is ``cluster`` the store's live object for its key (or the shared
    always-empty sentinel for impossible edges)?"""
    if cluster is _EMPTY_CLUSTER or getattr(cluster, "key", None) is None:
        return cluster is _EMPTY_CLUSTER
    return store.clusters.get(cluster.key) is cluster


def _check_constraints(
    plan: Plan, store: CCSRStore | None, out: _Collector
) -> None:
    n = plan.pattern.num_vertices
    position = plan.position
    for name, table in (("backward", plan.backward),
                        ("negation", plan.negations)):
        if len(table) != n:
            out.add(
                DAG_INCONSISTENT,
                f"{name} constraint table has {len(table)} rows for a"
                f" {n}-vertex pattern",
            )
            return
    for pos, constraints in enumerate(plan.backward):
        for c in constraints:
            if c.prior not in position or position[c.prior] >= pos:
                out.add(
                    CONSTRAINT_ORDER,
                    f"edge constraint at position {pos} references"
                    f" u{c.prior}, which is not matched earlier",
                    position=pos,
                )
            if c.direction not in (SUCCESSORS, PREDECESSORS):
                out.add(
                    OP_TABLE_INCONSISTENT,
                    f"edge constraint at position {pos} has unknown"
                    f" direction {c.direction!r}",
                    position=pos,
                )
            if store is not None and not _cluster_known(c.cluster, store):
                out.add(
                    CLUSTER_KEY_UNKNOWN,
                    f"edge constraint at position {pos} references"
                    f" cluster {getattr(c.cluster, 'key', None)!r},"
                    " which is not the store's live cluster for that"
                    " key (stale or foreign plan?)",
                    position=pos,
                )
    for pos, constraints in enumerate(plan.negations):
        if constraints and not plan.variant.induced:
            out.add(
                NEGATION_UNEXPECTED,
                f"{plan.variant.value} plan carries"
                f" {len(constraints)} negation probe(s) at position"
                f" {pos}; only the vertex-induced variant uses negation",
                position=pos,
            )
            continue
        for c in constraints:
            if c.prior not in position or position[c.prior] >= pos:
                out.add(
                    CONSTRAINT_ORDER,
                    f"negation probe at position {pos} references"
                    f" u{c.prior}, which is not matched earlier",
                    position=pos,
                )
            if store is not None and not _cluster_known(
                c.check.cluster, store
            ):
                out.add(
                    CLUSTER_KEY_UNKNOWN,
                    f"negation probe at position {pos} references"
                    f" cluster {getattr(c.check.cluster, 'key', None)!r},"
                    " which is not the store's live cluster for that key",
                    position=pos,
                )


def _expected_negations(plan: Plan) -> dict[int, set[tuple[int, int, bool]]]:
    """Per late position, the probes the task's negation checks mandate:
    ``(early vertex, id(check), swap)`` triples (the same registration
    arithmetic as plan assembly)."""
    position = plan.position
    expected: dict[int, set[tuple[int, int, bool]]] = {}
    for (u_a, u_b), checks in plan.task_clusters.negation_checks.items():
        if u_a not in position or u_b not in position:
            continue
        pos_a, pos_b = position[u_a], position[u_b]
        early, late = (u_a, u_b) if pos_a < pos_b else (u_b, u_a)
        late_pos = max(pos_a, pos_b)
        swap = late == u_a
        bucket = expected.setdefault(late_pos, set())
        for check in checks:
            bucket.add((early, id(check), swap))
    return expected


def _check_negation_coverage(plan: Plan, out: _Collector) -> None:
    """Vertex-induced only: the plan's probes must be exactly the ones
    the task's negation clusters mandate — a missing probe admits
    embeddings the induced semantics forbid."""
    if not plan.variant.induced:
        return
    expected = _expected_negations(plan)
    for pos in range(plan.pattern.num_vertices):
        want = expected.get(pos, set())
        have = {
            (c.prior, id(c.check), c.swap) for c in plan.negations[pos]
        }
        for early, _check_id, swap in sorted(
            want - have, key=lambda t: (t[0], t[2])
        ):
            out.add(
                NEGATION_PROBE_MISSING,
                f"position {pos} is missing a mandated negation probe"
                f" against u{early} (swap={swap}) — induced semantics"
                " would admit forbidden embeddings",
                position=pos,
            )
        for early, _check_id, swap in sorted(
            have - want, key=lambda t: (t[0], t[2])
        ):
            out.add(
                NEGATION_UNEXPECTED,
                f"position {pos} carries a negation probe against"
                f" u{early} (swap={swap}) that no task negation check"
                " mandates",
                position=pos,
            )


def verify_plan(
    plan: Plan, store: CCSRStore | None = None
) -> VerificationReport:
    """Verify a logical plan: order, DAG, Definition-1 pairs, constraint
    tables, and (with a ``store``) cluster-map membership."""
    out = _Collector()
    if _check_order(plan, out):
        if _check_dag(plan, out):
            _check_equivalence_pairs(plan, out)
        _check_constraints(plan, store, out)
        _check_negation_coverage(plan, out)
    return VerificationReport(out.diagnostics)


# ----------------------------------------------------------------------
# Physical-plan checks
# ----------------------------------------------------------------------
def _fetch_owner(fetch: Callable) -> object | None:
    """The cluster a prebound fetcher reads from (None for the shared
    always-empty sentinel, whose fetchers are plain staticmethods)."""
    return getattr(fetch, "__self__", None)


def _is_sentinel_fetch(fetch: Callable) -> bool:
    return fetch in (_EMPTY_CLUSTER.successors, _EMPTY_CLUSTER.predecessors)


def _check_ops(
    physical: "PhysicalPlan", store: CCSRStore, out: _Collector
) -> None:
    plan = physical.logical
    n = plan.pattern.num_vertices
    if len(physical.ops) != n:
        out.add(
            OP_TABLE_INCONSISTENT,
            f"physical plan has {len(physical.ops)} ops for a"
            f" {n}-vertex pattern",
        )
        return
    direction_name = {SUCCESSORS: "successors", PREDECESSORS: "predecessors"}
    for pos, op in enumerate(physical.ops):
        if op.pos != pos or op.u != plan.order[pos]:
            out.add(
                OP_TABLE_INCONSISTENT,
                f"op at index {pos} claims (pos={op.pos}, u={op.u});"
                f" the order mandates (pos={pos}, u={plan.order[pos]})",
                position=pos,
            )
            continue
        if tuple(op.priors) != tuple(plan.memo_priors[pos]):
            out.add(
                OP_TABLE_INCONSISTENT,
                f"op {pos} priors {op.priors} diverge from the plan's"
                f" memo priors {plan.memo_priors[pos]}",
                position=pos,
            )
        if len(op.constraints) != len(plan.backward[pos]):
            out.add(
                OP_TABLE_INCONSISTENT,
                f"op {pos} has {len(op.constraints)} edge fetchers; the"
                f" plan mandates {len(plan.backward[pos])}",
                position=pos,
            )
        else:
            for k, (prior, fetch) in enumerate(op.constraints):
                logical = plan.backward[pos][k]
                if prior != logical.prior:
                    out.add(
                        OP_TABLE_INCONSISTENT,
                        f"op {pos} fetcher {k} reads f(u{prior}); the"
                        f" plan constraint reads f(u{logical.prior})",
                        position=pos,
                    )
                    continue
                name = getattr(fetch, "__name__", "?")
                if name != direction_name.get(logical.direction):
                    out.add(
                        OP_TABLE_INCONSISTENT,
                        f"op {pos} fetcher {k} is {name}(); the plan"
                        f" direction {logical.direction!r} mandates"
                        f" {direction_name.get(logical.direction)}()",
                        position=pos,
                    )
                owner = _fetch_owner(fetch)
                if owner is None:
                    if not _is_sentinel_fetch(fetch):
                        out.add(
                            CLUSTER_KEY_UNKNOWN,
                            f"op {pos} fetcher {k} is not bound to any"
                            " cluster object",
                            position=pos,
                        )
                elif not _cluster_known(owner, store):
                    out.add(
                        CLUSTER_KEY_UNKNOWN,
                        f"op {pos} fetcher {k} is bound to cluster"
                        f" {getattr(owner, 'key', None)!r}, which is"
                        " not the store's live cluster for that key",
                        position=pos,
                    )
        _check_op_negations(plan, pos, op, store, out)
        _check_op_pin(plan, store, pos, op, out)


def _check_op_negations(
    plan: Plan, pos: int, op: "ExtendOp", store: CCSRStore, out: _Collector
) -> None:
    """The op's exclusion fetchers must realize exactly the plan's
    negation probes with the variant's direction arithmetic."""
    expected: set[tuple[int, int, bool]] = set()
    for negation in plan.negations[pos]:
        use_successors = (
            negation.check.mode == FORWARD
        ) != negation.swap
        expected.add(
            (negation.prior, id(negation.check.cluster), use_successors)
        )
    have: set[tuple[int, int, bool]] = set()
    for prior, fetch in op.negations:
        owner = _fetch_owner(fetch)
        if owner is None and not _is_sentinel_fetch(fetch):
            out.add(
                CLUSTER_KEY_UNKNOWN,
                f"op {pos} negation fetcher is not bound to any"
                " cluster object",
                position=pos,
            )
            continue
        if owner is not None and not _cluster_known(owner, store):
            out.add(
                CLUSTER_KEY_UNKNOWN,
                f"op {pos} negation fetcher is bound to cluster"
                f" {getattr(owner, 'key', None)!r}, which is not the"
                " store's live cluster for that key",
                position=pos,
            )
            continue
        have.add((
            prior,
            id(owner),
            getattr(fetch, "__name__", "") == "successors",
        ))
    missing = len(expected) - len(expected & have) if expected else 0
    if missing:
        out.add(
            NEGATION_PROBE_MISSING,
            f"op {pos} realizes {len(expected & have)} of"
            f" {len(expected)} mandated negation probes — the missing"
            " exclusion fetchers would admit forbidden embeddings",
            position=pos,
        )
    extra = have - {
        (p, cid, use) for p, cid, use in expected
    }
    if extra:
        out.add(
            NEGATION_UNEXPECTED,
            f"op {pos} carries {len(extra)} exclusion fetcher(s) the"
            " plan's negation probes do not mandate",
            position=pos,
        )


def _check_op_pin(
    plan: Plan, store: CCSRStore, pos: int, op: "ExtendOp", out: _Collector
) -> None:
    if op.pin is None:
        return
    if not (0 <= op.pin < store.num_vertices):
        out.add(
            SEED_PIN_INVALID,
            f"op {pos} pins u{op.u} to data vertex {op.pin}, outside"
            f" the store's {store.num_vertices} vertices",
            position=pos,
        )
        return
    want = plan.pattern.vertex_label(op.u)
    got = store.vertex_labels[op.pin]
    if want != got:
        out.add(
            SEED_PIN_INVALID,
            f"op {pos} pins u{op.u} (label {want!r}) to data vertex"
            f" {op.pin} (label {got!r})",
            position=pos,
        )


def _check_restrictions(
    physical: "PhysicalPlan", out: _Collector
) -> None:
    """Re-derive the per-step restriction slots from the plan's pair list
    and compare (same placement rule as compilation: each pair is
    checked at its later endpoint's position)."""
    plan = physical.logical
    n = plan.pattern.num_vertices
    position = plan.position
    expected: list[set[tuple[int, bool]]] = [set() for _ in range(n)]
    for u, v in physical.restrictions:
        if u == v or not (0 <= u < n and 0 <= v < n):
            out.add(
                RESTRICTION_MALFORMED,
                f"restriction ({u}, {v}) does not name two distinct"
                f" pattern vertices of a {n}-vertex pattern",
            )
            continue
        if position[u] > position[v]:
            expected[position[u]].add((v, True))
        else:
            expected[position[v]].add((u, False))
    if len(physical.ops) != n:
        return  # already reported by _check_ops
    for pos, op in enumerate(physical.ops):
        have = set(op.restrictions)
        if have != expected[pos]:
            out.add(
                RESTRICTION_MALFORMED,
                f"op {pos} evaluates restriction slots"
                f" {sorted(have)}; the plan's pairs mandate"
                f" {sorted(expected[pos])}",
                position=pos,
            )


def _check_specs(physical: "PhysicalPlan", out: _Collector) -> None:
    """Interned spec ids must partition positions exactly like the memo
    specs do — a collision would share candidate caches across
    inequivalent steps."""
    plan = physical.logical
    if len(physical.ops) != len(plan.memo_specs):
        return  # already reported by _check_ops
    by_id: dict[int, tuple] = {}
    for pos, op in enumerate(physical.ops):
        spec = plan.memo_specs[pos]
        claimed = by_id.setdefault(op.spec_id, spec)
        if claimed != spec:
            out.add(
                SPEC_COLLISION,
                f"op {pos} shares spec id {op.spec_id} with a step"
                " whose memo spec differs — NEC-inequivalent steps"
                " would share cached candidate sets",
                position=pos,
            )
    if physical.num_specs != len(by_id):
        out.add(
            SPEC_COLLISION,
            f"physical plan declares {physical.num_specs} candidate"
            f" specs but its ops use {len(by_id)} distinct ids",
        )


def verify_physical(
    physical: "PhysicalPlan", store: CCSRStore
) -> VerificationReport:
    """Verify a compiled plan against the store it will execute on.

    Includes every :func:`verify_plan` check on the underlying logical
    plan, then validates the lowered operator table: op/order agreement,
    fetcher direction and cluster-map membership (object identity, so a
    plan compiled against a since-mutated store is rejected), negation
    probe realization, restriction slots, seed pins, and spec interning.
    """
    out = _Collector()
    report = verify_plan(physical.logical, store)
    out.diagnostics.extend(report.diagnostics)
    _check_ops(physical, store, out)
    _check_restrictions(physical, out)
    _check_specs(physical, out)
    return VerificationReport(out.diagnostics)
