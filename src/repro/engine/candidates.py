"""Candidate computation over physical operators, with SCE-based reuse.

``C(u | Phi, f)`` — the candidates of a pattern vertex given a partial
embedding — is computed by intersecting the cluster neighbor lists of the
op's backward constraints, then filtering vertex-induced negations. By
Definition 1 the raw set depends only on the mappings of the vertex's
dependency priors, so it is memoized on exactly that key; injectivity
filtering (the ``\\ {v_x}`` part) happens at use time and never enters the
cache. NEC falls out for free: equivalent pattern vertices were compiled to
the same ``spec_id`` and therefore share cached candidate sets.

The computer consumes :class:`~repro.engine.physical.ExtendOp` operators —
constraints and negations arrive as prebound ``(prior, fetch)`` pairs, so
the hot loop is two function calls and an intersection per constraint.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.core.candidates import CandidateStats, intersect_sorted
from repro.engine.physical import ExtendOp, PhysicalPlan

_EMPTY = np.empty(0, dtype=np.int64)


class CandidateComputer:
    """Computes (and, with SCE, reuses) raw candidate arrays per op."""

    def __init__(
        self,
        physical: PhysicalPlan,
        use_sce: bool = True,
        memo_limit: int = 1_000_000,
        profile: Any = None,
    ) -> None:
        self.physical = physical
        self.use_sce = use_sce
        self.memo_limit = memo_limit
        self.stats = CandidateStats()
        #: Optional :class:`repro.obs.profile.SearchDepthProfile` receiving
        #: per-depth memo hit/miss events; ``None`` keeps the hot path free.
        self._profile = profile
        self._memo: dict[tuple, np.ndarray] = {}

    def clear(self) -> None:
        self._memo.clear()

    @property
    def memo_size(self) -> int:
        """Number of cached candidate sets."""
        return len(self._memo)

    def evict(self, fraction: float = 0.5) -> int:
        """Drop the oldest ``fraction`` of memo entries; returns how many.

        The memo is an insertion-ordered dict, so dropping the front is an
        LRU approximation (old entries were keyed by prior assignments the
        search has likely backtracked past). Like CEMR's redundant
        extensions, every memo entry is a pure cache — dropping any subset
        only costs recomputation, never correctness — which is what makes
        degrade-under-pressure safe.
        """
        n = int(len(self._memo) * fraction)
        if n <= 0:
            return 0
        for key in list(self._memo.keys())[:n]:
            del self._memo[key]
        return n

    def disable_memo(self) -> None:
        """Turn memoization off for the rest of the run and free the cache
        (the degradation ladder's second rung). Candidate computation
        continues uncached; ``memo_misses`` stops advancing so the stats
        still distinguish degraded runs from ``use_sce=False`` runs only
        by their nonzero history."""
        self.use_sce = False
        self._memo.clear()

    def raw(self, op: ExtendOp, assignment: list[int]) -> np.ndarray:
        """The sorted raw candidate array of ``op.u`` under the current
        partial embedding (before injectivity filtering)."""
        if self.use_sce:
            key = (op.spec_id, *[assignment[p] for p in op.priors])
            cached = self._memo.get(key)
            if cached is not None:
                self.stats.memo_hits += 1
                if self._profile is not None:
                    self._profile.memo_hit(op.pos)
                return cached
            self.stats.memo_misses += 1
            if self._profile is not None:
                self._profile.memo_miss(op.pos)
        result = self._compute(op, assignment)
        if self.use_sce and len(self._memo) < self.memo_limit:
            self._memo[key] = result
        return result

    def _compute(self, op: ExtendOp, assignment: list[int]) -> np.ndarray:
        stats = self.stats
        stats.computed += 1
        if op.constraints:
            arrays = []
            for prior, fetch in op.constraints:
                arr = fetch(assignment[prior])
                if arr.shape[0] == 0:
                    return _EMPTY
                arrays.append(arr)
            arrays.sort(key=len)
            result = arrays[0]
            for arr in arrays[1:]:
                stats.intersections += 1
                result = intersect_sorted(result, arr)
                if result.shape[0] == 0:
                    return _EMPTY
        else:
            result = op.static_pool
        for prior, fetch in op.negations:
            if result.shape[0] == 0:
                break
            stats.negation_checks += 1
            excluded = fetch(assignment[prior])
            if excluded.shape[0] == 0:
                continue
            # Sorted-array membership: forbid candidates present in the
            # exclusion list (vectorized version of Definition 1's check).
            idx = np.searchsorted(excluded, result)
            idx[idx == excluded.shape[0]] = excluded.shape[0] - 1
            violates = excluded[idx] == result
            if violates.any():
                result = result[~violates]
        return result
