"""Suspend/resume checkpoints for the streaming executor.

Because the executor keeps its entire search state in an explicit
:class:`~repro.engine.executor.SearchState` (frame stack, scan cursors,
injectivity set), a suspended run serializes to a small JSON document and
resumes *mid-frame*: the per-depth candidate lists are stored verbatim, so
the resumed scan continues at the exact cursor position and the combined
embedding count is identical to an uninterrupted run.

Checkpoint document (``format`` = ``"repro-checkpoint"``, ``version`` 1)::

    {
      "format": "repro-checkpoint", "version": 1,
      "pattern":  {"text": ..., "digest": ...},       # the query pattern
      "store":    {"version": ..., "digest": ...},    # guard, see below
      "query":    {"variant", "planner", "restrictions", "seed", "use_sce"},
      "limits":   {"max_embeddings", "time_limit"},
      "progress": {"emitted", "stop_reason", "degradation", "counters"},
      "state":    <SearchState payload>
    }

**Compatibility guard.** A checkpoint stores candidate lists of concrete
data-vertex ids, so it is only valid against the exact store it was taken
from. Resume re-derives both guards — the pattern digest (from the
re-parsed pattern text) and the store digest (vertex/edge counts plus every
cluster's key and size) — and refuses with :class:`~repro.errors.CheckpointError`
on any mismatch, including a bumped :attr:`~repro.ccsr.store.CCSRStore.version`
(incremental updates rebuild clusters, invalidating the lists). Planning is
deterministic given an identical store, so the recompiled physical plan has
the same op sequence the frame stack was built against.

The SCE candidate memo is deliberately *not* checkpointed — like CEMR's
redundant extensions it is a pure cache, so a resumed run recomputes what
it needs; counters, in contrast, are restored so stats stay cumulative
across the suspend/resume boundary.
"""

from __future__ import annotations

import hashlib
import json
import os

from typing import TYPE_CHECKING, Any

from repro.engine.executor import EmbeddingStream, SearchState
from repro.engine.results import STOP_QUARANTINED, MatchOptions
from repro.errors import CheckpointError

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from repro.ccsr.store import CCSRStore
    from repro.core.variants import Variant
    from repro.engine.governor import ResourceGovernor
    from repro.engine.session import MatchSession
    from repro.graph.model import Graph

CHECKPOINT_FORMAT = "repro-checkpoint"
CHECKPOINT_VERSION = 1

#: Filename prefix of poison-unit residue documents in a pool checkpoint
#: directory. ``load_checkpoint_dir`` skips them (resume must not re-run
#: what ``csce retry-quarantined`` replays — that would double count).
QUARANTINE_PREFIX = "quarantine-"

#: Declared wire-format manifests for this module, gated by the
#: ``wire_schema`` reprolint pass: every listed encoder must write exactly
#: the declared key set (including the format/version stamps), every
#: listed decoder may read only declared keys, and changing a ``keys``
#: tuple without bumping the format's version fails
#: ``reprolint --diff`` (see docs/static-analysis.md). Encoder/decoder
#: entries are ``"func"`` / ``"Class.method"``, optionally suffixed
#: ``":var"`` to name the local dict that becomes the document.
WIRE_MANIFESTS: dict[str, dict] = {
    "checkpoint": {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "keys": (
            "format",
            "version",
            "pattern",
            "store",
            "query",
            "limits",
            "progress",
            "state",
        ),
        "encoders": (
            "checkpoint_payload",
            "PoolCheckpointDir.write:payload",
        ),
        "decoders": (
            "validate_checkpoint",
            "restore_stream",
            "check_store_compatibility",
        ),
    },
    "quarantine-residue": {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "keys": (
            "format",
            "version",
            "pattern",
            "store",
            "query",
            "limits",
            "progress",
            "state",
            "quarantine",
        ),
        "encoders": ("PoolCheckpointDir.write_quarantine:payload",),
        "decoders": ("validate_checkpoint",),
    },
}

#: Runtime counters carried across the suspend/resume boundary.
_RUNTIME_COUNTERS = (
    "nodes",
    "backtracks",
    "prunes_injective",
    "prunes_restriction",
)
_CANDIDATE_COUNTERS = (
    "computed",
    "memo_hits",
    "memo_misses",
    "intersections",
    "negation_checks",
)

#: Sentinel for "keep the checkpoint's limit" in resume overrides.
KEEP = object()


def _digest(obj: object) -> str:
    return hashlib.sha256(repr(obj).encode("utf-8")).hexdigest()


def pattern_digest(pattern: Graph) -> str:
    """Canonical digest of a pattern graph (labels + sorted edge set)."""
    labels, edges = pattern.fingerprint()
    return _digest((tuple(labels), sorted(edges, key=repr)))


def store_digest(store: CCSRStore) -> str:
    """Canonical digest of a CCSR store's structure: vertex/edge counts
    plus every cluster's key and entry count. Cheap (no per-edge work)
    yet sensitive to any incremental update."""
    clusters = sorted(
        (str(key), cluster.num_entries)
        for key, cluster in store.clusters.items()
    )
    return _digest((store.num_vertices, store.num_edges, clusters))


def base_sections(
    store: CCSRStore,
    pattern: Graph,
    variant: Variant | str,
    planner: str,
    options: MatchOptions,
) -> dict:
    """The query-identity sections every checkpoint document shares —
    format/version header, pattern and store guards, query, limits.
    Shared by the single-stream serializer below and the pool's per-shard
    writer (:class:`PoolCheckpointDir`)."""
    from repro.graph.io import format_graph_text, parse_graph_text

    # Digest the *re-parsed* text so the guard survives the label
    # stringification of the text format (int labels round-trip as int,
    # everything else as str).
    text = format_graph_text(pattern)
    digest = pattern_digest(parse_graph_text(text))
    seed = options.seed
    return {
        "format": CHECKPOINT_FORMAT,
        "version": CHECKPOINT_VERSION,
        "pattern": {"text": text, "digest": digest},
        "store": {
            "version": store.version,
            "digest": store_digest(store),
            "num_vertices": store.num_vertices,
            "num_edges": store.num_edges,
            "name": store.name,
        },
        "query": {
            "variant": getattr(variant, "value", str(variant)),
            "planner": planner,
            "restrictions": [
                list(pair) for pair in (options.restrictions or ())
            ],
            "seed": sorted(seed.items()) if seed else None,
            "use_sce": options.use_sce,
        },
        "limits": {
            "max_embeddings": options.max_embeddings,
            "time_limit": options.time_limit,
        },
    }


def checkpoint_payload(
    stream: EmbeddingStream,
    store: CCSRStore,
    pattern: Graph,
    variant: Variant | str,
    planner: str,
) -> dict:
    """Serialize a suspended :class:`EmbeddingStream` to a checkpoint
    document. The stream must not be iterated afterwards (the state
    snapshot aliases its live frame stack)."""
    runtime = stream.runtime
    options = stream.options
    return {
        **base_sections(store, pattern, variant, planner, options),
        "progress": {
            "emitted": runtime.emitted,
            "stop_reason": runtime.stop_reason,
            "degradation": list(runtime.degradation),
            "counters": {
                **{k: getattr(runtime, k) for k in _RUNTIME_COUNTERS},
                **{
                    k: getattr(runtime.computer.stats, k)
                    for k in _CANDIDATE_COUNTERS
                },
            },
        },
        "state": stream.state.to_payload(),
    }


def _write_json_atomic(path: str | os.PathLike, payload: dict) -> None:
    """Write ``payload`` to ``path`` via a pid-unique temp file + atomic
    rename. The pid suffix keeps concurrent writers (pool workers and
    their parent checkpointing against the same directory) from clobbering
    each other's in-flight temp file; ``os.replace`` makes the final
    document appear atomically either way."""
    tmp = f"{path}.{os.getpid()}.tmp"
    try:
        with open(tmp, "w", encoding="utf-8") as handle:
            json.dump(payload, handle)
            handle.write("\n")
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise


def write_checkpoint(
    path: str | os.PathLike,
    stream: EmbeddingStream,
    store: CCSRStore,
    pattern: Graph,
    variant: Variant | str,
    planner: str,
) -> dict:
    """Write a checkpoint document to ``path`` (atomically, via a temp
    file) and return it."""
    payload = checkpoint_payload(stream, store, pattern, variant, planner)
    _write_json_atomic(path, payload)
    return payload


def load_checkpoint(path: str | os.PathLike) -> dict:
    """Read and structurally validate a checkpoint document."""
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"checkpoint {path} is not valid JSON: {exc}"
        ) from exc
    validate_checkpoint(payload)
    return payload


def validate_checkpoint(payload: dict) -> None:
    """Raise :class:`CheckpointError` unless ``payload`` is a structurally
    complete checkpoint of a supported version."""
    if not isinstance(payload, dict):
        raise CheckpointError("checkpoint must be a JSON object")
    if payload.get("format") != CHECKPOINT_FORMAT:
        raise CheckpointError(
            f"not a checkpoint document (format={payload.get('format')!r})"
        )
    if payload.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"unsupported checkpoint version {payload.get('version')!r}"
            f" (this build reads version {CHECKPOINT_VERSION})"
        )
    for section in ("pattern", "store", "query", "limits", "progress", "state"):
        if not isinstance(payload.get(section), dict):
            raise CheckpointError(f"checkpoint is missing section {section!r}")
    for field in ("assignment", "used", "values", "index", "emitted_at", "pos"):
        if field not in payload["state"]:
            raise CheckpointError(
                f"checkpoint state is missing field {field!r}"
            )


def check_store_compatibility(payload: dict, store: CCSRStore) -> None:
    """Refuse to resume onto a store that is not byte-for-byte the one the
    checkpoint was taken from."""
    recorded = payload["store"]
    if recorded.get("version") != store.version:
        raise CheckpointError(
            f"store has mutated since the checkpoint was written"
            f" (checkpoint store version {recorded.get('version')},"
            f" current {store.version}); the checkpointed candidate lists"
            " are invalid — re-run the query instead of resuming"
        )
    if recorded.get("digest") != store_digest(store):
        raise CheckpointError(
            "store contents do not match the checkpoint (digest mismatch);"
            " resuming would corrupt counts — re-run the query instead"
        )


def worker_scoped_path(path: str | os.PathLike, worker: int | str) -> str:
    """Scope a checkpoint path to one pool worker: ``cp.json`` →
    ``cp-w3.json`` for worker 3. Distinct final paths (plus the
    pid-unique temp files of :func:`_write_json_atomic`) are what make N
    workers and their parent safe to checkpoint concurrently against one
    target."""
    root, ext = os.path.splitext(str(path))
    label = worker if isinstance(worker, str) else f"w{worker}"
    return f"{root}-{label}{ext or '.json'}"


class CheckpointSink:
    """Auto-checkpoint hook attached to an :class:`EmbeddingStream`.

    ``CSCE.match_iter(..., checkpoint_path=...)`` installs one; when the
    stream stops early with a resumable ``stop_reason`` the sink writes
    the checkpoint document to ``path``. ``written`` holds the last
    document (None until a write happens). The live inspector's
    ``checkpoint-now`` command routes through :meth:`write_on_demand`,
    which additionally counts in ``on_demand`` — mid-run snapshots of a
    still-running stream, as opposed to the suspend-time write.

    ``worker`` (a pool worker id) scopes ``path`` through
    :func:`worker_scoped_path` so concurrent sinks never share a
    filename; :func:`load_checkpoint_dir` reassembles the shards."""

    def __init__(
        self,
        path: str | os.PathLike,
        store: CCSRStore,
        pattern: Graph,
        variant: Variant | str,
        planner: str,
        worker: int | str | None = None,
    ) -> None:
        if worker is not None:
            path = worker_scoped_path(path, worker)
        self.path = path
        self.store = store
        self.pattern = pattern
        self.variant = variant
        self.planner = planner
        self.written: dict | None = None
        self.on_demand = 0

    def write(self, stream: EmbeddingStream) -> None:
        self.written = write_checkpoint(
            self.path, stream, self.store, self.pattern, self.variant,
            self.planner,
        )

    def write_on_demand(self, stream: EmbeddingStream) -> dict:
        """Write a mid-run checkpoint (inspector ``checkpoint-now`` /
        SIGUSR2). Must run at a consistent point of the stream — a
        heartbeat tick on the executor thread, or after the run ended."""
        self.write(stream)
        self.on_demand += 1
        assert self.written is not None
        return self.written


def restore_stream(
    payload: dict,
    session: MatchSession,
    max_embeddings: Any = KEEP,
    time_limit: Any = KEEP,
    governor: ResourceGovernor | None = None,
    obs: Any = None,
    checkpoint_path: str | os.PathLike | None = None,
) -> EmbeddingStream:
    """Rebuild a live :class:`EmbeddingStream` from a checkpoint document.

    ``session`` is the :class:`repro.engine.session.MatchSession` holding
    the (unchanged) store; the physical plan is recompiled through it —
    planning is deterministic against an identical store, which the
    compatibility guard enforces first. ``max_embeddings``/``time_limit``
    default to the checkpoint's own limits (pass an override — including
    ``None`` for unlimited — to change them; a fresh ``time_limit`` budget
    restarts from resume time). ``checkpoint_path`` re-arms
    auto-checkpointing on the resumed stream.
    """
    from repro.core.variants import Variant
    from repro.graph.io import parse_graph_text

    validate_checkpoint(payload)
    check_store_compatibility(payload, session.store)

    pattern_block = payload["pattern"]
    pattern = parse_graph_text(pattern_block["text"], name="checkpoint")
    if pattern_digest(pattern) != pattern_block.get("digest"):
        raise CheckpointError(
            "checkpoint pattern does not match its digest (corrupt document)"
        )

    query = payload["query"]
    variant = Variant.parse(query["variant"])
    planner = query["planner"]
    restrictions = (
        tuple((int(u), int(v)) for u, v in query["restrictions"])
        if query["restrictions"]
        else None
    )
    seed = (
        {int(u): int(v) for u, v in query["seed"]}
        if query.get("seed")
        else None
    )
    limits = payload["limits"]
    if max_embeddings is KEEP:
        max_embeddings = limits.get("max_embeddings")
    if time_limit is KEEP:
        time_limit = limits.get("time_limit")

    compiled = session.compile(
        pattern, variant, planner=planner, restrictions=restrictions, obs=obs
    )
    progress = payload["progress"]
    degradation = list(progress.get("degradation") or [])
    # A run that degraded past "disable_memo" must not re-enable the memo
    # on resume — the memory pressure that forced it off is still the
    # operative assumption until the governor says otherwise.
    use_sce = bool(query["use_sce"]) and "disable_memo" not in degradation
    options = MatchOptions(
        max_embeddings=max_embeddings,
        time_limit=time_limit,
        use_sce=use_sce,
        restrictions=restrictions,
        seed=seed,
        obs=obs if obs is not None and getattr(obs, "enabled", False) else None,
        governor=governor,
    )
    sink = None
    if checkpoint_path is not None:
        sink = CheckpointSink(
            checkpoint_path, session.store, pattern, variant, planner
        )
    state = SearchState.from_payload(payload["state"])
    stream = EmbeddingStream(
        compiled.physical,
        options,
        state=state,
        emitted=int(progress["emitted"]),
        checkpoint_sink=sink,
    )
    counters = progress.get("counters") or {}
    runtime = stream.runtime
    for key in _RUNTIME_COUNTERS:
        if key in counters:
            setattr(runtime, key, int(counters[key]))
    for key in _CANDIDATE_COUNTERS:
        if key in counters:
            setattr(runtime.computer.stats, key, int(counters[key]))
    runtime.degradation = degradation
    runtime.gov_stage = 2 if "disable_memo" in degradation else 0
    return stream


def load_checkpoint_dir(directory: str | os.PathLike) -> list[dict]:
    """Load every shard checkpoint in a pool checkpoint directory.

    Returns the validated documents in sorted-filename order and enforces
    that all shards describe the *same* query against the *same* store
    (pattern digest, store version/digest, and query section must agree) —
    a directory of unrelated checkpoints is refused rather than summed
    into a nonsense count.
    """
    try:
        names = sorted(
            name
            for name in os.listdir(directory)
            if name.endswith(".json")
            and not name.startswith(QUARANTINE_PREFIX)
        )
    except OSError as exc:
        raise CheckpointError(
            f"cannot read checkpoint directory {directory}: {exc}"
        ) from exc
    if not names:
        raise CheckpointError(
            f"checkpoint directory {directory} contains no *.json shards"
        )
    payloads = [
        load_checkpoint(os.path.join(directory, name)) for name in names
    ]
    _check_same_query(names, payloads, "pool checkpoint")
    return payloads


def _check_same_query(
    names: list[str], payloads: list[dict], what: str
) -> None:
    """Refuse a directory whose documents describe different queries or
    stores — summing unrelated checkpoints yields a nonsense count."""
    first = payloads[0]
    for name, payload in zip(names[1:], payloads[1:]):
        mismatched = next(
            (
                section
                for section, a, b in (
                    (
                        "pattern",
                        first["pattern"]["digest"],
                        payload["pattern"]["digest"],
                    ),
                    ("store", first["store"], payload["store"]),
                    ("query", first["query"], payload["query"]),
                )
                if a != b
            ),
            None,
        )
        if mismatched is not None:
            raise CheckpointError(
                f"shard {name} does not belong to this {what}"
                f" ({mismatched} section differs from {names[0]})"
            )


def load_quarantine_dir(
    directory: str | os.PathLike,
) -> list[tuple[str, dict]]:
    """Load every ``quarantine-NNNN.json`` residue document in a pool
    checkpoint directory.

    Returns ``(path, payload)`` pairs in sorted-filename order — the
    paths let ``csce retry-quarantined`` delete each residue file once
    its replay has been folded in. Each document is a standard version-1
    checkpoint (validated like any shard, same-query enforcement
    included) with an extra ``quarantine`` metadata block
    (``{"unit", "attempts", "error"}``). Raises
    :class:`~repro.errors.CheckpointError` when the directory holds no
    quarantine residue.
    """
    try:
        names = sorted(
            name
            for name in os.listdir(directory)
            if name.startswith(QUARANTINE_PREFIX) and name.endswith(".json")
        )
    except OSError as exc:
        raise CheckpointError(
            f"cannot read checkpoint directory {directory}: {exc}"
        ) from exc
    if not names:
        raise CheckpointError(
            f"checkpoint directory {directory} contains no"
            f" {QUARANTINE_PREFIX}*.json residue — nothing to retry"
        )
    paths = [os.path.join(directory, name) for name in names]
    payloads = [load_checkpoint(path) for path in paths]
    _check_same_query(names, payloads, "quarantine set")
    return list(zip(paths, payloads))


class PoolCheckpointDir:
    """Checkpoint writer for a partially-completed worker pool.

    One standard version-1 checkpoint document per *unfinished* work
    unit, written as ``shard-NNNN.json`` into ``directory`` — each shard
    is a complete, standalone-resumable checkpoint (``csce match
    --resume`` on a single shard file works), and
    :func:`load_checkpoint_dir` + ``CSCE.resume_pool`` re-enqueue all of
    them. The pool's *completed* progress (merged emitted count and
    counters) rides on shard 0 only; the other shards carry zero
    progress, so summing ``progress.emitted`` across shards never double
    counts.
    """

    def __init__(
        self,
        directory: str | os.PathLike,
        store: CCSRStore,
        pattern: Graph,
        variant: Variant | str,
        planner: str,
    ) -> None:
        self.directory = str(directory)
        self.store = store
        self.pattern = pattern
        self.variant = variant
        self.planner = planner
        self.written: list[str] = []

    def write(
        self,
        options: MatchOptions,
        units: list[dict],
        emitted: int,
        counters: dict,
        stop_reason: str | None,
        degradation: list[str],
    ) -> list[str]:
        """Write one shard checkpoint per unit state payload; returns the
        written paths. ``emitted``/``counters`` are the pool's *confirmed*
        completed totals (attached to shard 0)."""
        os.makedirs(self.directory, exist_ok=True)
        base = base_sections(
            self.store, self.pattern, self.variant, self.planner, options
        )
        self.written = []
        for i, state_payload in enumerate(units):
            path = os.path.join(self.directory, f"shard-{i:04d}.json")
            payload = {
                **base,
                "progress": {
                    "emitted": emitted if i == 0 else 0,
                    "stop_reason": stop_reason,
                    "degradation": list(degradation) if i == 0 else [],
                    "counters": dict(counters) if i == 0 else {},
                },
                "state": state_payload,
            }
            _write_json_atomic(path, payload)
            self.written.append(path)
        return self.written

    def write_quarantine(
        self,
        options: MatchOptions,
        state_payload: dict,
        unit: int,
        attempts: int,
        error: str | None,
    ) -> str:
        """Write one poison unit's residue as ``quarantine-NNNN.json``
        (``NNNN`` = the pool unit id) and return the path.

        The document is a standard version-1 checkpoint — the unit's
        current payload, zero progress (nothing of it was merged since
        its last bank) — plus a ``quarantine`` metadata block recording
        why it was exiled. ``csce match --resume`` on the file works,
        but the intended replay path is ``csce retry-quarantined``,
        which folds and deletes the residue."""
        os.makedirs(self.directory, exist_ok=True)
        path = os.path.join(
            self.directory, f"{QUARANTINE_PREFIX}{unit:04d}.json"
        )
        payload = {
            **base_sections(
                self.store, self.pattern, self.variant, self.planner, options
            ),
            "progress": {
                "emitted": 0,
                "stop_reason": STOP_QUARANTINED,
                "degradation": [],
                "counters": {},
            },
            "state": dict(state_payload),
            "quarantine": {
                "unit": int(unit),
                "attempts": int(attempts),
                "error": error,
            },
        }
        _write_json_atomic(path, payload)
        return path
