"""Physical plans: the compiled, directly-executable form of a logical plan.

A :class:`~repro.core.plan.Plan` describes *what* each matching step must
check; this module lowers it once into a tuple of :class:`ExtendOp` step
operators that describe *how* — with everything the hot loop needs resolved
at compile time instead of per search-tree node:

* backward edge constraints become prebound cluster fetchers
  (``cluster.successors`` / ``cluster.predecessors``), so the executor calls
  one function per constraint with no direction branch and no attribute
  lookups;
* vertex-induced negation probes likewise become prebound exclusion-list
  fetchers (the direction arithmetic of
  :meth:`~repro.core.plan.NegationConstraint.exclusion_array` runs once,
  here);
* SCE memo specs are interned to small integer ``spec_id``\\ s — NEC-
  equivalent steps share an id and therefore share cached candidate sets;
* symmetry restrictions are folded into per-step slots evaluated at the
  position where their later endpoint is matched;
* seed pins ride on the op (:meth:`PhysicalPlan.with_seed` rebinding is a
  cheap dataclass replace, so continuous matching reuses one compiled plan
  across every pin of a delta).

Compilation is cheap (linear in plan size) and separated from planning so a
:class:`repro.engine.MatchSession` can cache the result per
``(pattern fingerprint, variant, planner, restrictions, store version)``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, replace
from typing import Any, Callable

import numpy as np

from repro.ccsr.store import FORWARD
from repro.core.plan import SUCCESSORS, Plan
from repro.core.variants import Variant
from repro.errors import PlanError
from repro.graph.model import Graph


@dataclass(frozen=True)
class ExtendOp:
    """One physical matching step: extend the embedding by one vertex.

    All fields are resolved at compile time; execution only indexes into
    them. ``constraints`` and ``negations`` hold ``(prior, fetch)`` pairs
    where ``fetch(f(prior))`` returns a sorted neighbor array to intersect
    (respectively to exclude). ``restrictions`` holds
    ``(other_vertex, candidate_is_smaller)`` order checks anchored at this
    step. ``pin`` fixes the step to a single data vertex (seeded runs).
    """

    pos: int
    u: int
    spec_id: int
    priors: tuple[int, ...]
    constraints: tuple[tuple[int, Callable[[int], np.ndarray]], ...]
    negations: tuple[tuple[int, Callable[[int], np.ndarray]], ...]
    static_pool: np.ndarray | None
    restrictions: tuple[tuple[int, bool], ...] = ()
    pin: int | None = None


@dataclass(frozen=True)
class PhysicalPlan:
    """A compiled plan: one :class:`ExtendOp` per order position.

    Holds a reference to the logical plan it was lowered from (for the
    variant, the dependency DAG used by count factorization, and the
    EXPLAIN metadata). Immutable; per-run state lives in the executor.
    """

    logical: Plan
    ops: tuple[ExtendOp, ...]
    restrictions: tuple[tuple[int, int], ...]
    num_specs: int
    compile_seconds: float

    @property
    def num_vertices(self) -> int:
        return len(self.ops)

    @property
    def order(self) -> list[int]:
        return self.logical.order

    @property
    def variant(self) -> Variant:
        return self.logical.variant

    @property
    def injective(self) -> bool:
        return self.logical.variant.injective

    @property
    def has_pins(self) -> bool:
        return any(op.pin is not None for op in self.ops)

    def impossible(self) -> bool:
        """True when a pattern edge has no cluster: zero embeddings."""
        return self.logical.impossible()

    def with_seed(self, seed: dict[int, int] | None) -> PhysicalPlan:
        """A copy whose pins are exactly ``seed`` (others cleared).

        This is the continuous-matching fast path: one compiled plan is
        rebound per pin instead of recompiled, so only the two pinned ops
        are replaced.
        """
        pinned = dict(seed) if seed else {}
        ops = tuple(
            replace(op, pin=pinned.get(op.u))
            if op.u in pinned or op.pin is not None
            else op
            for op in self.ops
        )
        return replace(self, ops=ops)

    def step_table(self) -> list[dict[str, Any]]:
        """Per-op summary rows for EXPLAIN output and the profiler."""
        return [
            {
                "position": op.pos,
                "vertex": op.u,
                "spec": op.spec_id,
                "constraints": len(op.constraints),
                "negations": len(op.negations),
                "static_pool": (
                    None if op.static_pool is None else int(len(op.static_pool))
                ),
                "restrictions": len(op.restrictions),
                "pinned": op.pin is not None,
            }
            for op in self.ops
        ]

    def __repr__(self) -> str:
        return (
            f"<PhysicalPlan {len(self.ops)} ops"
            f" specs={self.num_specs} variant={self.logical.variant}>"
        )


def pattern_fingerprint(pattern: Graph) -> tuple:
    """A hashable structural identity for plan-cache keys.

    Two patterns with the same fingerprint produce the same plan against
    the same store (labels and canonical edge set match exactly; this is
    structural identity, not isomorphism).
    """
    return pattern.fingerprint()


def compile_plan(
    plan: Plan,
    restrictions: tuple[tuple[int, int], ...] | None = None,
    seed: dict[int, int] | None = None,
) -> PhysicalPlan:
    """Lower a logical plan into its physical operators.

    ``restrictions`` are baked into per-step slots (each pair checked at
    the position where its later endpoint is matched); ``seed`` pins ride
    on the ops and can be rebound later with
    :meth:`PhysicalPlan.with_seed`.
    """
    start = time.perf_counter()
    n = plan.num_vertices
    position = plan.position
    restrictions = tuple(restrictions) if restrictions else ()
    restriction_at: list[list[tuple[int, bool]]] = [[] for _ in range(n)]
    for u, v in restrictions:
        if u == v or not (0 <= u < n and 0 <= v < n):
            raise PlanError(
                f"restriction ({u}, {v}) does not name two distinct"
                f" pattern vertices of a {n}-vertex pattern"
            )
        if position[u] > position[v]:
            restriction_at[position[u]].append((v, True))
        else:
            restriction_at[position[v]].append((u, False))
    pinned = dict(seed) if seed else {}

    # Intern each distinct memo spec as a small int: NEC-equivalent
    # positions share the same id, and hashing an int beats re-hashing the
    # nested spec tuple on every candidate lookup.
    spec_ids: dict[tuple, int] = {}
    ops: list[ExtendOp] = []
    for pos in range(n):
        u = plan.order[pos]
        constraints = tuple(
            (
                c.prior,
                c.cluster.successors
                if c.direction == SUCCESSORS
                else c.cluster.predecessors,
            )
            for c in plan.backward[pos]
        )
        negations = []
        for negation in plan.negations[pos]:
            # Same direction arithmetic as NegationConstraint.exclusion_array,
            # evaluated once here instead of per probe.
            use_successors = (negation.check.mode == FORWARD) != negation.swap
            cluster = negation.check.cluster
            negations.append(
                (
                    negation.prior,
                    cluster.successors if use_successors else cluster.predecessors,
                )
            )
        ops.append(
            ExtendOp(
                pos=pos,
                u=u,
                spec_id=spec_ids.setdefault(plan.memo_specs[pos], len(spec_ids)),
                priors=plan.memo_priors[pos],
                constraints=constraints,
                negations=tuple(negations),
                static_pool=plan.first_candidates[pos],
                restrictions=tuple(restriction_at[pos]),
                pin=pinned.get(u),
            )
        )
    return PhysicalPlan(
        logical=plan,
        ops=tuple(ops),
        restrictions=restrictions,
        num_specs=len(spec_ids),
        compile_seconds=time.perf_counter() - start,
    )
