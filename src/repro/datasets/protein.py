"""Protein-interaction network stand-ins: DIP, Yeast, Human, HPRD.

All four originals are undirected with heavy-tailed degree distributions;
they differ in density and vertex-label count (Table IV): DIP is unlabeled
(avg degree 8.9), Yeast has 71 labels (8.1), Human is dense with 44 labels
(36.9), HPRD has 304 labels (7.5). The builders keep those label counts and
density classes at ~1/4 to ~1/2 scale in vertices.
"""

from __future__ import annotations

from repro.graph.generators import power_law_graph
from repro.graph.model import Graph


def dip(scale: float = 1.0, seed: int = 101) -> Graph:
    """DIP stand-in: unlabeled, avg degree ~9 (paper: 4,935 V / 21,975 E)."""
    n = max(20, int(1200 * scale))
    return power_law_graph(n, 4, num_labels=0, seed=seed, name="dip")


def yeast(scale: float = 1.0, seed: int = 102) -> Graph:
    """Yeast stand-in: 71 labels, avg degree ~8 (paper: 3,101 V / 12,519 E)."""
    n = max(20, int(800 * scale))
    return power_law_graph(n, 4, num_labels=71, seed=seed, name="yeast")


def human(scale: float = 1.0, seed: int = 103) -> Graph:
    """Human stand-in: 44 labels, dense (paper: 4,674 V / 86,282 E, deg 36.9)."""
    n = max(30, int(1000 * scale))
    return power_law_graph(n, 9, num_labels=44, seed=seed, name="human")


def hprd(scale: float = 1.0, seed: int = 104) -> Graph:
    """HPRD stand-in: 304 labels, sparse (paper: 9,303 V / 34,998 E)."""
    n = max(40, int(2000 * scale))
    return power_law_graph(n, 4, num_labels=304, seed=seed, name="hprd")
