"""EMAIL-EU stand-in for the clustering case study (Section VII-G).

EMAIL-EU records email traffic inside a European research institution, with
each member's department as ground truth. The case study clusters members
by communication patterns: an edge-based approach reaches F1 ≈ 0.4, while
higher-order clustering over 8-clique co-membership reaches ≈ 0.5.

A planted partition supplies the same two ingredients — community ground
truth and within-community clique structure — at a scale the pure-Python
engine can enumerate 8-cliques on. ``p_in`` is high because real
departments' email cores are near-cliques; ``p_out`` adds the cross-
department noise that degrades edge-based clustering.
"""

from __future__ import annotations

from repro.graph.generators import planted_partition
from repro.graph.model import Graph


def email_eu(
    num_departments: int = 6,
    department_size: int = 14,
    p_in: float = 0.85,
    p_out: float = 0.15,
    seed: int = 110,
) -> tuple[Graph, list[int]]:
    """The email graph and its ground-truth department per vertex."""
    graph, membership = planted_partition(
        num_departments, department_size, p_in, p_out, seed=seed, name="email-eu"
    )
    return graph, membership
