"""Online-social-network stand-ins: LiveJournal and Orkut.

Both originals are massive and heavy-tailed. LiveJournal (paper: 4.0M V /
34.7M E, directed, unlabeled, max out-degree 14,703) comes from the
Graphflow suite; Orkut (3.1M V / 117M E, 50 labels, undirected, from
GraphPi) is the densest dataset in the evaluation. The stand-ins keep
directedness, label counts, and the dense/heavy-tailed shape.
"""

from __future__ import annotations

from repro.graph.generators import power_law_graph
from repro.graph.model import Graph


def livejournal(scale: float = 1.0, seed: int = 108) -> Graph:
    """LiveJournal stand-in: directed, unlabeled, heavy-tailed."""
    n = max(50, int(3000 * scale))
    return power_law_graph(
        n, 8, num_labels=0, directed=True, seed=seed, name="livejournal"
    )


def orkut(scale: float = 1.0, seed: int = 109) -> Graph:
    """Orkut stand-in: undirected, 50 labels, densest of the suite."""
    n = max(60, int(2000 * scale))
    return power_law_graph(n, 15, num_labels=50, seed=seed, name="orkut")
