"""Dataset stand-ins for the paper's evaluation graphs (Table IV).

The paper evaluates on nine public real-world graphs plus EMAIL-EU. Without
network access (and without a C++ engine able to chew through millions of
vertices), each dataset is replaced by a *seeded synthetic generator that
reproduces its shape*: degree-distribution class, vertex-label count,
directedness, and relative density — the properties the evaluation actually
varies. Scales default to a few thousand vertices (documented per dataset)
and every builder accepts a ``scale`` factor.
"""

from repro.datasets.registry import (
    DATASET_NAMES,
    DatasetSpec,
    dataset_table,
    get_spec,
    load_dataset,
)
from repro.datasets.email import email_eu

__all__ = [
    "DATASET_NAMES",
    "DatasetSpec",
    "dataset_table",
    "get_spec",
    "load_dataset",
    "email_eu",
]
