"""Road-network stand-in: RoadCA.

RoadCA (paper: 1,965,206 V / 2,766,607 E, avg degree 2.8, unlabeled) is a
near-planar grid-like graph with tiny maximum degree — the shape that makes
pattern matching fast per embedding but gives sparse patterns enormous
counts. A perturbed lattice reproduces both properties.
"""

from __future__ import annotations

from repro.graph.generators import grid_graph
from repro.graph.model import Graph


def roadca(scale: float = 1.0, seed: int = 105) -> Graph:
    """RoadCA stand-in: perturbed lattice, avg degree ~2.8, unlabeled."""
    side = max(6, int(55 * (scale**0.5)))
    graph = grid_graph(side, side, extra_edge_prob=0.05, seed=seed, name="roadca")
    return graph
