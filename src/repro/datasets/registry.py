"""The dataset registry — Table IV, regenerated.

Maps the paper's dataset names to their synthetic builders and records the
original statistics for side-by-side comparison. ``dataset_table()``
produces the reproduction's Table IV from the actually-built graphs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.datasets import citation, protein, road, social
from repro.errors import ReproError
from repro.graph.algorithms import degree_statistics
from repro.graph.model import Graph


@dataclass(frozen=True)
class DatasetSpec:
    """One Table IV row: the builder plus the original's statistics."""

    name: str
    builder: Callable[..., Graph]
    directed: bool
    paper_vertices: int
    paper_edges: int
    paper_labels: int
    paper_avg_degree: float

    def build(self, scale: float = 1.0, **kwargs) -> Graph:
        return self.builder(scale=scale, **kwargs)


_SPECS = [
    DatasetSpec("dip", protein.dip, False, 4_935, 21_975, 0, 8.9),
    DatasetSpec("yeast", protein.yeast, False, 3_101, 12_519, 71, 8.1),
    DatasetSpec("human", protein.human, False, 4_674, 86_282, 44, 36.9),
    DatasetSpec("hprd", protein.hprd, False, 9_303, 34_998, 304, 7.5),
    DatasetSpec("roadca", road.roadca, False, 1_965_206, 2_766_607, 0, 2.8),
    DatasetSpec("orkut", social.orkut, False, 3_072_441, 117_185_083, 50, 76.3),
    DatasetSpec("patent", citation.patent, False, 3_774_768, 33_037_894, 20, 8.8),
    DatasetSpec(
        "subcategory", citation.subcategory, True, 2_745_763, 13_965_410, 36, 10.2
    ),
    DatasetSpec(
        "livejournal", social.livejournal, True, 3_997_962, 34_681_189, 0, 17.3
    ),
]

_REGISTRY = {spec.name: spec for spec in _SPECS}
DATASET_NAMES = tuple(_REGISTRY)


def get_spec(name: str) -> DatasetSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ReproError(
            f"unknown dataset {name!r}; available: {', '.join(DATASET_NAMES)}"
        ) from None


def load_dataset(name: str, scale: float = 1.0, **kwargs) -> Graph:
    """Build the named dataset stand-in at the given scale."""
    return get_spec(name).build(scale=scale, **kwargs)


def dataset_table(scale: float = 1.0) -> list[dict]:
    """Regenerate Table IV: paper statistics next to the stand-ins'."""
    rows = []
    for spec in _SPECS:
        graph = spec.build(scale=scale)
        stats = degree_statistics(graph)
        labels = graph.distinct_vertex_labels()
        label_count = 0 if labels == {0} else len(labels)
        rows.append(
            {
                "Data Graph": spec.name,
                "Edge Direction": "D" if spec.directed else "U",
                "Vertex Count": graph.num_vertices,
                "Edge Count": graph.num_edges,
                "Label Count": label_count,
                "Average Degree": round(stats.average_degree, 1),
                "Max In Degree": stats.max_in_degree,
                "Max Out Degree": stats.max_out_degree,
                "Paper Vertex Count": spec.paper_vertices,
                "Paper Edge Count": spec.paper_edges,
                "Paper Label Count": spec.paper_labels,
                "Paper Average Degree": spec.paper_avg_degree,
            }
        )
    return rows
