"""Citation-network stand-ins: Patent and Subcategory.

Patent (paper: 3.77M V / 33M E, 20 labels, undirected in the RM suite) and
Subcategory (2.75M V / 14M E, 36 labels, directed, from the Graphflow
suite) are preferential-attachment shaped. Subcategory additionally carries
edge labels in the Graphflow workloads, which ``subcategory`` reproduces.
Patent is also the paper's relabeling substrate for Figs. 10–13
(20/200/2000 labels), so it exposes ``num_labels``.
"""

from __future__ import annotations

from repro.graph.generators import power_law_graph, random_edge_labels
from repro.graph.model import Graph


def patent(scale: float = 1.0, seed: int = 106, num_labels: int = 20) -> Graph:
    """Patent stand-in: 20 labels by default, avg degree ~8, undirected."""
    n = max(40, int(3000 * scale))
    return power_law_graph(
        n, 4, num_labels=num_labels, seed=seed, name=f"patent-{num_labels}"
    )


def subcategory(scale: float = 1.0, seed: int = 107, num_edge_labels: int = 3) -> Graph:
    """Subcategory stand-in: directed, 36 vertex labels, labeled edges."""
    n = max(40, int(2500 * scale))
    graph = power_law_graph(
        n, 5, num_labels=36, directed=True, seed=seed, name="subcategory"
    )
    if num_edge_labels > 1:
        graph = random_edge_labels(
            graph, num_edge_labels, seed=seed, name="subcategory"
        )
    return graph
