"""Versioned run-reports: serialize one matching run for later analysis.

A run-report is a single JSON document capturing everything the paper's
evaluation reads off a run: the per-phase time breakdown (read / optimize /
execute — the paper's total-time definition, Figs. 6 and 11), the unified
counter set (:data:`repro.obs.counters.STAT_KEYS` plus CCSR read
telemetry), the completed span tree, the plan summary with its
candidate-order rationale, and engine/graph/pattern identity. ``repro
report PATH`` pretty-prints a saved report; :func:`validate_run_report` is
the schema gate CI's smoke job runs.

Reports append cleanly to ``.jsonl`` files (one run per line) so bench
sweeps can stream them.
"""

from __future__ import annotations

import json
import os
from typing import Any

from repro.errors import FormatError
from repro.obs.recorder import KNOWN_EVENTS

RUN_REPORT_FORMAT = "repro-run-report"
RUN_REPORT_VERSION = 1

#: Required top-level fields and their types (the lightweight schema).
_SCHEMA: dict[str, type | tuple] = {
    "format": str,
    "version": int,
    "engine": str,
    "variant": str,
    "count": int,
    "truncated": bool,
    "timed_out": bool,
    "timings": dict,
    "counters": dict,
    "spans": list,
}

_TIMING_KEYS = ("read_seconds", "plan_seconds", "execute_seconds", "total_seconds")

# Valid robustness-field values. Literal copies of
# repro.engine.results.STOP_REASONS and the repro.engine.governor ladder
# events — obs sits below the engine in the layering, so it cannot import
# them (tests pin the two lists against each other instead).
_STOP_REASONS = (
    "time_limit", "embedding_limit", "memory_limit", "cancelled",
    "quarantined",
)
_DEGRADATION_EVENTS = ("evict_memo", "disable_memo", "suspend")

#: Supervision knobs the ``config`` block may stamp, with their JSON
#: types (``None`` is always allowed — the knob was left at "unset").
_CONFIG_KNOBS: dict[str, tuple] = {
    "workers": (int,),
    "stall_timeout": (int, float),
    "max_respawns": (int,),
    "max_unit_attempts": (int,),
}

#: Declared wire-format manifest for the run-report document, gated by
#: the ``wire_schema`` reprolint pass: the encoder must write exactly the
#: declared keys (stamping format/version), the decoders may read only
#: declared keys, and a ``keys`` change without a version bump fails
#: ``reprolint --diff``. See docs/static-analysis.md.
WIRE_MANIFESTS: dict[str, dict] = {
    "run-report": {
        "format": RUN_REPORT_FORMAT,
        "version": RUN_REPORT_VERSION,
        "keys": (
            "format",
            "version",
            "engine",
            "variant",
            "count",
            "truncated",
            "timed_out",
            "stop_reason",
            "degradation",
            "timings",
            "throughput",
            "counters",
            "spans",
            "progress",
            "shards",
            "recorder",
            "profile",
            "plan",
            "pattern",
            "graph",
            "dataset",
            "checkpoint",
            "config",
            "extra",
        ),
        "encoders": ("build_run_report:report",),
        "decoders": (
            "validate_run_report",
            "robustness_problems",
            "_config_problems",
            "_recorder_problems",
            "_progress_problems",
            "_shards_problems",
            "format_run_report",
        ),
    },
}


def schema_problems(
    doc: object, schema: dict[str, type | tuple], label: str = "document"
) -> list[str]:
    """Field-presence/type check shared by run-report and bench-history
    validation; returns the list of problems (empty when clean)."""
    if not isinstance(doc, dict):
        return [f"{label} must be a JSON object"]
    problems: list[str] = []
    for field, expected in schema.items():
        if field not in doc:
            problems.append(f"missing field {field!r}")
        elif not isinstance(doc[field], expected):
            problems.append(
                f"field {field!r} has type {type(doc[field]).__name__}"
            )
    return problems


def build_run_report(
    result: Any,
    engine: str = "CSCE",
    obs: Any = None,
    plan: Any = None,
    graph: Any = None,
    pattern: Any = None,
    dataset: str | None = None,
    extra: dict | None = None,
    checkpoint: dict | None = None,
    config: dict | None = None,
) -> dict:
    """Assemble a run-report dict from a finished ``MatchResult``.

    ``obs`` contributes the span tree and any registry counters beyond
    ``result.stats`` (CCSR read telemetry, heartbeat totals); ``plan``,
    ``graph`` (a ``Graph`` or ``CCSRStore``), and ``pattern`` add identity
    blocks when available. ``checkpoint`` (a ``{"path": ..., "written":
    bool}`` block) records that the run suspended to a resumable
    checkpoint. ``config`` stamps the run's supervision knobs (workers,
    stall_timeout, max_respawns, max_unit_attempts — see
    :data:`_CONFIG_KNOBS`) so a report is reproducible without the
    original command line. The robustness fields ``stop_reason`` and
    ``degradation`` are always present (``None`` / empty for complete
    ungoverned runs).
    """
    counters = dict(result.stats)
    spans: list[dict] = []
    if obs is not None:
        registry = getattr(obs, "counters", None)
        if registry is not None and registry.enabled:
            merged = registry.snapshot()
            # Registry totals win where present; stats fills the gaps.
            counters = {**counters, **merged}
        tracer = getattr(obs, "tracer", None)
        if tracer is not None and tracer.enabled:
            spans = tracer.to_list()
        heartbeat = getattr(obs, "heartbeat", None)
        if heartbeat is not None and heartbeat.enabled:
            counters["heartbeats"] = heartbeat.beats
    profiler = getattr(obs, "profile", None) if obs is not None else None
    recorder = getattr(obs, "recorder", None) if obs is not None else None

    report: dict[str, Any] = {
        "format": RUN_REPORT_FORMAT,
        "version": RUN_REPORT_VERSION,
        "engine": engine,
        "variant": str(result.variant),
        "count": int(result.count),
        "truncated": bool(result.truncated),
        "timed_out": bool(result.timed_out),
        "stop_reason": getattr(result, "stop_reason", None),
        "degradation": list(getattr(result, "degradation", []) or []),
        "timings": {
            "read_seconds": result.read_seconds,
            "plan_seconds": result.plan_seconds,
            "execute_seconds": result.elapsed,
            "total_seconds": result.total_seconds,
        },
        "throughput": result.throughput,
        "counters": counters,
        "spans": spans,
    }
    progress = getattr(result, "progress", None)
    if progress:
        report["progress"] = dict(progress)
    elif obs is not None and getattr(obs, "progress", None) is not None:
        report["progress"] = obs.progress.as_dict()
    shards = getattr(result, "shards", None)
    if shards:
        # Parallel runs carry the merge_run_reports shards block; its
        # per-worker counts must sum exactly to `count`
        # (validate_run_report checks this).
        report["shards"] = dict(shards)
    if recorder is not None and recorder.enabled and recorder.recorded:
        # The flight-recorder tail rides in every instrumented report, so
        # a stopped/faulted run's post-mortem is one document.
        report["recorder"] = recorder.as_dict()
    if profiler is not None and profiler.enabled:
        order = list(plan.order) if plan is not None else None
        report["profile"] = profiler.as_dict(order)
    if plan is not None:
        report["plan"] = plan_summary(plan)
    if pattern is not None:
        report["pattern"] = {
            "name": getattr(pattern, "name", ""),
            "num_vertices": pattern.num_vertices,
            "num_edges": pattern.num_edges,
        }
    if graph is not None:
        block = {
            "name": getattr(graph, "name", ""),
            "num_vertices": graph.num_vertices,
            "num_edges": graph.num_edges,
        }
        num_clusters = getattr(graph, "num_clusters", None)
        if num_clusters is not None:
            block["num_clusters"] = num_clusters
        report["graph"] = block
    if dataset:
        report["dataset"] = dataset
    if checkpoint:
        report["checkpoint"] = dict(checkpoint)
    if config:
        report["config"] = dict(config)
    if extra:
        report["extra"] = dict(extra)
    return report


def plan_summary(plan: Any) -> dict:
    """The plan block of a run-report (order, planner, cluster usage)."""
    task = plan.task_clusters
    summary = {
        "planner": plan.planner_name,
        "variant": str(plan.variant),
        "order": list(plan.order),
        "num_vertices": plan.num_vertices,
        "dag_edges": plan.dag.num_edges,
        "clusters_used": task.num_clusters,
        "bytes_read": task.bytes_read,
        "negation_pairs": len(task.negation_checks),
        "plan_seconds": plan.plan_seconds,
    }
    rationale = getattr(plan, "order_rationale", None)
    if rationale:
        summary["order_rationale"] = list(rationale)
    return summary


# ----------------------------------------------------------------------
# Validation / IO
# ----------------------------------------------------------------------
def validate_run_report(report: dict) -> None:
    """Raise :class:`FormatError` unless ``report`` is a valid v1 report."""
    problems = schema_problems(report, _SCHEMA, label="run-report")
    if not problems:
        if report["format"] != RUN_REPORT_FORMAT:
            problems.append(f"format is {report['format']!r}")
        if report["version"] != RUN_REPORT_VERSION:
            problems.append(f"unsupported version {report['version']!r}")
        for key in _TIMING_KEYS:
            value = report["timings"].get(key)
            if not isinstance(value, (int, float)):
                problems.append(f"timings.{key} missing or non-numeric")
        for name, value in report["counters"].items():
            if not isinstance(value, (int, float)):
                problems.append(f"counter {name!r} is non-numeric")
    if problems:
        raise FormatError("invalid run-report: " + "; ".join(problems))


def robustness_problems(report: dict) -> list[str]:
    """Validate the robustness fields of a run-report (stop reason,
    degradation ladder, checkpoint block); returns the problem list.

    Separate from :func:`validate_run_report` because old reports predate
    these fields: a missing field is fine (legacy report), but a present
    field with a nonsense value is not. ``repro report --validate`` exits 2
    when this returns problems, mirroring the bench-history gate.
    """
    if not isinstance(report, dict):
        return ["run-report must be a JSON object"]
    problems: list[str] = []
    if "stop_reason" in report:
        stop = report["stop_reason"]
        if stop is not None and stop not in _STOP_REASONS:
            problems.append(
                f"stop_reason {stop!r} is not one of {list(_STOP_REASONS)}"
            )
    if "degradation" in report:
        ladder = report["degradation"]
        if not isinstance(ladder, list):
            problems.append("degradation must be a list")
        else:
            for event in ladder:
                if event not in _DEGRADATION_EVENTS:
                    problems.append(
                        f"degradation event {event!r} is not one of"
                        f" {list(_DEGRADATION_EVENTS)}"
                    )
            known = [e for e in ladder if e in _DEGRADATION_EVENTS]
            ranks = [_DEGRADATION_EVENTS.index(e) for e in known]
            if ranks != sorted(ranks) or len(set(ranks)) != len(ranks):
                problems.append(
                    "degradation events out of ladder order"
                    f" (expected subsequence of {list(_DEGRADATION_EVENTS)})"
                )
    if "checkpoint" in report:
        block = report["checkpoint"]
        if not isinstance(block, dict):
            problems.append("checkpoint must be an object")
        else:
            if not isinstance(block.get("path"), str) or not block.get("path"):
                problems.append("checkpoint.path missing or not a string")
            if "written" in block and not isinstance(block["written"], bool):
                problems.append("checkpoint.written must be a boolean")
            on_demand = block.get("on_demand")
            if on_demand is not None and (
                not isinstance(on_demand, int) or isinstance(on_demand, bool)
            ):
                problems.append("checkpoint.on_demand must be an integer")
            if (
                block.get("written")
                and report.get("stop_reason") is None
                and not on_demand
            ):
                problems.append(
                    "checkpoint written but stop_reason is null"
                    " (suspend-time checkpoints only exist for suspended"
                    " runs; on-demand ones must say so in"
                    " checkpoint.on_demand)"
                )
    problems.extend(_recorder_problems(report))
    problems.extend(_progress_problems(report))
    problems.extend(_shards_problems(report))
    problems.extend(_config_problems(report))
    return problems


def _config_problems(report: dict) -> list[str]:
    if "config" not in report:
        return []
    block = report["config"]
    if not isinstance(block, dict):
        return ["config must be an object"]
    problems: list[str] = []
    for knob, types in _CONFIG_KNOBS.items():
        if knob not in block:
            continue
        value = block[knob]
        if value is None:
            continue
        if isinstance(value, bool) or not isinstance(value, types):
            problems.append(
                f"config.{knob} must be null or"
                f" {'/'.join(t.__name__ for t in types)}"
            )
    return problems


def _recorder_problems(report: dict) -> list[str]:
    if "recorder" not in report:
        return []
    block = report["recorder"]
    if not isinstance(block, dict):
        return ["recorder must be an object"]
    problems: list[str] = []
    for key in ("recorded", "dropped"):
        if key in block and (
            not isinstance(block[key], int) or isinstance(block[key], bool)
            or block[key] < 0
        ):
            problems.append(f"recorder.{key} must be a non-negative integer")
    events = block.get("events")
    if not isinstance(events, list):
        problems.append("recorder.events missing or not a list")
        return problems
    for i, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"recorder.events[{i}] is not an object")
            continue
        name = event.get("name")
        if name not in KNOWN_EVENTS:
            problems.append(
                f"recorder.events[{i}].name {name!r} is not one of"
                f" {list(KNOWN_EVENTS)}"
            )
        if not isinstance(event.get("ts"), (int, float)):
            problems.append(f"recorder.events[{i}].ts missing or non-numeric")
    return problems


def _progress_problems(report: dict) -> list[str]:
    if "progress" not in report:
        return []
    block = report["progress"]
    if not isinstance(block, dict):
        return ["progress must be an object"]
    problems: list[str] = []
    percent = block.get("percent")
    if not isinstance(percent, (int, float)) or isinstance(percent, bool):
        problems.append("progress.percent missing or non-numeric")
    elif not 0.0 <= float(percent) <= 100.0:
        problems.append(f"progress.percent {percent!r} is outside [0, 100]")
    eta = block.get("eta_seconds")
    if eta is not None and (
        not isinstance(eta, (int, float)) or isinstance(eta, bool)
        or float(eta) < 0.0
    ):
        problems.append("progress.eta_seconds must be null or non-negative")
    return problems


def _shards_problems(report: dict) -> list[str]:
    if "shards" not in report:
        return []
    block = report["shards"]
    if not isinstance(block, dict):
        return ["shards must be an object"]
    problems: list[str] = []
    count = block.get("count")
    if not isinstance(count, int) or isinstance(count, bool) or count < 1:
        problems.append("shards.count missing or not a positive integer")
    workers = block.get("workers")
    if not isinstance(workers, list) or not all(
        isinstance(w, str) for w in workers
    ):
        problems.append("shards.workers missing or not a list of strings")
    elif isinstance(count, int) and len(workers) != count:
        problems.append(
            f"shards.workers has {len(workers)} entries for"
            f" shards.count {count}"
        )
    counts = block.get("counts")
    if counts is not None:
        if not isinstance(counts, list) or not all(
            isinstance(c, int) and not isinstance(c, bool) for c in counts
        ):
            problems.append("shards.counts must be a list of integers")
        elif sum(counts) != report.get("count"):
            problems.append(
                "shards.counts do not sum to the aggregate count"
                f" ({sum(counts)} != {report.get('count')})"
            )
    quarantined = block.get("quarantined_units")
    if quarantined is not None:
        if (
            not isinstance(quarantined, int)
            or isinstance(quarantined, bool)
            or quarantined < 0
        ):
            problems.append(
                "shards.quarantined_units must be a non-negative integer"
            )
        elif quarantined > 0 and report.get("stop_reason") is None:
            problems.append(
                "shards.quarantined_units is positive but stop_reason is"
                " null (a run with quarantined residue is not complete)"
            )
    return problems


def write_run_report(report: dict, path: str | os.PathLike) -> None:
    """Write one report; ``.jsonl`` paths append a line, others overwrite."""
    text = json.dumps(report, default=str)
    if str(path).endswith(".jsonl"):
        with open(path, "a", encoding="utf-8") as handle:
            handle.write(text + "\n")
    else:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(report, indent=2, default=str) + "\n")


def load_run_reports(path: str | os.PathLike) -> list[dict]:
    """Load report(s) from a ``.json`` file or a ``.jsonl`` stream."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    if str(path).endswith(".jsonl"):
        return [json.loads(line) for line in text.splitlines() if line.strip()]
    loaded = json.loads(text)
    return loaded if isinstance(loaded, list) else [loaded]


# ----------------------------------------------------------------------
# Pretty-printing (the ``repro report`` subcommand)
# ----------------------------------------------------------------------
def _format_span(span: dict, indent: int, lines: list[str]) -> None:
    attrs = span.get("attrs", {})
    shown = ", ".join(f"{k}={v}" for k, v in list(attrs.items())[:4])
    suffix = f"  [{shown}]" if shown else ""
    lines.append(
        f"{'  ' * indent}{span.get('name', '?'):<{max(1, 24 - 2 * indent)}}"
        f" {span.get('duration_seconds', 0.0) * 1000:9.3f} ms{suffix}"
    )
    for child in span.get("children", []):
        _format_span(child, indent + 1, lines)


def format_run_report(report: dict) -> str:
    """Human-readable rendering: identity, phase breakdown, counters, spans."""
    t = report.get("timings", {})
    total = t.get("total_seconds", 0.0) or 0.0
    lines = [
        f"run-report v{report.get('version')} — engine {report.get('engine')}"
        f" / variant {report.get('variant')}",
    ]
    if "dataset" in report:
        lines.append(f"dataset     : {report['dataset']}")
    if "graph" in report:
        g = report["graph"]
        lines.append(
            f"data graph  : {g.get('name', '')} |V|={g.get('num_vertices')}"
            f" |E|={g.get('num_edges')}"
        )
    if "pattern" in report:
        p = report["pattern"]
        lines.append(
            f"pattern     : {p.get('name', '')} |V|={p.get('num_vertices')}"
            f" |E|={p.get('num_edges')}"
        )
    status = []
    stop = report.get("stop_reason")
    if stop:
        status.append(f"stopped: {stop}")
    else:
        if report.get("truncated"):
            status.append("truncated")
        if report.get("timed_out"):
            status.append("timed out")
    lines.append(
        f"embeddings  : {report.get('count')}"
        + (f" ({', '.join(status)})" if status else "")
    )
    ladder = report.get("degradation") or []
    if ladder:
        lines.append(f"degradation : {' > '.join(ladder)}")
    checkpoint = report.get("checkpoint")
    if checkpoint:
        written = " (written)" if checkpoint.get("written") else ""
        lines.append(f"checkpoint  : {checkpoint.get('path')}{written}")
    progress = report.get("progress")
    if progress:
        eta = progress.get("eta_seconds")
        suffix = f", ETA {eta:g}s" if isinstance(eta, (int, float)) else ""
        lines.append(f"progress    : {progress.get('percent')}%{suffix}")
    shards = report.get("shards")
    if shards:
        workers = shards.get("workers") or []
        lines.append(
            f"shards      : {shards.get('count')} merged"
            + (f" ({', '.join(workers)})" if workers else "")
        )
        quarantined = shards.get("quarantined_units")
        if quarantined:
            lines.append(
                f"quarantined : {quarantined} unit(s) — replay with"
                " `csce retry-quarantined`"
            )
    config = report.get("config")
    if config:
        shown = " ".join(f"{k}={v}" for k, v in sorted(config.items()))
        lines.append(f"config      : {shown}")
    lines.append("")
    lines.append("phase breakdown (paper total = read + optimize + execute):")
    for label, key in (
        ("read", "read_seconds"),
        ("optimize", "plan_seconds"),
        ("execute", "execute_seconds"),
    ):
        seconds = t.get(key, 0.0) or 0.0
        share = (seconds / total * 100) if total > 0 else 0.0
        lines.append(f"  {label:<9}: {seconds:10.6f} s  ({share:5.1f}%)")
    lines.append(f"  {'total':<9}: {total:10.6f} s")
    if "plan" in report:
        plan = report["plan"]
        lines.append("")
        lines.append(
            f"plan        : {plan.get('planner')} order={plan.get('order')}"
        )
        lines.append(
            f"clusters    : {plan.get('clusters_used')} used,"
            f" {plan.get('bytes_read')} bytes read"
        )
    profile = report.get("profile")
    if profile:
        lines.append("")
        lines.append(f"profile     : peak memory {profile.get('peak_mb', 0.0)} MiB")
        for name, mem in profile.get("memory_by_span", {}).items():
            lines.append(
                f"  span {name:<18}: peak {mem.get('peak_kb', 0.0)} KiB,"
                f" net {mem.get('net_kb', 0.0)} KiB over {mem.get('spans')} span(s)"
            )
        depth_rows = profile.get("search_depth", [])
        if depth_rows:
            lines.append("  search depth profile (visits / backtracks /"
                         " memo hits / mean candidates):")
            for row in depth_rows:
                vertex = f" u{row['vertex']}" if "vertex" in row else ""
                lines.append(
                    f"    depth {row['depth']:>3}{vertex}:"
                    f" {row['visits']:>8} / {row['backtracks']:>8}"
                    f" / {row['memo_hits']:>8} / {row['mean_candidates']:g}"
                )
        hot = profile.get("hot_clusters", [])
        if hot:
            lines.append("  hot clusters (rows decompressed):")
            for entry in hot:
                lines.append(
                    f"    {entry['key']:<32} {entry['rows']:>10} rows"
                    f" {entry['bytes']:>10} bytes"
                )
    recorder = report.get("recorder")
    if recorder:
        events = recorder.get("events", [])
        shown = events[-12:]
        lines.append("")
        lines.append(
            f"flight recorder: {recorder.get('recorded', 0)} event(s)"
            f" recorded, {recorder.get('dropped', 0)} dropped"
            + (f", last {len(shown)}:" if shown else "")
        )
        origin = shown[0].get("ts", 0.0) if shown else 0.0
        for event in shown:
            fields = event.get("fields", {})
            detail = " ".join(f"{k}={v}" for k, v in fields.items())
            lines.append(
                f"  +{event.get('ts', 0.0) - origin:10.6f}s"
                f" {event.get('name', '?'):<10}"
                + (f" {detail}" if detail else "")
            )
    counters = report.get("counters", {})
    if counters:
        lines.append("")
        lines.append("counters:")
        for name in sorted(counters):
            lines.append(f"  {name:<24}: {counters[name]}")
    spans = report.get("spans", [])
    if spans:
        lines.append("")
        lines.append("spans:")
        for span in spans:
            _format_span(span, 1, lines)
    return "\n".join(lines)
