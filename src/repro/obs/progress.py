"""Search-progress heartbeats for long enumerations.

The enumerator, the SCE counter, and the baseline matchers already pay for
a periodic tick every ``_TIME_CHECK_INTERVAL`` search nodes (the soft
time-limit check). :class:`Heartbeat` piggybacks on exactly that tick: the
hot loop calls :meth:`Heartbeat.beat` only on interval boundaries, the
heartbeat samples the current search depth into a histogram, and — at most
once per ``interval`` wall-clock seconds — emits one progress line
(embeddings so far, nodes expanded, sampled depth histogram, elapsed time)
through this module's logger or a caller-supplied sink.

The disabled path is :data:`NULL_HEARTBEAT` (``enabled = False``); the hot
loops guard on that flag, so runs without observability never even reach
the modulo when no time limit is set either.
"""

from __future__ import annotations

import logging
import time
from typing import Callable

logger = logging.getLogger(__name__)

DEFAULT_INTERVAL = 5.0


class Heartbeat:
    """Periodic progress emitter (see module docstring).

    ``emit`` receives the formatted line; it defaults to ``logger.info`` so
    heartbeats follow the structured-logging configuration. ``beats`` and
    ``depth_histogram`` stay inspectable after the run for tests and
    reports.
    """

    enabled = True

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        emit: Callable[[str], None] | None = None,
    ):
        self.interval = interval
        self.emit = emit if emit is not None else logger.info
        self.started = time.perf_counter()
        self.beats = 0
        self.depth_histogram: dict[int, int] = {}
        self._last = self.started
        #: Callables invoked (no args) each time a line is emitted — the
        #: hook the metrics pump uses to sample on the heartbeat cadence.
        self.listeners: list[Callable[[], None]] = []

    def add_listener(self, listener: Callable[[], None]) -> None:
        self.listeners.append(listener)

    def beat(self, nodes: int, emitted: int, depth: int = 0, phase: str = "search") -> bool:
        """Record one tick; emit a progress line if ``interval`` elapsed.

        Called on ``_TIME_CHECK_INTERVAL`` boundaries only, so the depth
        histogram is a *sample* of the search frontier, not an exact count.
        Returns True when a line was emitted.
        """
        self.depth_histogram[depth] = self.depth_histogram.get(depth, 0) + 1
        now = time.perf_counter()
        if now - self._last < self.interval:
            return False
        self._last = now
        self.beats += 1
        elapsed = now - self.started
        self.emit(
            f"[heartbeat] {phase}: {emitted} embeddings, {nodes} nodes, "
            f"depth sample {self.depth_summary()}, {elapsed:.1f}s elapsed"
        )
        for listener in self.listeners:
            listener()
        return True

    def depth_summary(self) -> str:
        """Compact ``depth:count`` rendering of the sampled histogram."""
        if not self.depth_histogram:
            return "{}"
        items = sorted(self.depth_histogram.items())
        return "{" + ", ".join(f"{d}: {c}" for d, c in items) + "}"

    def as_dict(self) -> dict:
        return {
            "beats": self.beats,
            "depth_histogram": {str(d): c for d, c in sorted(self.depth_histogram.items())},
            "elapsed_seconds": time.perf_counter() - self.started,
        }


class NullHeartbeat:
    """Disabled heartbeat; the hot loops branch on ``enabled`` once."""

    enabled = False
    beats = 0
    depth_histogram: dict = {}
    listeners: list = []

    def add_listener(self, listener: Callable[[], None]) -> None:
        pass

    def beat(self, nodes: int, emitted: int, depth: int = 0, phase: str = "search") -> bool:
        return False

    def depth_summary(self) -> str:
        return "{}"

    def as_dict(self) -> dict:
        return {"beats": 0, "depth_histogram": {}, "elapsed_seconds": 0.0}


NULL_HEARTBEAT = NullHeartbeat()
