"""Search progress: heartbeats, percent-complete, and ETA estimation.

The enumerator, the SCE counter, and the baseline matchers already pay for
a periodic tick every ``_TIME_CHECK_INTERVAL`` search nodes (the soft
time-limit check). :class:`Heartbeat` piggybacks on exactly that tick: the
hot loop calls :meth:`Heartbeat.beat` only on interval boundaries, the
heartbeat samples the current search depth into a histogram, and — at most
once per ``interval`` wall-clock seconds — emits one progress line
(embeddings so far, nodes expanded, percent complete with ETA when a
:class:`ProgressEstimator` is attached, sampled depth histogram, elapsed
time) through this module's logger or a caller-supplied sink. Interval and
elapsed bookkeeping use ``time.monotonic`` throughout, so wall-clock steps
(NTP, DST) never skew the emit cadence.

:class:`ProgressEstimator` turns the engine's explicit frame stack into a
completion estimate, Knuth's classic DFS-tree estimator adapted to the
candidate arrays the executor already keeps: at each open depth ``d`` the
scan cursor has consumed ``index[d] - 1`` of ``len(values[d])``
candidates, so the lexicographic position of the search —

    ``fraction = Σ_d scale_d · (index[d] - 1) / len(values[d])``,
    ``scale_d = Π_{d' < d} 1 / len(values[d'])``

— is the explored fraction of the root-candidate space under the
uniform-subtree assumption. Because DFS visits candidate prefixes in
order, the raw fraction is nondecreasing; the estimator additionally
clamps to a running maximum, so the reported percent is **monotone** by
construction. The ETA divides the remaining fraction by an
exponentially-smoothed progress rate.

The disabled paths are :data:`NULL_HEARTBEAT` (``enabled = False``) and a
``None`` estimator; the hot loops guard on those, so runs without
observability never even reach the modulo when no time limit is set
either.
"""

from __future__ import annotations

import logging
import time
from typing import Callable, Sequence

logger = logging.getLogger(__name__)

DEFAULT_INTERVAL = 5.0

#: Below this subtree scale further depths cannot move the estimate by a
#: representable amount; the fraction walk stops early.
_MIN_SCALE = 1e-18


def search_state_fraction(
    values: Sequence[Sequence | None], index: Sequence[int]
) -> float:
    """Explored fraction of the candidate space from the live frame stack.

    ``values``/``index`` are the executor's per-depth candidate lists and
    scan cursors (:class:`repro.engine.executor.SearchState`); a ``None``
    list means the depth has not been entered. See the module docstring
    for the estimator; returns a value in ``[0, 1]``.
    """
    fraction = 0.0
    scale = 1.0
    for depth, vals in enumerate(values):
        if vals is None:
            break
        total = len(vals)
        if total == 0:
            break
        consumed = index[depth] - 1
        if consumed > 0:
            fraction += scale * (consumed / total)
        scale /= total
        if scale < _MIN_SCALE:
            break
    return min(1.0, fraction)


class ProgressEstimator:
    """Monotone percent-complete and smoothed ETA for one run.

    Feed raw (possibly noisy) explored-fraction samples through
    :meth:`update`; read :attr:`percent` / :meth:`eta_seconds` any time.
    The running-maximum clamp guarantees the reported fraction never goes
    backwards; the rate is an exponential moving average of
    fraction-per-second, so the ETA stabilizes as the run progresses.
    """

    enabled = True

    def __init__(self, alpha: float = 0.3) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1]: {alpha}")
        self._alpha = alpha
        self._fraction = 0.0
        self._rate = 0.0
        self._last_time: float | None = None
        self._last_fraction = 0.0
        self.updates = 0

    def update(self, raw: float) -> float:
        """Fold one raw fraction sample in; returns the monotone fraction."""
        self.updates += 1
        if raw > self._fraction:
            self._fraction = min(1.0, raw)
        now = time.monotonic()
        if self._last_time is not None:
            dt = now - self._last_time
            if dt > 0.0:
                instant = (self._fraction - self._last_fraction) / dt
                if self._rate <= 0.0:
                    self._rate = instant
                else:
                    self._rate = (
                        self._alpha * instant
                        + (1.0 - self._alpha) * self._rate
                    )
        self._last_time = now
        self._last_fraction = self._fraction
        return self._fraction

    def complete(self) -> None:
        """Pin the estimate to 100% (the run exhausted its search space)."""
        self.updates += 1
        self._fraction = 1.0
        self._last_fraction = 1.0

    @property
    def fraction(self) -> float:
        """Monotone explored fraction in ``[0, 1]``."""
        return self._fraction

    @property
    def percent(self) -> float:
        """Monotone percent-complete in ``[0, 100]``."""
        return round(self._fraction * 100.0, 2)

    def eta_seconds(self) -> float | None:
        """Smoothed seconds-to-completion, or ``None`` before the rate is
        observable (fewer than two samples, or no progress yet)."""
        if self._fraction >= 1.0:
            return 0.0
        if self._rate <= 0.0:
            return None
        return (1.0 - self._fraction) / self._rate

    def describe(self) -> str:
        """Compact ``NN.N% (ETA Ns)`` rendering for progress lines."""
        eta = self.eta_seconds()
        suffix = f" (ETA {eta:.0f}s)" if eta is not None else ""
        return f"{self.percent:.1f}%{suffix}"

    def as_dict(self) -> dict:
        """JSON-ready snapshot (``MatchResult.progress`` / run-reports)."""
        eta = self.eta_seconds()
        return {
            "percent": self.percent,
            "eta_seconds": None if eta is None else round(eta, 3),
            "updates": self.updates,
        }

    def __repr__(self) -> str:
        return f"<ProgressEstimator {self.describe()} updates={self.updates}>"


class Heartbeat:
    """Periodic progress emitter (see module docstring).

    ``emit`` receives the formatted line; it defaults to ``logger.info`` so
    heartbeats follow the structured-logging configuration. ``beats`` and
    ``depth_histogram`` stay inspectable after the run for tests and
    reports.
    """

    enabled = True

    def __init__(
        self,
        interval: float = DEFAULT_INTERVAL,
        emit: Callable[[str], None] | None = None,
    ) -> None:
        self.interval = interval
        self.emit = emit if emit is not None else logger.info
        self.started = time.monotonic()
        self.beats = 0
        self.depth_histogram: dict[int, int] = {}
        self._last = self.started
        #: Callables invoked (no args) each time a line is emitted — the
        #: hook the metrics pump uses to sample on the heartbeat cadence.
        self.listeners: list[Callable[[], None]] = []

    def add_listener(self, listener: Callable[[], None]) -> None:
        self.listeners.append(listener)

    def beat(
        self,
        nodes: int,
        emitted: int,
        depth: int = 0,
        phase: str = "search",
        progress: ProgressEstimator | None = None,
    ) -> bool:
        """Record one tick; emit a progress line if ``interval`` elapsed.

        Called on ``_TIME_CHECK_INTERVAL`` boundaries only, so the depth
        histogram is a *sample* of the search frontier, not an exact count.
        ``progress`` (when the run carries a :class:`ProgressEstimator`)
        adds the percent-complete/ETA segment to the line. Returns True
        when a line was emitted.
        """
        self.depth_histogram[depth] = self.depth_histogram.get(depth, 0) + 1
        now = time.monotonic()
        if now - self._last < self.interval:
            return False
        self._last = now
        self.beats += 1
        elapsed = now - self.started
        done = (
            f" {progress.describe()} done,"
            if progress is not None and progress.enabled
            else ""
        )
        self.emit(
            f"[heartbeat] {phase}: {emitted} embeddings, {nodes} nodes,"
            f"{done} depth sample {self.depth_summary()},"
            f" {elapsed:.1f}s elapsed"
        )
        for listener in list(self.listeners):
            try:
                listener()
            except Exception:
                # A broken observer (metrics pump, inspector publisher, a
                # user hook) must never abort the match it is watching:
                # log it once and detach it.
                logger.exception(
                    "heartbeat listener %r raised; detaching it", listener
                )
                try:
                    self.listeners.remove(listener)
                except ValueError:
                    pass
        return True

    def depth_summary(self) -> str:
        """Compact ``depth:count`` rendering of the sampled histogram."""
        if not self.depth_histogram:
            return "{}"
        items = sorted(self.depth_histogram.items())
        return "{" + ", ".join(f"{d}: {c}" for d, c in items) + "}"

    def as_dict(self) -> dict:
        return {
            "beats": self.beats,
            "depth_histogram": {
                str(d): c for d, c in sorted(self.depth_histogram.items())
            },
            "elapsed_seconds": time.monotonic() - self.started,
        }


class NullHeartbeat:
    """Disabled heartbeat; the hot loops branch on ``enabled`` once."""

    enabled = False
    beats = 0
    depth_histogram: dict = {}
    listeners: list = []

    def add_listener(self, listener: Callable[[], None]) -> None:
        pass

    def beat(
        self,
        nodes: int,
        emitted: int,
        depth: int = 0,
        phase: str = "search",
        progress: ProgressEstimator | None = None,
    ) -> bool:
        return False

    def depth_summary(self) -> str:
        return "{}"

    def as_dict(self) -> dict:
        return {"beats": 0, "depth_histogram": {}, "elapsed_seconds": 0.0}


NULL_HEARTBEAT = NullHeartbeat()
