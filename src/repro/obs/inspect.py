"""Live introspection and control plane for running matches.

Every earlier observability surface is post-hoc: run-reports, metrics
files, and recorder dumps materialize when the run ends (or on a blind
SIGUSR1). This module is the inverse — attach to a *live* match, read its
progress/stats/recorder, and steer it — the coordinator↔worker reporting
channel the ROADMAP's multi-process fan-out needs.

Three pieces:

* :class:`MatchInspector` — binds to an
  :class:`~repro.engine.executor.EmbeddingStream` + its
  :class:`~repro.obs.Observation` (+ optionally its
  :class:`~repro.engine.governor.ResourceGovernor`) and **samples the run
  on the existing heartbeat tick**: the executor thread, at the tick it
  already pays for, publishes one fresh, immutable sample (status,
  progress, stats, counters, recorder dump, hot clusters) under a lock.
  Socket threads only ever read the latest published sample — they never
  touch the mutating frame stack — so attaching N clients costs the hot
  loop nothing beyond the tick. Mutating commands are **cooperative**: no
  thread kills, ever. ``cancel`` trips the
  :class:`~repro.engine.governor.CancelToken` the executor already polls;
  ``budget`` calls :meth:`~repro.engine.governor.ResourceGovernor.tighten`
  (checked at the next tick); ``checkpoint-now`` enqueues a request that
  the *executor thread* services at its next tick — the only point where
  the frame stack is consistent — through the ordinary
  :class:`~repro.engine.checkpoint.CheckpointSink` path.
* :class:`InspectorServer` — a daemon accept-thread serving the
  newline-delimited-JSON protocol of :mod:`repro.obs.wire` on a
  unix-domain socket. Where ``AF_UNIX`` is unavailable (or the path does
  not bind), it falls back to a TCP loopback socket and writes
  ``host:port`` into the requested path, so clients resolve either form
  from the same address string.
* :class:`InspectorClient` / :func:`inspect_call` — the client side
  (``csce inspect`` / ``csce top``), plus :func:`render_top`, the pure
  renderer behind the refreshing ``top`` view.

A malformed frame gets an error response, an abruptly closed connection
gets cleaned up silently, and a handler bug is caught and reported as an
error frame: nothing a client does can take the match down.
"""

from __future__ import annotations

import logging
import os
import socket
import stat
import threading
import time
from typing import Any, Callable, Mapping

from repro.errors import InspectorError, WireError
from repro.obs.merge import WorkerSnapshot
from repro.obs.wire import (
    KNOWN_COMMANDS,
    MAX_FRAME_BYTES,
    decode_frame,
    decode_response,
    encode_frame,
    encode_snapshot,
    error_frame,
    ok_frame,
    request_frame,
    validate_request,
)

logger = logging.getLogger(__name__)

#: Heartbeat cadence `csce match --inspect` defaults to when no
#: ``--heartbeat`` is given: fast enough for a live `top` view, amortized
#: over thousands of frame steps.
DEFAULT_INSPECT_INTERVAL = 0.5

#: Hot clusters published per sample (the `top` view shows this many).
_HOT_CLUSTERS = 5


def _parse_tcp(address: str) -> tuple[str, int] | None:
    """``host:port`` → ``(host, port)``; ``None`` for filesystem paths."""
    host, sep, port = address.rpartition(":")
    if sep and port.isdigit() and host and "/" not in host \
            and "\\" not in host:
        return host, int(port)
    return None


class _CheckpointRequest:
    """One pending checkpoint-now, serviced on the executor thread."""

    __slots__ = ("path", "event", "result", "error")

    def __init__(self, path: str | None = None) -> None:
        self.path = path
        self.event = threading.Event()
        self.result: dict | None = None
        self.error: str | None = None


class MatchInspector:
    """The control-plane core: samples one live stream, serves commands.

    ``stream`` is the :class:`~repro.engine.executor.EmbeddingStream`
    being consumed elsewhere; ``obs`` its observation (a live heartbeat is
    required — that tick is the publication point); ``governor`` enables
    ``cancel``/``budget``; ``checkpoint_factory`` (``path -> CheckpointSink``)
    enables ``checkpoint-now`` with a caller-supplied path, and
    ``default_checkpoint_path`` is used when a request names no path and
    the stream carries no sink of its own.
    """

    #: Command-name → handler-method registry. Keys are pinned against
    #: :data:`~repro.obs.wire.KNOWN_COMMANDS` by the ``inspector_commands``
    #: reprolint pass and a test; drift fails lint, not a live attach.
    HANDLERS: dict[str, str] = {
        "status": "_cmd_status",
        "progress": "_cmd_progress",
        "stats": "_cmd_stats",
        "counters": "_cmd_stats",
        "recorder": "_cmd_recorder",
        "health": "_cmd_health",
        "checkpoint-now": "_cmd_checkpoint_now",
        "budget": "_cmd_budget",
        "cancel": "_cmd_cancel",
    }

    def __init__(
        self,
        stream: Any,
        obs: Any,
        governor: Any = None,
        worker: str | None = None,
        checkpoint_factory: Callable[[str], Any] | None = None,
        default_checkpoint_path: str | None = None,
    ) -> None:
        self.stream = stream
        self.obs = obs
        self.governor = governor
        self.worker = worker or f"pid-{os.getpid()}"
        self.checkpoint_factory = checkpoint_factory
        self.default_checkpoint_path = default_checkpoint_path
        self._lock = threading.Lock()
        self._sample: dict | None = None
        self._pending: list[_CheckpointRequest] = []
        self._finished = False
        self._clients = 0
        self._started = time.monotonic()
        self.last_checkpoint: dict | None = None
        self.on_demand_sink = None

    # -- lifecycle -----------------------------------------------------
    def attach(self) -> "MatchInspector":
        """Register on the heartbeat and publish the first sample."""
        heartbeat = self.obs.heartbeat
        if not heartbeat.enabled:
            raise InspectorError(
                "the inspector samples on heartbeat ticks; attach an"
                " Observation with heartbeat_interval set"
            )
        heartbeat.add_listener(self._on_tick)
        self.publish()
        return self

    def finish(self, result: Any = None) -> None:
        """Publish the final sample once the run has ended. Late clients
        (and the E2E counters-equality check) read this quiescent state."""
        with self._lock:
            self._finished = True
        self.publish()

    # -- publication (executor thread / quiescent points only) ---------
    def _on_tick(self) -> None:
        self.publish()

    def publish(self) -> None:
        """Service pending control requests, then publish a fresh sample.

        Runs on the executor thread inside the heartbeat tick (the one
        point where the frame stack is consistent mid-run), and from
        :meth:`attach`/:meth:`finish` while the run is quiescent.
        """
        with self._lock:
            pending, self._pending = self._pending, []
        for request in pending:
            self._service_checkpoint(request)
        sample = self._build_sample()
        with self._lock:
            self._sample = sample

    def _build_sample(self) -> dict:
        runtime = self.stream.runtime
        obs = self.obs
        heartbeat = obs.heartbeat
        with self._lock:
            finished = self._finished
            clients = self._clients
        status: dict = {
            "state": "finished" if finished else "running",
            "worker": self.worker,
            "pid": os.getpid(),
            "emitted": runtime.emitted,
            "nodes": runtime.nodes,
            "elapsed_seconds": round(time.monotonic() - self._started, 3),
            "stop_reason": runtime.stop_reason,
            "degradation": list(runtime.degradation),
            "gov_stage": runtime.gov_stage,
            "beats": heartbeat.beats,
            "clients": clients,
        }
        governor = self.governor
        if governor is not None:
            budget = governor.budget
            status["budget"] = {
                "time_limit": budget.time_limit,
                "max_embeddings": budget.max_embeddings,
                "memory_limit_mb": budget.memory_limit_mb,
            }
        if self.last_checkpoint is not None:
            status["checkpoint"] = dict(self.last_checkpoint)
        worker_rows = getattr(self.stream, "worker_rows", None)
        if callable(worker_rows):
            # Pool-backed streams (engine.pool.PoolMonitor) expose live
            # per-worker rows; `csce top` renders them as a worker table.
            status["workers"] = worker_rows()
        health = getattr(self.stream, "health", None)
        if callable(health):
            # Supervision state (stall watchdog, quarantine, respawn
            # budget) rides the same sample; `health` reads it back out.
            status["health"] = health()
        progress: dict | None = None
        estimator = runtime.progress
        if estimator is not None:
            progress = estimator.as_dict()
            progress["depth_histogram"] = {
                str(depth): count
                for depth, count in sorted(heartbeat.depth_histogram.items())
            }
        stats = runtime.stats()
        # Mirror build_run_report's counter block exactly (stats, then
        # registry totals winning, then the heartbeat total), so a live
        # `counters` read at finish equals the final run-report's.
        counters = dict(stats)
        registry = obs.counters
        if registry.enabled:
            counters = {**counters, **registry.snapshot()}
        counters["heartbeats"] = heartbeat.beats
        profiler = obs.profile
        hot = profiler.hot_clusters(_HOT_CLUSTERS) if profiler.enabled else []
        status["hot_clusters"] = hot
        return {
            "status": status,
            "progress": progress,
            "snapshot": encode_snapshot(
                WorkerSnapshot(
                    worker=self.worker, counters=counters, stats=stats
                )
            ),
            "recorder": obs.recorder.as_dict(),
        }

    def _latest(self) -> dict:
        with self._lock:
            sample = self._sample
        if sample is None:
            raise InspectorError(
                "no sample published yet (inspector not attached?)"
            )
        return sample

    # -- client accounting (called from server threads) ----------------
    def client_connected(self) -> None:
        with self._lock:
            self._clients += 1

    def client_disconnected(self) -> None:
        with self._lock:
            self._clients = max(0, self._clients - 1)

    # -- command dispatch (called from server threads) -----------------
    def handle(self, cmd: str, args: Mapping[str, Any] | None = None) -> Any:
        """Serve one command; returns the response data payload."""
        method = self.HANDLERS.get(cmd)
        if method is None:
            raise InspectorError(
                f"unknown command {cmd!r}; known commands:"
                f" {', '.join(KNOWN_COMMANDS)}"
            )
        return getattr(self, method)(dict(args or {}))

    def _cmd_status(self, args: dict) -> dict:
        return self._latest()["status"]

    def _cmd_progress(self, args: dict) -> dict:
        progress = self._latest()["progress"]
        if progress is None:
            raise InspectorError(
                "no progress estimator attached (observation disabled?)"
            )
        return progress

    def _cmd_stats(self, args: dict) -> dict:
        return self._latest()["snapshot"]

    def _cmd_recorder(self, args: dict) -> dict:
        dump = dict(self._latest()["recorder"])
        limit = args.get("limit")
        if limit is not None:
            try:
                limit = int(limit)
            except (TypeError, ValueError):
                raise InspectorError(
                    f"recorder limit must be an integer, got {limit!r}"
                ) from None
            events = dump.get("events", [])
            dump["events"] = events[-limit:] if limit > 0 else []
        return dump

    def _cmd_health(self, args: dict) -> dict:
        status = self._latest()["status"]
        health = status.get("health")
        if health is None:
            # Single-process streams have no pool supervisor; answer with
            # a typed "unsupervised" payload rather than an error so that
            # `csce inspect ADDR health` is safe to script against both.
            return {
                "supervised": False,
                "reason": "no pool attached; supervision health is"
                          " published by --workers runs",
                "workers": [],
            }
        payload = {"supervised": True, **health}
        payload["workers"] = [
            {
                "worker": row.get("worker"),
                "state": row.get("state"),
                "unit": row.get("unit"),
                "beat_age": row.get("beat_age"),
            }
            for row in status.get("workers") or []
        ]
        return payload

    def _cmd_checkpoint_now(self, args: dict) -> dict:
        path = args.get("path")
        try:
            timeout = float(args.get("timeout", 30.0))
        except (TypeError, ValueError):
            raise InspectorError(
                f"timeout must be a number, got {args.get('timeout')!r}"
            ) from None
        request = self.request_checkpoint(
            path=str(path) if path is not None else None,
            wait=True,
            timeout=timeout,
        )
        if request.error is not None:
            raise InspectorError(request.error)
        assert request.result is not None
        return request.result

    def _cmd_budget(self, args: dict) -> dict:
        governor = self.governor
        if governor is None:
            raise InspectorError(
                "no governor attached; budget control unavailable"
            )
        tightened: dict = {}
        for key, caster in (
            ("time_limit", float),
            ("max_embeddings", int),
            ("memory_limit_mb", float),
        ):
            value = args.get(key)
            if value is None:
                continue
            try:
                value = caster(value)
            except (TypeError, ValueError):
                raise InspectorError(
                    f"{key} must be a number, got {value!r}"
                ) from None
            if value <= 0:
                raise InspectorError(f"{key} must be positive, got {value}")
            tightened[key] = value
        if not tightened:
            raise InspectorError(
                "budget needs at least one of time_limit=,"
                " max_embeddings=, memory_limit_mb="
            )
        budget = governor.tighten(**tightened)
        return {
            "tightened": tightened,
            "time_limit": budget.time_limit,
            "max_embeddings": budget.max_embeddings,
            "memory_limit_mb": budget.memory_limit_mb,
        }

    def _cmd_cancel(self, args: dict) -> dict:
        governor = self.governor
        if governor is None:
            raise InspectorError(
                "no governor attached; cancel unavailable"
            )
        reason = str(args.get("reason") or "inspector-cancel")
        governor.cancel.trip(reason)
        return {"cancelled": True, "reason": reason}

    # -- checkpoint-now plumbing ---------------------------------------
    def request_checkpoint(
        self,
        path: str | None = None,
        wait: bool = True,
        timeout: float = 30.0,
    ) -> _CheckpointRequest:
        """Ask the executor thread to checkpoint at its next tick.

        Safe from any thread (and, with ``wait=False``, from a signal
        handler: one list append). With ``wait=True`` blocks until the
        tick services the request or ``timeout`` passes. Once the run has
        finished, the request is serviced inline — the stream is
        quiescent, so the snapshot is consistent without a tick.
        """
        request = _CheckpointRequest(path)
        with self._lock:
            finished = self._finished
            if not finished:
                self._pending.append(request)
        if finished:
            self._service_checkpoint(request)
            self.publish()  # refresh the stored sample (quiescent stream)
        elif wait and not request.event.wait(timeout):
            raise InspectorError(
                f"checkpoint-now timed out after {timeout:g}s waiting for"
                " a heartbeat tick (is the stream being consumed?)"
            )
        return request

    def _service_checkpoint(self, request: _CheckpointRequest) -> None:
        """Write one on-demand checkpoint. Executor thread (or quiescent).

        Never lets an exception escape: this runs inside the heartbeat
        listener, and a raising listener gets detached — which would
        silently kill the whole inspector.
        """
        try:
            sink = None
            if request.path is not None:
                if self.checkpoint_factory is None:
                    request.error = (
                        "no checkpoint factory attached; cannot write to"
                        " a caller-supplied path"
                    )
                    return
                sink = self.checkpoint_factory(request.path)
            else:
                sink = self.stream.checkpoint_sink
                if sink is None and self.checkpoint_factory is not None \
                        and self.default_checkpoint_path:
                    sink = self.checkpoint_factory(
                        self.default_checkpoint_path
                    )
            if sink is None:
                request.error = (
                    "no checkpoint target: pass path=... or run"
                    " csce match with --checkpoint PATH"
                )
                return
            sink.write_on_demand(self.stream)
            self.on_demand_sink = sink
            emitted = self.stream.runtime.emitted
            info = {
                "path": str(sink.path),
                "written": True,
                "emitted": emitted,
                "on_demand": sink.on_demand,
            }
            self.last_checkpoint = info
            recorder = self.obs.recorder
            if recorder.enabled:
                recorder.record(
                    "checkpoint", path=str(sink.path), emitted=emitted,
                    on_demand=True,
                )
            request.result = info
        except Exception as exc:
            logger.exception("on-demand checkpoint failed")
            request.error = f"checkpoint failed: {exc}"
        finally:
            request.event.set()


class InspectorServer:
    """Serves one :class:`MatchInspector` over the wire protocol.

    ``start()`` binds ``address`` (a unix-socket path, or ``host:port``
    for explicit TCP) and spawns a daemon accept thread; each connection
    gets its own daemon handler thread reading one request frame per line.
    ``stop()`` closes the listener and every open connection and removes
    the socket/pointer file. All threads are daemons and every mutating
    action is cooperative, so a forgotten server can never wedge process
    exit or the match itself.
    """

    def __init__(self, inspector: MatchInspector, address: str) -> None:
        self.inspector = inspector
        self.address = str(address)
        self.endpoint: str | None = None
        self._sock: socket.socket | None = None
        self._accept_thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._conn_lock = threading.Lock()
        self._conns: set[socket.socket] = set()
        self._unix_path: str | None = None
        self._pointer_path: str | None = None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "InspectorServer":
        tcp = _parse_tcp(self.address)
        sock: socket.socket | None = None
        if tcp is None and hasattr(socket, "AF_UNIX"):
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            try:
                if os.path.exists(self.address):
                    os.unlink(self.address)  # stale socket/pointer file
                sock.bind(self.address)
            except OSError as exc:
                # Path too long for AF_UNIX, or unbindable: fall back to
                # TCP loopback with a pointer file at the same path.
                logger.debug(
                    "AF_UNIX bind failed for %s (%s); TCP fallback",
                    self.address, exc,
                )
                sock.close()
                sock = None
            else:
                self._unix_path = self.address
                self.endpoint = self.address
        if sock is None:
            host, port = tcp if tcp is not None else ("127.0.0.1", 0)
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            try:
                sock.bind((host, port))
            except OSError as exc:
                sock.close()
                raise InspectorError(
                    f"cannot bind inspector to {self.address}: {exc}"
                ) from exc
            host, port = sock.getsockname()[:2]
            self.endpoint = f"{host}:{port}"
            if tcp is None:
                # The address was a filesystem path: leave a pointer file
                # there so clients resolve the fallback transparently.
                with open(self.address, "w", encoding="utf-8") as handle:
                    handle.write(self.endpoint + "\n")
                self._pointer_path = self.address
        sock.listen(8)
        sock.settimeout(0.2)  # so the accept loop notices stop()
        self._sock = sock
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="csce-inspector", daemon=True
        )
        self._accept_thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        sock = self._sock
        if sock is not None:
            try:
                sock.close()
            except OSError:
                pass
        with self._conn_lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                conn.close()
            except OSError:
                pass
        for path in (self._unix_path, self._pointer_path):
            if path is not None:
                try:
                    os.unlink(path)
                except OSError:
                    pass
        thread = self._accept_thread
        if thread is not None:
            thread.join(timeout=2.0)

    def __enter__(self) -> "InspectorServer":
        return self

    def __exit__(self, *exc: object) -> None:
        self.stop()

    # -- the serving threads -------------------------------------------
    def _accept_loop(self) -> None:
        sock = self._sock
        assert sock is not None
        while not self._stop.is_set():
            try:
                conn, _addr = sock.accept()
            except socket.timeout:
                continue
            except OSError:
                break  # listener closed by stop()
            with self._conn_lock:
                self._conns.add(conn)
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="csce-inspector-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        inspector = self.inspector
        inspector.client_connected()
        try:
            reader = conn.makefile("rb")
            while not self._stop.is_set():
                line = reader.readline(MAX_FRAME_BYTES)
                if not line:
                    break  # client went away
                cmd: str | None = None
                try:
                    frame = decode_frame(line)
                    cmd, args = validate_request(frame)
                    response = ok_frame(cmd, inspector.handle(cmd, args))
                except (WireError, InspectorError) as exc:
                    response = error_frame(str(exc), cmd=cmd)
                except Exception as exc:
                    # A handler bug must cost one error frame, never the
                    # connection — and never the match.
                    logger.exception("inspector command failed")
                    response = error_frame(
                        f"internal error: {exc}", cmd=cmd
                    )
                try:
                    conn.sendall(encode_frame(response))
                except WireError as exc:
                    conn.sendall(encode_frame(error_frame(str(exc), cmd=cmd)))
        except (OSError, ValueError):
            pass  # abrupt disconnect mid-read/-write
        finally:
            inspector.client_disconnected()
            with self._conn_lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:
                pass


# ---------------------------------------------------------------------------
# Client side
# ---------------------------------------------------------------------------
def resolve_endpoint(address: str) -> tuple[str, Any]:
    """Resolve an inspector address to ``("unix", path)`` or
    ``("tcp", (host, port))``; understands pointer files left by the
    TCP fallback."""
    tcp = _parse_tcp(address)
    if tcp is not None:
        return ("tcp", tcp)
    try:
        mode = os.stat(address).st_mode
    except OSError as exc:
        raise InspectorError(
            f"no inspector at {address}: {exc}"
        ) from exc
    if stat.S_ISSOCK(mode) and hasattr(socket, "AF_UNIX"):
        return ("unix", address)
    if stat.S_ISREG(mode):
        try:
            with open(address, encoding="utf-8") as handle:
                first = handle.readline().strip()
        except OSError as exc:
            raise InspectorError(
                f"cannot read inspector pointer file {address}: {exc}"
            ) from exc
        tcp = _parse_tcp(first)
        if tcp is not None:
            return ("tcp", tcp)
        raise InspectorError(
            f"{address} is not an inspector endpoint (expected a unix"
            f" socket or a host:port pointer file, found {first!r})"
        )
    raise InspectorError(f"{address} is not an inspector endpoint")


class InspectorClient:
    """A persistent connection to a running inspector (``csce top``)."""

    def __init__(self, address: str, timeout: float = 10.0) -> None:
        kind, target = resolve_endpoint(address)
        try:
            if kind == "unix":
                sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                sock.settimeout(timeout)
                sock.connect(target)
            else:
                sock = socket.create_connection(target, timeout=timeout)
        except OSError as exc:
            raise InspectorError(
                f"cannot connect to inspector at {address}: {exc}"
            ) from exc
        self.address = address
        self._sock = sock
        self._reader = sock.makefile("rb")

    def request(self, cmd: str, args: Mapping[str, Any] | None = None) -> Any:
        """One request/response round trip; returns the data payload."""
        frame = request_frame(cmd, args)
        try:
            self._sock.sendall(encode_frame(frame))
            line = self._reader.readline(MAX_FRAME_BYTES)
        except OSError as exc:
            raise InspectorError(
                f"inspector connection lost: {exc}"
            ) from exc
        if not line:
            raise InspectorError(
                "inspector closed the connection (run ended?)"
            )
        return decode_response(decode_frame(line))

    def close(self) -> None:
        try:
            self._reader.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "InspectorClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()


def inspect_call(
    address: str,
    cmd: str,
    args: Mapping[str, Any] | None = None,
    timeout: float = 10.0,
) -> Any:
    """One-shot convenience: connect, request, close (``csce inspect``)."""
    with InspectorClient(address, timeout=timeout) as client:
        return client.request(cmd, args)


# ---------------------------------------------------------------------------
# The `top` renderer (pure: dicts in, text out)
# ---------------------------------------------------------------------------
def render_top(
    status: Mapping[str, Any],
    progress: Mapping[str, Any] | None = None,
    width: int = 50,
) -> str:
    """Render one refresh of the live `top` view from a ``status`` (and
    optionally ``progress``) response."""
    lines = [
        f"csce top — {status.get('worker', '?')}"
        f" [{status.get('state', '?')}]"
        f"  pid {status.get('pid', '?')}"
        f"  clients {status.get('clients', 0)}"
    ]
    percent = 0.0
    eta_text = "ETA --"
    if progress:
        raw = progress.get("percent", 0.0)
        if isinstance(raw, (int, float)) and not isinstance(raw, bool):
            percent = max(0.0, min(100.0, float(raw)))
        eta = progress.get("eta_seconds")
        if isinstance(eta, (int, float)) and not isinstance(eta, bool):
            eta_text = f"ETA {float(eta):.0f}s"
    filled = int(width * percent / 100.0)
    bar = "#" * filled + "-" * (width - filled)
    lines.append(f"[{bar}] {percent:6.2f}%  {eta_text}")
    lines.append(
        f"embeddings {status.get('emitted', 0)}"
        f"   nodes {status.get('nodes', 0)}"
        f"   beats {status.get('beats', 0)}"
        f"   elapsed {float(status.get('elapsed_seconds', 0.0) or 0.0):.1f}s"
    )
    histogram = (progress or {}).get("depth_histogram") or {}
    if histogram:
        items = sorted(histogram.items(), key=lambda kv: int(kv[0]))
        lines.append(
            "depth frontier: "
            + " ".join(f"{depth}:{count}" for depth, count in items)
        )
    ladder = status.get("degradation") or []
    lines.append(
        "degradation : " + (" > ".join(ladder) if ladder else "none")
    )
    budget = status.get("budget")
    if budget:
        def _fmt(value: Any, suffix: str = "") -> str:
            return "-" if value is None else f"{value:g}{suffix}"

        lines.append(
            f"budget      : time {_fmt(budget.get('time_limit'), 's')}"
            f"  embeddings {_fmt(budget.get('max_embeddings'))}"
            f"  memory {_fmt(budget.get('memory_limit_mb'), ' MiB')}"
        )
    checkpoint = status.get("checkpoint")
    if checkpoint:
        lines.append(
            f"checkpoint  : {checkpoint.get('path')}"
            f" (at {checkpoint.get('emitted')} embeddings)"
        )
    stop = status.get("stop_reason")
    if stop:
        lines.append(f"stopped     : {stop}")
    health = status.get("health")
    if health:
        timeout = health.get("stall_timeout")
        lines.append(
            "supervision : watchdog "
            + ("off" if timeout is None else f"{timeout:g}s")
            + f"  stall-kills {health.get('stall_kills', 0)}"
            + f"  quarantined {health.get('quarantined_units', 0)}"
            + f"  respawns-left {health.get('respawns_left', 0)}"
        )
    workers = status.get("workers") or []
    if workers:
        lines.append(
            f"{'worker':<8}{'pid':>8}{'state':>9}{'unit':>6}"
            f"{'units':>7}{'emitted':>12}{'nodes':>12}{'beat':>8}"
        )
        for row in workers:
            unit = row.get("unit")
            age = row.get("beat_age")
            lines.append(
                f"{str(row.get('worker', '?')):<8}"
                f"{str(row.get('pid', '?')):>8}"
                f"{str(row.get('state', '?')):>9}"
                f"{'-' if unit is None else unit:>6}"
                f"{row.get('units', 0):>7}"
                f"{row.get('emitted', 0):>12}"
                f"{row.get('nodes', 0):>12}"
                f"{'-' if age is None else f'{age:.1f}s':>8}"
            )
    hot = status.get("hot_clusters") or []
    if hot:
        lines.append("hot clusters:")
        for entry in hot:
            lines.append(
                f"  {str(entry.get('key', '?')):<32}"
                f" {entry.get('rows', 0):>10} rows"
                f" {entry.get('bytes', 0):>10} bytes"
            )
    return "\n".join(lines)
