"""Typed metrics registry and exporters (the live half of the observatory).

PR 1's :class:`~repro.obs.counters.CounterRegistry` and span tree describe
*one finished run*. This module turns them into **time series**: a
:class:`MetricsRegistry` of typed gauges / counters / histograms, sampled
periodically (the heartbeat tick, see :class:`MetricsPump`) and pushed
through exporters so long-running ``match`` / ``continuous`` workloads
stream live metrics instead of only a terminal report.

Two exporters cover the common deployment shapes:

* :class:`PrometheusTextfileExporter` — the node-exporter *textfile
  collector* convention: the full exposition text is written atomically
  (tmp + rename) so a scraper never reads a torn file;
* :class:`JsonlTimeSeriesExporter` — one JSON object per sample appended
  to a ``.jsonl`` stream, for offline plotting and the bench trajectory.

Metric names follow Prometheus conventions (``repro_`` namespace,
``_total`` suffix on monotonic counters); the dotted counter names of the
run registry (``ccsr.bytes_read``) are mapped automatically
(``repro_ccsr_bytes_read_total``). Constant labels (engine, dataset) are
attached registry-wide — one matcher run is one label set.
"""

from __future__ import annotations

import json
import math
import os
import re
import time
from dataclasses import dataclass, field
from typing import Any, Iterator, Mapping

GAUGE = "gauge"
COUNTER = "counter"
HISTOGRAM = "histogram"

_NAMESPACE = "repro"
_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")

#: Default histogram buckets (seconds-ish scale; powers of 4 keep it short).
DEFAULT_BUCKETS = (0.001, 0.004, 0.016, 0.064, 0.256, 1.024, 4.096, 16.384)

#: Every metric name created by literal in this codebase (the dotted
#: counter names folded in by :meth:`MetricsRegistry.sample_counters` are
#: dynamic and not listed). The ``obs_keys`` reprolint pass checks every
#: ``.gauge()``/``.counter()``/``.histogram()`` string literal against
#: this tuple, so a new time series must be registered here first.
KNOWN_METRICS: tuple[str, ...] = (
    "heartbeat_beats",
    "read_seconds",
    "plan_seconds",
    "execute_seconds",
    "total_seconds",
    "throughput_embeddings_per_second",
    "embeddings",
    "timed_out",
    "progress_percent",
    "eta_seconds",
    "recorder_events",
)


def metric_name(raw: str, kind: str = GAUGE) -> str:
    """Normalize a registry counter name to a Prometheus metric name.

    ``ccsr.bytes_read`` -> ``repro_ccsr_bytes_read_total`` (counters get the
    ``_total`` suffix exactly once).
    """
    name = _NAME_RE.sub("_", raw.strip()).strip("_").lower()
    if not name.startswith(_NAMESPACE + "_"):
        name = f"{_NAMESPACE}_{name}"
    if kind == COUNTER and not name.endswith("_total"):
        name = f"{name}_total"
    return name


@dataclass
class Metric:
    """One named time series: type, help text, and the current value(s)."""

    name: str
    kind: str
    help: str = ""
    value: float = 0.0
    # Histogram state (unused for gauges/counters).
    buckets: tuple[float, ...] = ()
    bucket_counts: list[int] = field(default_factory=list)
    sum: float = 0.0
    count: int = 0

    def set(self, value: float) -> None:
        if self.kind == COUNTER and value < self.value:
            # Counters are monotonic; a lower sample means a new run was
            # folded in — keep the running maximum rather than regressing.
            return
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def observe(self, value: float) -> None:
        if self.kind != HISTOGRAM:
            raise ValueError(f"observe() on non-histogram metric {self.name!r}")
        self.sum += value
        self.count += 1
        # Buckets are stored cumulatively (Prometheus ``le`` semantics):
        # every bucket whose bound admits the value is incremented.
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                self.bucket_counts[i] += 1

    def as_dict(self) -> dict:
        if self.kind == HISTOGRAM:
            return {
                "kind": self.kind,
                "sum": self.sum,
                "count": self.count,
                "buckets": {
                    str(b): c for b, c in zip(self.buckets, self.bucket_counts)
                },
            }
        return {"kind": self.kind, "value": self.value}


class MetricsRegistry:
    """Registry of typed metrics with one constant label set.

    Instruments are created on first use (``gauge`` / ``counter`` /
    ``histogram`` are get-or-create), so samplers can write without a
    declaration step. Not thread-safe by design: one registry belongs to
    one run, mirroring :class:`~repro.obs.counters.CounterRegistry`.
    """

    def __init__(self, labels: Mapping[str, str] | None = None) -> None:
        self.labels: dict[str, str] = dict(labels or {})
        self._metrics: dict[str, Metric] = {}

    # ------------------------------------------------------------------
    def gauge(self, name: str, help: str = "") -> Metric:
        return self._get_or_create(metric_name(name, GAUGE), GAUGE, help)

    def counter(self, name: str, help: str = "") -> Metric:
        return self._get_or_create(metric_name(name, COUNTER), COUNTER, help)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] = DEFAULT_BUCKETS,
    ) -> Metric:
        metric = self._get_or_create(metric_name(name, GAUGE), HISTOGRAM, help)
        if not metric.buckets:
            metric.buckets = tuple(buckets)
            metric.bucket_counts = [0] * len(metric.buckets)
        return metric

    def _get_or_create(self, name: str, kind: str, help: str) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Metric(name=name, kind=kind, help=help)
            self._metrics[name] = metric
        elif metric.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}"
            )
        if help and not metric.help:
            metric.help = help
        return metric

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    # ------------------------------------------------------------------
    def sample_counters(self, snapshot: Mapping[str, float]) -> None:
        """Fold a :meth:`CounterRegistry.snapshot` into counter metrics."""
        for raw, value in snapshot.items():
            if isinstance(value, (int, float)) and math.isfinite(value):
                self.counter(raw).set(value)

    def snapshot(self) -> dict[str, dict]:
        """All metrics as JSON-ready dicts, keyed by exported name."""
        return {m.name: m.as_dict() for m in self._metrics.values()}

    def flat(self) -> dict[str, float]:
        """Scalar view (histograms contribute ``_sum`` and ``_count``)."""
        out: dict[str, float] = {}
        for m in self._metrics.values():
            if m.kind == HISTOGRAM:
                out[f"{m.name}_sum"] = m.sum
                out[f"{m.name}_count"] = m.count
            else:
                out[m.name] = m.value
        return out

    # ------------------------------------------------------------------
    def to_prometheus(self) -> str:
        """Render the Prometheus text exposition format (version 0.0.4)."""
        label_str = ""
        if self.labels:
            pairs = ",".join(
                f'{k}="{_escape_label(v)}"' for k, v in sorted(self.labels.items())
            )
            label_str = "{" + pairs + "}"
        lines: list[str] = []
        for metric in sorted(self._metrics.values(), key=lambda m: m.name):
            if metric.help:
                lines.append(f"# HELP {metric.name} {metric.help}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            if metric.kind == HISTOGRAM:
                for bound, count in zip(metric.buckets, metric.bucket_counts):
                    lines.append(
                        f"{metric.name}_bucket"
                        f"{_with_label(self.labels, 'le', _format_bound(bound))}"
                        f" {count}"
                    )
                lines.append(
                    f"{metric.name}_bucket"
                    f"{_with_label(self.labels, 'le', '+Inf')} {metric.count}"
                )
                lines.append(f"{metric.name}_sum{label_str} {_num(metric.sum)}")
                lines.append(f"{metric.name}_count{label_str} {metric.count}")
            else:
                lines.append(f"{metric.name}{label_str} {_num(metric.value)}")
        return "\n".join(lines) + "\n"


def _escape_label(value: str) -> str:
    return str(value).replace("\\", r"\\").replace('"', r"\"").replace("\n", r"\n")


def _with_label(labels: Mapping[str, str], key: str, value: str) -> str:
    pairs = dict(labels)
    pairs[key] = value
    body = ",".join(f'{k}="{_escape_label(v)}"' for k, v in sorted(pairs.items()))
    return "{" + body + "}"


def _format_bound(bound: float) -> str:
    return f"{bound:g}"


def _num(value: float) -> str:
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


# ----------------------------------------------------------------------
# Exporters
# ----------------------------------------------------------------------
class PrometheusTextfileExporter:
    """Write the full exposition to a file, atomically (tmp + rename).

    The node-exporter textfile collector (and anything tailing the file)
    then always reads a complete sample. Repeated exports overwrite.
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = str(path)
        self.exports = 0

    def export(self, registry: MetricsRegistry, ts: float | None = None) -> None:
        text = registry.to_prometheus()
        tmp = f"{self.path}.tmp"
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(text)
        os.replace(tmp, self.path)
        self.exports += 1


class JsonlTimeSeriesExporter:
    """Append one ``{"ts": ..., "metrics": {...}}`` JSON line per sample."""

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = str(path)
        self.exports = 0

    def export(self, registry: MetricsRegistry, ts: float | None = None) -> None:
        sample = {
            "ts": round(time.time() if ts is None else ts, 6),
            "labels": dict(registry.labels),
            "metrics": registry.flat(),
        }
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(sample, default=str) + "\n")
        self.exports += 1


# ----------------------------------------------------------------------
# The pump: observation -> registry -> exporters, on the heartbeat tick
# ----------------------------------------------------------------------
class MetricsPump:
    """Samples an :class:`~repro.obs.Observation` into metrics and exports.

    Attach to an observation (``Observation(metrics=MetricsPump(...))``)
    and the heartbeat drives :meth:`sample` at its emission cadence — the
    hot loops pay nothing beyond the tick they already pay for. Call
    :meth:`finalize` once after the run to export the terminal state
    (phase timings, throughput) even when no heartbeat ever fired.
    """

    enabled = True

    def __init__(
        self,
        exporters: list | None = None,
        labels: Mapping[str, str] | None = None,
        registry: MetricsRegistry | None = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry(labels)
        self.exporters = list(exporters or [])
        self.samples = 0

    def sample(self, obs: Any = None, ts: float | None = None) -> None:
        """Fold the observation's counters in and push to every exporter."""
        if obs is not None:
            counters = getattr(obs, "counters", None)
            if counters is not None and counters.enabled:
                self.registry.sample_counters(counters.snapshot())
            heartbeat = getattr(obs, "heartbeat", None)
            if heartbeat is not None and heartbeat.enabled:
                self.registry.gauge(
                    "heartbeat_beats", "heartbeat lines emitted"
                ).set(heartbeat.beats)
            progress = getattr(obs, "progress", None)
            if progress is not None and progress.enabled:
                self.registry.gauge(
                    "progress_percent",
                    "monotone percent-complete of the current search",
                ).set(progress.percent)
                eta = progress.eta_seconds()
                if eta is not None:
                    self.registry.gauge(
                        "eta_seconds",
                        "smoothed estimated seconds to completion",
                    ).set(eta)
            recorder = getattr(obs, "recorder", None)
            if recorder is not None and recorder.enabled:
                self.registry.gauge(
                    "recorder_events", "flight-recorder events recorded"
                ).set(recorder.recorded)
        self.samples += 1
        for exporter in self.exporters:
            exporter.export(self.registry, ts=ts)

    def finalize(self, result: Any = None, obs: Any = None) -> None:
        """Export the terminal sample, adding the run's reporting fields."""
        if result is not None:
            self.registry.gauge(
                "read_seconds", "ReadCSR phase time of the last run"
            ).set(result.read_seconds)
            self.registry.gauge(
                "plan_seconds", "plan-optimization phase time of the last run"
            ).set(result.plan_seconds)
            self.registry.gauge(
                "execute_seconds", "execution phase time of the last run"
            ).set(result.elapsed)
            self.registry.gauge(
                "total_seconds", "read + optimize + execute of the last run"
            ).set(result.total_seconds)
            self.registry.gauge(
                "throughput_embeddings_per_second",
                "embeddings per execute-second of the last run",
            ).set(result.throughput)
            self.registry.counter(
                "embeddings", "embeddings found"
            ).set(result.count)
            self.registry.gauge(
                "timed_out", "1 when the last run hit its time limit"
            ).set(1.0 if result.timed_out else 0.0)
        self.sample(obs=obs)


class NullMetricsPump:
    """Disabled pump: sampling is a no-op."""

    enabled = False
    samples = 0
    exporters: list = []

    def sample(self, obs: Any = None, ts: float | None = None) -> None:
        pass

    def finalize(self, result: Any = None, obs: Any = None) -> None:
        pass


NULL_METRICS = NullMetricsPump()
