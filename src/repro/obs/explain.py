"""Plan EXPLAIN: why the optimizer chose this plan, and how it played out.

``repro explain`` renders, for one (pattern, variant, planner) task:

* the chosen matching order ``Phi*`` with, per step, the GCF rule that
  fired (``first`` / rule-set sizes ``|T1| |T2| |T3|``) and the cluster
  tie-break values ``omega`` (Eq. 2) that won;
* each step's backward constraints (which cluster neighbor lists the
  executor intersects) and cluster sizes;
* the dependency DAG ``H`` (Algorithm 2) and its *equivalence pairs* —
  vertex pairs with no path in either direction, exactly the pairs
  Definition 1 declares sequentially candidate-equivalent;
* **estimated** candidate counts per step (static-pool sizes and average
  cluster neighbor-list lengths), and — when a profiled run-report is
  supplied — the **actual** mean candidate counts measured per depth, so
  misestimates that misorder the plan become visible.

The estimate is deliberately simple (the planner itself is heuristic, not
cardinality-based): an unconstrained step costs its static pool size; a
constrained step costs the smallest average neighbor-list length among
its backward clusters. Comparing it against profiled actuals is the point.
"""

from __future__ import annotations

from typing import Any

from repro.core.equivalence import sce_statistics
from repro.core.plan import SUCCESSORS, Plan


def estimate_candidates(plan: Plan) -> list[float]:
    """Estimated candidates per order position (see module docstring)."""
    estimates: list[float] = []
    for pos in range(plan.num_vertices):
        constraints = plan.backward[pos]
        if not constraints:
            pool = plan.first_candidates[pos]
            estimates.append(float(0 if pool is None else len(pool)))
            continue
        best = None
        for c in constraints:
            if c.cluster.key is None:  # impossible-edge sentinel
                best = 0.0
                break
            sources = (
                c.cluster.source_vertices()
                if c.direction == SUCCESSORS
                else c.cluster.destination_vertices()
            )
            avg = c.cluster.num_entries / max(1, len(sources))
            if best is None or avg < best:
                best = avg
        estimates.append(round(best if best is not None else 0.0, 2))
    return estimates


def _actuals_from_report(report: dict | None) -> dict[int, dict]:
    """Per-depth actual rows from a run-report's profile block, if any."""
    if not report:
        return {}
    profile = report.get("profile") or {}
    rows = profile.get("search_depth") or []
    return {row["depth"]: row for row in rows if isinstance(row, dict)}


def build_explain(
    plan: Plan,
    sce_stats: Any = None,
    report: dict | None = None,
    physical: Any = None,
) -> dict[str, Any]:
    """Assemble the EXPLAIN document (JSON-ready) for a plan.

    ``sce_stats`` is a :class:`~repro.core.equivalence.SCEStats` (computed
    from the plan's DAG when omitted); ``report`` is a saved run-report
    whose profiled per-depth actuals are joined in when present.
    ``physical`` is the compiled :class:`~repro.engine.PhysicalPlan`
    (compiled here when omitted), so EXPLAIN reads the operators the
    executor actually runs, not just the logical plan.
    """
    if physical is None:
        from repro.engine.physical import compile_plan

        physical = compile_plan(plan)
    pattern = plan.pattern
    if sce_stats is None:
        sce_stats = sce_statistics(pattern, plan.dag)
    rationale_by_vertex = {
        entry.get("vertex"): entry for entry in plan.order_rationale
    }
    estimates = estimate_candidates(plan)
    actuals = _actuals_from_report(report)

    steps: list[dict] = []
    for pos, u in enumerate(plan.order):
        constraints = [
            {
                "prior": c.prior,
                "direction": c.direction,
                "cluster": str(c.cluster.key),
                "cluster_entries": c.cluster.num_entries,
            }
            for c in plan.backward[pos]
        ]
        pool = plan.first_candidates[pos]
        step: dict[str, Any] = {
            "position": pos,
            "vertex": u,
            "label": pattern.vertex_label(u),
            "constraints": constraints,
            "negations": len(plan.negations[pos]),
            "static_pool": None if pool is None else int(len(pool)),
            "estimated_candidates": estimates[pos],
        }
        rationale = rationale_by_vertex.get(u)
        if rationale:
            step["rationale"] = dict(rationale)
        actual = actuals.get(pos)
        if actual:
            step["actual_visits"] = actual.get("visits", 0)
            step["actual_mean_candidates"] = actual.get("mean_candidates", 0.0)
            step["actual_backtracks"] = actual.get("backtracks", 0)
        steps.append(step)

    equivalence_pairs = sorted(plan.dag.independent_pairs())
    dag_edges = sorted(
        (src, dst) for src, dsts in plan.dag.out.items() for dst in dsts
    )
    return {
        "planner": plan.planner_name,
        "variant": str(plan.variant),
        "order": list(plan.order),
        "plan_seconds": plan.plan_seconds,
        "clusters_used": plan.task_clusters.num_clusters,
        "bytes_read": plan.task_clusters.bytes_read,
        "impossible": plan.impossible(),
        "steps": steps,
        "dag": {"edges": dag_edges, "num_edges": len(dag_edges)},
        "equivalence_pairs": equivalence_pairs,
        "sce": {
            "occurrence": sce_stats.occurrence,
            "cluster_ratio": sce_stats.cluster_ratio,
            "sce_vertices": sce_stats.sce_vertices,
            "sce_pairs": sce_stats.sce_pairs,
            "cluster_pairs": sce_stats.cluster_pairs,
        },
        "physical": {
            "compile_seconds": physical.compile_seconds,
            "num_ops": len(physical.ops),
            "num_specs": physical.num_specs,
            "ops": physical.step_table(),
        },
        "has_actuals": bool(actuals),
    }


def _format_rationale(rationale: dict | None) -> str:
    if not rationale:
        return "-"
    if rationale.get("rule") == "first":
        return (
            f"first (degree={rationale.get('degree')},"
            f" min cluster={rationale.get('min_incident_cluster')})"
        )
    omega = rationale.get("omega") or []
    omega_str = ",".join("inf" if o is None else f"{o:g}" for o in omega)
    return (
        f"|T1|={rationale.get('t1')} |T2|={rationale.get('t2')}"
        f" |T3|={rationale.get('t3')} omega=({omega_str})"
    )


def format_explain(info: dict) -> str:
    """Human-readable EXPLAIN rendering (the ``repro explain`` output)."""
    lines = [
        f"EXPLAIN — planner {info['planner']} / variant {info['variant']}",
        f"order (Phi*)  : {info['order']}",
        f"clusters used : {info['clusters_used']}"
        f" ({info['bytes_read']} bytes read)",
        f"plan time     : {info['plan_seconds']:.4f} s",
    ]
    if info.get("impossible"):
        lines.append("NOTE: a pattern edge matched no cluster — 0 embeddings")
    lines.append("")
    lines.append("steps (GCF rule firings and candidate estimates):")
    header = (
        f"  {'pos':>3}  {'u':>4}  {'est.cand':>9}"
        + ("  {:>9}  {:>7}".format("act.cand", "visits") if info["has_actuals"] else "")
        + "  rule / tie-break"
    )
    lines.append(header)
    for step in info["steps"]:
        actual = ""
        if info["has_actuals"]:
            actual = "  {:>9}  {:>7}".format(
                f"{step.get('actual_mean_candidates', 0.0):g}"
                if "actual_mean_candidates" in step
                else "-",
                step.get("actual_visits", "-"),
            )
        lines.append(
            f"  {step['position']:>3}  u{step['vertex']:<3}"
            f"  {step['estimated_candidates']:>9g}"
            + actual
            + f"  {_format_rationale(step.get('rationale'))}"
        )
        for c in step["constraints"]:
            arrow = "->" if c["direction"] == SUCCESSORS else "<-"
            lines.append(
                f"        u{c['prior']}{arrow}u{step['vertex']}"
                f" via {c['cluster']} ({c['cluster_entries']} entries)"
            )
        if step["negations"]:
            lines.append(f"        {step['negations']} negation probes")
        if step["static_pool"] is not None and not step["constraints"]:
            lines.append(f"        static pool of {step['static_pool']} candidates")
    lines.append("")
    dag = info["dag"]
    lines.append(f"dependency DAG H: {dag['num_edges']} edges")
    if dag["edges"]:
        rendered = ", ".join(f"u{s}->u{d}" for s, d in dag["edges"])
        lines.append(f"  {rendered}")
    pairs = info["equivalence_pairs"]
    lines.append(
        f"equivalence (no-path) pairs: {len(pairs)}"
        + (
            "  " + ", ".join(f"(u{a},u{b})" for a, b in pairs)
            if pairs
            else ""
        )
    )
    sce = info["sce"]
    lines.append(
        f"SCE occurrence: {sce['occurrence']:.0%} of pattern vertices,"
        f" cluster share {sce['cluster_ratio']:.0%}"
        f" ({sce['sce_pairs']} pairs, {sce['cluster_pairs']} cluster-supplied)"
    )
    physical = info.get("physical")
    if physical:
        lines.append("")
        lines.append(
            f"physical plan: {physical['num_ops']} extend ops,"
            f" {physical['num_specs']} interned candidate specs,"
            f" compiled in {physical['compile_seconds']:.4f} s"
        )
        for op in physical["ops"]:
            flags = []
            if op["restrictions"]:
                flags.append(f"{op['restrictions']} restriction(s)")
            if op["pinned"]:
                flags.append("pinned")
            lines.append(
                f"  op {op['position']:>2}: extend u{op['vertex']}"
                f" spec#{op['spec']}"
                f" constraints={op['constraints']}"
                f" negations={op['negations']}"
                + (
                    f" pool={op['static_pool']}"
                    if op["static_pool"] is not None
                    else ""
                )
                + (f"  [{', '.join(flags)}]" if flags else "")
            )
    if not info["has_actuals"]:
        lines.append(
            "(supply --report RUN.json from a --profile run to compare"
            " estimated vs. actual candidates)"
        )
    return "\n".join(lines)
