"""Opt-in profiling: per-span memory, per-depth search profile, hot clusters.

Three questions the paper's evaluation keeps asking — *where does memory
go* (the RAM columns), *where does the search spend its nodes* (Fig. 12's
SCE-occurrence analysis), and *which clusters dominate the read phase*
(Fig. 11's CCSR overhead) — need data the one-shot counters cannot give.
This module collects it, opt-in (``--profile`` / ``Observation(profile=
True)``), at a measurable but bounded cost; unprofiled runs keep the
zero-cost null instruments.

* :class:`MemoryTracer` — a :class:`~repro.obs.tracer.Tracer` that
  annotates every span with tracemalloc deltas: ``mem_peak_kb`` (absolute
  peak traced allocation during the span, children included) and
  ``mem_net_kb`` (net allocation across the span). ``tracemalloc``'s peak
  counter is process-global, so the enter/exit bookkeeping folds each
  child's window into its parent — peaks stay correct through nesting.
* :class:`SearchDepthProfile` — visits, backtracks, SCE memo hits/misses,
  and candidate-list sizes **per pattern-vertex depth** (plan position):
  the per-depth breakdown behind the SCE occurrence story.
* hot clusters — rows/bytes decompressed per cluster key, for the
  "top-k clusters by rows" table (which reads dominate ReadCSR).

Profiling is single-threaded by design: tracemalloc's peak counter is
global, so concurrent profiled runs would cross-contaminate their peaks.
"""

from __future__ import annotations

import threading
import tracemalloc

from repro.obs.tracer import Span, Tracer


class SearchDepthProfile:
    """Per-depth search counters (depth = plan position, 0-based).

    The hot loops call :meth:`visit` / :meth:`backtrack`, and the
    candidate computer calls :meth:`memo_hit` / :meth:`memo_miss`, only
    when a profiler is attached — one ``is not None`` branch per node on
    the unprofiled path.
    """

    __slots__ = ("visits", "backtracks", "memo_hits", "memo_misses", "candidates")

    def __init__(self) -> None:
        self.visits: dict[int, int] = {}
        self.backtracks: dict[int, int] = {}
        self.memo_hits: dict[int, int] = {}
        self.memo_misses: dict[int, int] = {}
        self.candidates: dict[int, int] = {}

    def visit(self, depth: int, num_candidates: int) -> None:
        self.visits[depth] = self.visits.get(depth, 0) + 1
        self.candidates[depth] = self.candidates.get(depth, 0) + num_candidates

    def backtrack(self, depth: int) -> None:
        self.backtracks[depth] = self.backtracks.get(depth, 0) + 1

    def memo_hit(self, depth: int) -> None:
        self.memo_hits[depth] = self.memo_hits.get(depth, 0) + 1

    def memo_miss(self, depth: int) -> None:
        self.memo_misses[depth] = self.memo_misses.get(depth, 0) + 1

    def depths(self) -> list[int]:
        seen = (
            set(self.visits)
            | set(self.backtracks)
            | set(self.memo_hits)
            | set(self.memo_misses)
        )
        return sorted(seen)

    def rows(self, order: list[int] | None = None) -> list[dict]:
        """One dict per depth, JSON-ready (the run-report's search table)."""
        rows = []
        for depth in self.depths():
            visits = self.visits.get(depth, 0)
            row = {
                "depth": depth,
                "visits": visits,
                "backtracks": self.backtracks.get(depth, 0),
                "memo_hits": self.memo_hits.get(depth, 0),
                "memo_misses": self.memo_misses.get(depth, 0),
                "candidates": self.candidates.get(depth, 0),
                "mean_candidates": (
                    round(self.candidates.get(depth, 0) / visits, 2)
                    if visits
                    else 0.0
                ),
            }
            if order is not None and 0 <= depth < len(order):
                row["vertex"] = order[depth]
            rows.append(row)
        return rows


class Profiler:
    """The run's profiling hub (``Observation(profile=True)``).

    Owns the tracemalloc session (started lazily, stopped by
    :meth:`finish` if this profiler started it), the per-depth
    :class:`SearchDepthProfile`, the per-span memory summary fed by
    :class:`MemoryTracer`, and the hot-cluster table fed by
    :meth:`~repro.ccsr.store.CCSRStore.read`.
    """

    enabled = True

    def __init__(self, top_k: int = 10, start_tracemalloc: bool = True) -> None:
        self.top_k = top_k
        self.search = SearchDepthProfile()
        #: cluster key -> {"rows": ..., "bytes": ..., "reads": ...}
        self.clusters: dict[str, dict] = {}
        #: span name -> {"peak_kb": max, "net_kb": sum, "spans": n}
        self.span_memory: dict[str, dict] = {}
        self.overall_peak_bytes = 0
        self._owns_tracemalloc = False
        if start_tracemalloc and not tracemalloc.is_tracing():
            tracemalloc.start()
            self._owns_tracemalloc = True

    # ------------------------------------------------------------------
    def record_cluster(self, key: str, rows: int, nbytes: int) -> None:
        entry = self.clusters.get(key)
        if entry is None:
            self.clusters[key] = {"rows": rows, "bytes": nbytes, "reads": 1}
        else:
            entry["rows"] += rows
            entry["bytes"] += nbytes
            entry["reads"] += 1

    def hot_clusters(self, k: int | None = None) -> list[dict]:
        """Top-k clusters by rows decompressed, descending."""
        ranked = sorted(
            ({"key": key, **stats} for key, stats in self.clusters.items()),
            key=lambda row: (-row["rows"], -row["bytes"], row["key"]),
        )
        return ranked[: k if k is not None else self.top_k]

    def note_span_memory(self, name: str, peak_bytes: int, net_bytes: int) -> None:
        entry = self.span_memory.get(name)
        peak_kb = round(peak_bytes / 1024, 1)
        net_kb = round(net_bytes / 1024, 1)
        if entry is None:
            self.span_memory[name] = {
                "peak_kb": peak_kb,
                "net_kb": net_kb,
                "spans": 1,
            }
        else:
            entry["peak_kb"] = max(entry["peak_kb"], peak_kb)
            entry["net_kb"] = round(entry["net_kb"] + net_kb, 1)
            entry["spans"] += 1
        if peak_bytes > self.overall_peak_bytes:
            self.overall_peak_bytes = peak_bytes

    # ------------------------------------------------------------------
    @property
    def peak_mb(self) -> float:
        """Peak traced allocation observed in any span, in MiB.

        This is the quantity both ``--profile`` run-reports and the
        memory-footprint benchmark report — one definition, one number.
        """
        peak = self.overall_peak_bytes
        if tracemalloc.is_tracing():
            _, live_peak = tracemalloc.get_traced_memory()
            peak = max(peak, live_peak)
        return round(peak / 2**20, 3)

    def finish(self) -> None:
        """Capture the final peak and release tracemalloc if we started it."""
        if tracemalloc.is_tracing():
            _, peak = tracemalloc.get_traced_memory()
            if peak > self.overall_peak_bytes:
                self.overall_peak_bytes = peak
            if self._owns_tracemalloc:
                tracemalloc.stop()
                self._owns_tracemalloc = False

    # ------------------------------------------------------------------
    def as_dict(self, order: list[int] | None = None) -> dict:
        """The run-report ``profile`` block."""
        return {
            "peak_mb": self.peak_mb,
            "memory_by_span": {
                name: dict(stats) for name, stats in sorted(self.span_memory.items())
            },
            "search_depth": self.search.rows(order),
            "hot_clusters": self.hot_clusters(),
        }


class NullProfiler:
    """Disabled profiler; hot loops check ``enabled`` once per run."""

    enabled = False
    search = None
    clusters: dict = {}
    span_memory: dict = {}
    overall_peak_bytes = 0
    peak_mb = 0.0

    def record_cluster(self, key: str, rows: int, nbytes: int) -> None:
        pass

    def note_span_memory(self, name: str, peak_bytes: int, net_bytes: int) -> None:
        pass

    def hot_clusters(self, k: int | None = None) -> list:
        return []

    def finish(self) -> None:
        pass

    def as_dict(self, order: list[int] | None = None) -> dict:
        return {}


NULL_PROFILE = NullProfiler()


class MemoryTracer(Tracer):
    """A tracer whose spans also record tracemalloc peak/net memory.

    tracemalloc's peak counter is global, so each span's window must be
    isolated: on push the parent's accumulated window peak is folded into
    the parent's running maximum before the counter is reset; on pop the
    child's total peak propagates back up. The net effect: every span's
    ``mem_peak_kb`` is the true absolute peak of traced memory while that
    span (and its children) ran.
    """

    def __init__(self, profiler: Profiler | None = None) -> None:
        super().__init__()
        self.profiler = profiler
        self._mlocal = threading.local()

    def _mem_stack(self) -> list:
        stack = getattr(self._mlocal, "stack", None)
        if stack is None:
            stack = self._mlocal.stack = []
        return stack

    def _push(self, span: Span) -> None:
        super()._push(span)
        if not tracemalloc.is_tracing():
            return
        current, peak = tracemalloc.get_traced_memory()
        stack = self._mem_stack()
        if stack:
            stack[-1][1] = max(stack[-1][1], peak)
        tracemalloc.reset_peak()
        # [current-at-entry, max child/window peak seen so far]
        stack.append([current, 0])

    def _pop(self, span: Span) -> None:
        if tracemalloc.is_tracing():
            stack = self._mem_stack()
            if stack:
                current, peak = tracemalloc.get_traced_memory()
                entry_current, child_peak = stack.pop()
                span_peak = max(peak, child_peak)
                span.set("mem_peak_kb", round(span_peak / 1024, 1))
                span.set("mem_net_kb", round((current - entry_current) / 1024, 1))
                if stack:
                    stack[-1][1] = max(stack[-1][1], span_peak)
                tracemalloc.reset_peak()
                if self.profiler is not None:
                    self.profiler.note_span_memory(
                        span.name, span_peak, current - entry_current
                    )
        super()._pop(span)
