"""Nested tracing spans with monotonic timings.

A :class:`Tracer` records a tree of :class:`Span` objects per thread —
``with tracer.span("read"):`` opens a child of whatever span is currently
active on the calling thread, so the pipeline's natural call structure
(``match`` → ``read`` / ``plan`` / ``execute`` → per-cluster decompression)
becomes the span tree without any explicit parent bookkeeping. Timings use
``time.perf_counter`` (monotonic), so child durations never exceed their
parent's and re-entrant spans nest correctly.

The disabled path is :data:`NULL_TRACER`: ``span()`` returns a shared
singleton whose ``__enter__``/``__exit__``/``set`` are no-ops — zero
allocations, so instrumented call sites cost one attribute load and a
method call when tracing is off.
"""

from __future__ import annotations

import threading
import time
from types import TracebackType
from typing import Any


class Span:
    """One timed region: name, attributes, and child spans."""

    __slots__ = ("name", "attrs", "start", "end", "children")

    def __init__(self, name: str, attrs: dict | None = None) -> None:
        self.name = name
        self.attrs: dict = attrs or {}
        self.start: float = 0.0
        self.end: float = 0.0
        self.children: list[Span] = []

    @property
    def duration(self) -> float:
        """Seconds between enter and exit (0.0 while still open)."""
        if self.end < self.start:
            return 0.0
        return self.end - self.start

    def set(self, key: str, value: Any) -> None:
        """Attach an attribute to the span (e.g. bytes read, order chosen)."""
        self.attrs[key] = value

    def to_dict(self) -> dict:
        """JSON-ready representation (durations in seconds)."""
        payload: dict = {"name": self.name, "duration_seconds": self.duration}
        if self.attrs:
            payload["attrs"] = dict(self.attrs)
        if self.children:
            payload["children"] = [c.to_dict() for c in self.children]
        return payload

    def find(self, name: str) -> "Span | None":
        """Depth-first lookup of a descendant (or self) by name."""
        if self.name == name:
            return self
        for child in self.children:
            found = child.find(name)
            if found is not None:
                return found
        return None

    def __repr__(self) -> str:
        return f"<Span {self.name} {self.duration:.6f}s children={len(self.children)}>"


class _SpanHandle:
    """Context manager pushing/popping one span on the tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span) -> None:
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._push(self._span)
        self._span.start = time.perf_counter()
        return self._span

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        self._span.end = time.perf_counter()
        if exc_type is not None:
            self._span.attrs.setdefault("error", exc_type.__name__)
        self._tracer._pop(self._span)
        return False


class Tracer:
    """Thread-safe in-memory span collector.

    Each thread keeps its own open-span stack (``threading.local``);
    completed top-level spans from all threads are appended to a shared,
    lock-protected ``roots`` list in completion order.
    """

    enabled = True

    def __init__(self) -> None:
        self.roots: list[Span] = []
        self._local = threading.local()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> _SpanHandle:
        """Open a span as a context manager; attributes are key=value."""
        return _SpanHandle(self, Span(name, attrs or None))

    def current(self) -> Span | None:
        """The innermost open span on this thread, if any."""
        stack = getattr(self._local, "stack", None)
        return stack[-1] if stack else None

    def _push(self, span: Span) -> None:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        if stack:
            stack[-1].children.append(span)
        stack.append(span)

    def _pop(self, span: Span) -> None:
        stack = self._local.stack
        stack.pop()
        if not stack:
            with self._lock:
                self.roots.append(span)

    # ------------------------------------------------------------------
    def find(self, name: str) -> Span | None:
        """First span with this name anywhere in the collected trees."""
        for root in self.roots:
            found = root.find(name)
            if found is not None:
                return found
        return None

    def to_list(self) -> list[dict]:
        """All completed root spans as JSON-ready dicts."""
        with self._lock:
            roots = list(self.roots)
        return [root.to_dict() for root in roots]

    def clear(self) -> None:
        with self._lock:
            self.roots.clear()

    def __repr__(self) -> str:
        return f"<Tracer roots={len(self.roots)}>"


class _NullSpan:
    """Shared do-nothing span; ``set`` and the context protocol are no-ops."""

    __slots__ = ()
    name = ""
    attrs: dict = {}
    children: list = []
    duration = 0.0

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> bool:
        return False

    def set(self, key: str, value: Any) -> None:
        pass

    def to_dict(self) -> dict:
        return {}

    def find(self, name: str) -> None:
        return None


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The zero-cost disabled tracer (see module docstring)."""

    enabled = False
    roots: list = []

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def current(self) -> None:
        return None

    def find(self, name: str) -> None:
        return None

    def to_list(self) -> list:
        return []

    def clear(self) -> None:
        pass


NULL_TRACER = NullTracer()
