"""The run-telemetry counter registry and the unified stats schema.

Two layers cooperate here:

* hot loops (:class:`~repro.engine.candidates.CandidateComputer`, the
  iterative executor's :class:`~repro.engine.executor.Runtime`, the SCE
  counter) keep plain
  integer attributes — a Python ``int`` increment is the cheapest
  instrumentation possible and is what the seed already paid for
  ``nodes``/``memo_hits``;
* at run end those integers are folded into one canonical dict via
  :func:`unified_stats` and, when observability is on, merged into the
  run's :class:`CounterRegistry` so spans, heartbeats, and the run-report
  all read from the same numbers.

:data:`STAT_KEYS` is the contract: the enumeration path and the counting
path (``count_only=True``) emit **exactly** this key set, so downstream
consumers (bench rows, run-reports, the CLI) never branch on which path
produced a result. ``computed``, ``memo_hits``, ``intersections``,
``factorizations``, ``group_memo_hits``, and ``nodes`` are the seed's
original keys, kept as-is (aliases of the unified schema).
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Iterable, Mapping

#: Canonical ``MatchResult.stats`` keys, emitted by *both* execution paths.
STAT_KEYS: tuple[str, ...] = (
    "nodes",
    "computed",
    "memo_hits",
    "memo_misses",
    "intersections",
    "negation_checks",
    "backtracks",
    "prunes_injective",
    "prunes_restriction",
    "factorizations",
    "group_memo_hits",
)

#: Every registry counter name bumped outside the unified stats fold —
#: the dotted subsystem counters (``ccsr.*``, ``plan_cache.*``,
#: ``continuous.*``) and the governor's degradation events. The
#: ``obs_keys`` reprolint pass checks every ``.inc()``/``._count()``
#: string literal against ``STAT_KEYS`` + this tuple, so a new counter
#: name must be registered here before the code bumping it can land.
KNOWN_COUNTERS: tuple[str, ...] = (
    "plan_cache.hits",
    "plan_cache.misses",
    "ccsr.clusters_read",
    "ccsr.bytes_read",
    "ccsr.rows_read",
    "ccsr.read_retries",
    "continuous.updates",
    "continuous.pins",
    "continuous.delta_embeddings",
    "governor_evictions",
    "governor_memo_disabled",
    "governor_suspensions",
    "pool.stall_kills",
    "pool.quarantined_units",
)


def unified_stats(
    nodes: int = 0,
    candidate_stats: Any = None,
    backtracks: int = 0,
    prunes_injective: int = 0,
    prunes_restriction: int = 0,
    factorizations: int = 0,
    group_memo_hits: int = 0,
) -> dict[str, int]:
    """Assemble the canonical stats dict (see :data:`STAT_KEYS`).

    ``candidate_stats`` is a :class:`~repro.core.candidates.CandidateStats`
    (or ``None`` for engines without candidate memoization, e.g. the
    baselines, which then report zeros for those counters).
    """
    stats = {
        "nodes": nodes,
        "computed": 0,
        "memo_hits": 0,
        "memo_misses": 0,
        "intersections": 0,
        "negation_checks": 0,
        "backtracks": backtracks,
        "prunes_injective": prunes_injective,
        "prunes_restriction": prunes_restriction,
        "factorizations": factorizations,
        "group_memo_hits": group_memo_hits,
    }
    if candidate_stats is not None:
        stats.update(candidate_stats.as_dict())
    return stats


class CounterRegistry:
    """Named integer counters for one run, with pluggable sources.

    Direct counters are bumped with :meth:`inc`; *sources* are callables
    returning a dict, polled at :meth:`snapshot` time — that is how the
    hot-path integer attributes join the registry without paying a method
    call per increment. Each matcher run owns its registry, so concurrent
    runs never share counters; :meth:`merge` folds finished-run stats in
    under a lock for the rare multi-threaded aggregation case.
    """

    enabled = True

    def __init__(self) -> None:
        self._counts: dict[str, int] = {}
        self._sources: list[Callable[[], Mapping[str, int]]] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def inc(self, name: str, amount: int = 1) -> None:
        """Increment a counter (creating it at 0)."""
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + amount

    def add_source(self, source: Callable[[], Mapping[str, int]]) -> None:
        """Register a callable polled at snapshot time (values are summed
        into any same-named direct counters)."""
        self._sources.append(source)

    def merge(self, stats: Mapping[str, int]) -> None:
        """Fold a finished stats dict into the registry (summing)."""
        with self._lock:
            for key, value in stats.items():
                if isinstance(value, (int, float)):
                    self._counts[key] = self._counts.get(key, 0) + value

    def get(self, name: str, default: int = 0) -> int:
        return self.snapshot().get(name, default)

    def snapshot(self) -> dict[str, int]:
        """Current counter values, direct counters plus polled sources."""
        with self._lock:
            merged = dict(self._counts)
        for source in self._sources:
            for key, value in source().items():
                if isinstance(value, (int, float)):
                    merged[key] = merged.get(key, 0) + value
        return merged

    def clear(self) -> None:
        with self._lock:
            self._counts.clear()
        self._sources.clear()

    def __repr__(self) -> str:
        return f"<CounterRegistry {len(self._counts)} counters>"


class NullCounterRegistry:
    """Disabled registry: every operation is a no-op."""

    enabled = False

    def inc(self, name: str, amount: int = 1) -> None:
        pass

    def add_source(self, source: Callable[[], Mapping[str, int]]) -> None:
        pass

    def merge(self, stats: Mapping[str, int]) -> None:
        pass

    def get(self, name: str, default: int = 0) -> int:
        return default

    def snapshot(self) -> dict:
        return {}

    def clear(self) -> None:
        pass


NULL_COUNTERS = NullCounterRegistry()


def assert_stat_keys(stats: Iterable[str]) -> None:
    """Raise ``ValueError`` unless ``stats`` covers exactly the canonical
    key set — used by tests to pin the enumeration/counting parity."""
    got = set(stats)
    want = set(STAT_KEYS)
    if got != want:
        missing = sorted(want - got)
        extra = sorted(got - want)
        raise ValueError(
            f"stats keys diverge from STAT_KEYS: missing={missing} extra={extra}"
        )
