"""The flight recorder: an always-on ring buffer of typed engine events.

Run-reports and span trees describe a run *after* it finished; the flight
recorder answers the operational question "what was the engine doing just
before it stopped?". It is a fixed-capacity ring buffer of small typed
events — tick samples, governor degradation rungs, checkpoint writes,
fault-site firings, stop reasons, run start/end markers — recorded from
the executor/counter tick at near-zero cost (one bounded-deque append per
:data:`~repro.engine.executor._TIME_CHECK_INTERVAL` frame steps). Old
events fall off the front, so the buffer always holds the *tail* of the
run: exactly the part a post-mortem needs.

The recorder is dumped three ways:

* automatically into the run-report (``build_run_report`` adds a
  ``recorder`` block whenever events were recorded);
* on demand via ``csce match --dump-recorder`` or ``SIGUSR1`` (the CLI
  prints :meth:`FlightRecorder.format_dump` to stderr);
* as a Chrome/Perfetto trace via :func:`write_perfetto`
  (``csce match --trace-perfetto PATH``): spans become ``"ph": "X"``
  duration events, recorder events become ``"ph": "i"`` instants on the
  same ``time.perf_counter`` timeline, loadable in ``ui.perfetto.dev`` or
  ``chrome://tracing``.

Event names are a closed registry (:data:`KNOWN_EVENTS`): the ``obs_keys``
reprolint pass checks every ``.record()`` string literal against it, so a
typo'd event name fails lint instead of silently fragmenting the stream.
"""

from __future__ import annotations

import json
import os
import time
from collections import deque
from typing import Any

#: Every event name recorded by literal in this codebase. The ``obs_keys``
#: reprolint pass gates ``.record()`` string literals against this tuple,
#: so a new event type must be registered here before the code emitting it
#: can land.
KNOWN_EVENTS: tuple[str, ...] = (
    "run_start",  # a run/stream opened (mode, op count)
    "tick",       # periodic tick sample (nodes, emitted, depth, phase)
    "degrade",    # governor degradation rung (rung name, stage)
    "checkpoint", # a resumable checkpoint was written (path)
    "fault",      # an injected fault site fired (site, context)
    "stop",       # a cooperative stop (reason, nodes, emitted)
    "run_end",    # the run/stream finished (count, stop reason)
    "unit",       # a pool work unit changed state (id, worker, event)
    "steal",      # a work-steal split (victim worker, unit, new unit)
    "worker",     # a pool worker lifecycle event (id, pid, event)
    "worker_stall",  # the stall watchdog escalated (worker, pid, unit, age)
    "quarantine", # a poison unit was quarantined (unit, attempts, path)
)

DEFAULT_CAPACITY = 256


class RecordedEvent:
    """One typed event: name, monotonic timestamp, small field dict."""

    __slots__ = ("name", "ts", "fields")

    def __init__(self, name: str, ts: float, fields: dict) -> None:
        self.name = name
        self.ts = ts
        self.fields = fields

    def as_dict(self) -> dict:
        payload: dict = {"name": self.name, "ts": round(self.ts, 6)}
        if self.fields:
            payload["fields"] = dict(self.fields)
        return payload

    def render(self, origin: float = 0.0) -> str:
        shown = " ".join(f"{k}={v}" for k, v in self.fields.items())
        return (
            f"+{self.ts - origin:10.6f}s {self.name:<10}"
            + (f" {shown}" if shown else "")
        )

    def __repr__(self) -> str:
        return f"<RecordedEvent {self.name} @{self.ts:.6f}>"


class FlightRecorder:
    """Fixed-size ring buffer of :class:`RecordedEvent` (see module doc).

    ``record`` is the single hot-path entry point: one timestamp read and
    one bounded-deque append. ``recorded`` counts every event ever seen;
    ``dropped`` counts those that fell off the front, so consumers can
    tell a complete history from a tail.
    """

    enabled = True

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity <= 0:
            raise ValueError(f"recorder capacity must be positive: {capacity}")
        self.capacity = capacity
        self.recorded = 0
        self.started = time.perf_counter()
        self._ring: deque[RecordedEvent] = deque(maxlen=capacity)

    def record(self, name: str, **fields: Any) -> None:
        """Append one event (evicting the oldest when full)."""
        self.recorded += 1
        self._ring.append(RecordedEvent(name, time.perf_counter(), fields))

    @property
    def dropped(self) -> int:
        """Events evicted from the ring (0 while under capacity)."""
        return self.recorded - len(self._ring)

    def events(self) -> list[RecordedEvent]:
        """The retained tail, oldest first."""
        return list(self._ring)

    def tail(self, n: int) -> list[RecordedEvent]:
        """The newest ``n`` retained events, oldest first."""
        if n <= 0:
            return []
        return list(self._ring)[-n:]

    def clear(self) -> None:
        self._ring.clear()
        self.recorded = 0

    def as_dict(self, limit: int | None = None) -> dict:
        """JSON-ready dump (the run-report's ``recorder`` block)."""
        events = self.events() if limit is None else self.tail(limit)
        return {
            "capacity": self.capacity,
            "recorded": self.recorded,
            "dropped": self.dropped,
            "events": [event.as_dict() for event in events],
        }

    def format_dump(self, limit: int | None = None) -> str:
        """Human-readable dump (``--dump-recorder`` / SIGUSR1)."""
        events = self.events() if limit is None else self.tail(limit)
        header = (
            f"flight recorder: {self.recorded} event(s) recorded,"
            f" {self.dropped} dropped, showing {len(events)}"
        )
        origin = events[0].ts if events else self.started
        lines = [header]
        lines.extend(f"  {event.render(origin)}" for event in events)
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self._ring)

    def __repr__(self) -> str:
        return (
            f"<FlightRecorder {len(self._ring)}/{self.capacity}"
            f" (recorded={self.recorded})>"
        )


class NullFlightRecorder:
    """Disabled recorder: ``record`` is a no-op; dumps are empty."""

    enabled = False
    capacity = 0
    recorded = 0
    dropped = 0

    def record(self, name: str, **fields: Any) -> None:
        pass

    def events(self) -> list:
        return []

    def tail(self, n: int) -> list:
        return []

    def clear(self) -> None:
        pass

    def as_dict(self, limit: int | None = None) -> dict:
        return {"capacity": 0, "recorded": 0, "dropped": 0, "events": []}

    def format_dump(self, limit: int | None = None) -> str:
        return "flight recorder: disabled"

    def __len__(self) -> int:
        return 0


NULL_RECORDER = NullFlightRecorder()


# ----------------------------------------------------------------------
# Chrome/Perfetto trace-event export
# ----------------------------------------------------------------------
def _jsonable(value: Any) -> Any:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def _span_events(span: Any, pid: int, tid: int, out: list) -> None:
    # "ph": "X" complete events: ts/dur in microseconds on the
    # time.perf_counter timeline spans already use.
    event = {
        "name": span.name,
        "ph": "X",
        "ts": span.start * 1e6,
        "dur": max(0.0, span.duration) * 1e6,
        "pid": pid,
        "tid": tid,
    }
    if span.attrs:
        event["args"] = {k: _jsonable(v) for k, v in span.attrs.items()}
    out.append(event)
    for child in span.children:
        _span_events(child, pid, tid, out)


def perfetto_trace(
    tracer: Any = None, recorder: Any = None, pid: int | None = None
) -> dict:
    """Render spans + recorder events as a Chrome trace-event document.

    Spans become nested ``"ph": "X"`` duration events; recorder events
    become ``"ph": "i"`` instants (thread scope) interleaved on the same
    monotonic timeline. The result loads directly in Perfetto
    (``ui.perfetto.dev``) or ``chrome://tracing``.
    """
    pid = os.getpid() if pid is None else pid
    events: list[dict] = []
    if tracer is not None and getattr(tracer, "enabled", False):
        for root in tracer.roots:
            _span_events(root, pid, 0, events)
    if recorder is not None and getattr(recorder, "enabled", False):
        for recorded in recorder.events():
            instant = {
                "name": recorded.name,
                "ph": "i",
                "s": "t",
                "ts": recorded.ts * 1e6,
                "pid": pid,
                "tid": 0,
            }
            if recorded.fields:
                instant["args"] = {
                    k: _jsonable(v) for k, v in recorded.fields.items()
                }
            events.append(instant)
    events.sort(key=lambda e: e["ts"])
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_perfetto(
    path: str | os.PathLike, tracer: Any = None, recorder: Any = None
) -> dict:
    """Write :func:`perfetto_trace` to ``path``; returns the document."""
    doc = perfetto_trace(tracer=tracer, recorder=recorder)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(doc, handle)
    return doc
