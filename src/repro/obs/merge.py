"""Merge-ready multi-worker observability.

The ROADMAP's next tier distributes enumeration over workers as portable
frame-stack work units (the checkpoint payload already makes a suspended
search serializable); this module defines the observability contract that
fan-out plugs into, before any process pool exists:

* :func:`merge_counters` — the **exact, associative, commutative** merge
  of counter snapshots. Counters are plain integer (occasionally float)
  sums, so merging K worker snapshots in any order and grouping
  reproduces the single-process totals bit-for-bit (integer addition is
  associative and commutative; Hypothesis pins this in
  ``tests/test_property_hypothesis.py``).
* :class:`WorkerSnapshot` — a worker-tagged, JSON-portable bundle of one
  worker's counter registry and unified stats, with an optional
  :class:`SpanContext` linking its spans to the coordinator's trace.
* :class:`SpanContext` — serializable trace/parent-span identity. A
  coordinator mints one root context, derives a child per work unit
  (:meth:`SpanContext.child`), and ships it inside the unit; the worker's
  spans then carry ``trace_id``/``parent_id`` attributes that stitch the
  distributed trace back together.
* :class:`WorkUnit` — a portable unit of work: an opaque frame-stack
  payload (e.g. :meth:`repro.engine.executor.SearchState.to_payload`)
  plus the worker tag and span context, round-trippable through JSON.
* :func:`merge_run_reports` — N shard run-reports folded into one valid
  aggregate report with a ``shards`` block, so ``csce report`` renders a
  distributed run exactly like a local one.

Everything here is pure data plumbing — no engine imports — so the future
``--workers N`` front-end and the bench harness can both use it.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Iterable, Mapping, Sequence


def _new_id(nbytes: int = 8) -> str:
    return os.urandom(nbytes).hex()


@dataclass(frozen=True)
class SpanContext:
    """Serializable trace identity carried into portable work units."""

    trace_id: str
    span_id: str
    parent_id: str | None = None

    @classmethod
    def new_root(cls) -> "SpanContext":
        """Mint a fresh root context (coordinator side)."""
        return cls(trace_id=_new_id(16), span_id=_new_id())

    def child(self) -> "SpanContext":
        """Derive a child context: same trace, this span as the parent."""
        return SpanContext(
            trace_id=self.trace_id,
            span_id=_new_id(),
            parent_id=self.span_id,
        )

    def to_dict(self) -> dict:
        payload: dict = {"trace_id": self.trace_id, "span_id": self.span_id}
        if self.parent_id is not None:
            payload["parent_id"] = self.parent_id
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "SpanContext":
        return cls(
            trace_id=str(payload["trace_id"]),
            span_id=str(payload["span_id"]),
            parent_id=(
                str(payload["parent_id"])
                if payload.get("parent_id") is not None
                else None
            ),
        )

    def annotate(self, span: Any) -> None:
        """Stamp this context onto a live :class:`~repro.obs.tracer.Span`
        so the exported span tree carries the distributed identity."""
        span.set("trace_id", self.trace_id)
        span.set("span_id", self.span_id)
        if self.parent_id is not None:
            span.set("parent_id", self.parent_id)


def merge_counters(*snapshots: Mapping[str, float]) -> dict[str, float]:
    """Exact merge of counter snapshots: per-key sums over all inputs.

    Associative and commutative by construction (addition over ints /
    floats), with the empty dict as identity — merging shard snapshots in
    any grouping reproduces the single-process totals exactly for integer
    counters. Non-numeric values are skipped, mirroring
    :meth:`repro.obs.counters.CounterRegistry.merge`.
    """
    merged: dict[str, float] = {}
    for snapshot in snapshots:
        for key, value in snapshot.items():
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                continue
            merged[key] = merged.get(key, 0) + value
    return merged


@dataclass
class WorkerSnapshot:
    """One worker's observability state, tagged and JSON-portable."""

    worker: str
    counters: dict = field(default_factory=dict)
    stats: dict = field(default_factory=dict)
    context: SpanContext | None = None
    workers: tuple[str, ...] = ()
    """Contributing worker tags; ``(worker,)`` for a leaf snapshot, the
    union for a merged one."""

    def __post_init__(self) -> None:
        if not self.workers:
            self.workers = (self.worker,)

    @classmethod
    def capture(
        cls,
        worker: str,
        obs: Any = None,
        result: Any = None,
        context: SpanContext | None = None,
    ) -> "WorkerSnapshot":
        """Snapshot a finished run: the observation's counter registry
        plus the result's unified stats."""
        counters: dict = {}
        if obs is not None:
            registry = getattr(obs, "counters", None)
            if registry is not None and registry.enabled:
                counters = dict(registry.snapshot())
        stats = dict(result.stats) if result is not None else {}
        return cls(worker=worker, counters=counters, stats=stats,
                   context=context)

    def to_dict(self) -> dict:
        payload: dict = {
            "worker": self.worker,
            "workers": list(self.workers),
            "counters": dict(self.counters),
            "stats": dict(self.stats),
        }
        if self.context is not None:
            payload["context"] = self.context.to_dict()
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping) -> "WorkerSnapshot":
        context = payload.get("context")
        return cls(
            worker=str(payload["worker"]),
            counters=dict(payload.get("counters", {})),
            stats=dict(payload.get("stats", {})),
            context=SpanContext.from_dict(context) if context else None,
            workers=tuple(payload.get("workers", ())),
        )


def merge_worker_snapshots(
    snapshots: Iterable[WorkerSnapshot], worker: str = "merged"
) -> WorkerSnapshot:
    """Fold worker snapshots into one (exact counter/stat sums)."""
    snapshots = list(snapshots)
    merged = WorkerSnapshot(
        worker=worker,
        counters=merge_counters(*(s.counters for s in snapshots)),
        stats=merge_counters(*(s.stats for s in snapshots)),
        workers=tuple(tag for s in snapshots for tag in s.workers),
    )
    return merged


@dataclass
class WorkUnit:
    """A portable unit of search work: frame-stack payload + identity.

    ``payload`` is opaque JSON data — typically a
    ``SearchState.to_payload()`` snapshot or a checkpoint section — so
    this module stays engine-agnostic. ``context`` ties the worker's
    spans back to the coordinator's trace.
    """

    worker: str
    payload: dict
    context: SpanContext

    def to_payload(self) -> dict:
        return {
            "worker": self.worker,
            "payload": dict(self.payload),
            "context": self.context.to_dict(),
        }

    @classmethod
    def from_payload(cls, payload: Mapping) -> "WorkUnit":
        return cls(
            worker=str(payload["worker"]),
            payload=dict(payload["payload"]),
            context=SpanContext.from_dict(payload["context"]),
        )


# ----------------------------------------------------------------------
# Run-report aggregation
# ----------------------------------------------------------------------
def _longest_ladder(reports: Sequence[Mapping]) -> list:
    """The degradation ladder of the shard that degraded furthest — a
    valid ladder subsequence, unlike a cross-shard concatenation."""
    best: list = []
    for report in reports:
        ladder = report.get("degradation") or []
        if len(ladder) > len(best):
            best = list(ladder)
    return best


def merge_run_reports(
    reports: Sequence[Mapping],
    workers: Sequence[str] | None = None,
) -> dict:
    """Aggregate N shard run-reports into one valid run-report.

    Counts and counters are exact sums; wall-clock timings take the
    slowest shard (shards run in parallel), with per-shard detail and the
    cross-shard sums preserved in the ``shards`` block; ``stop_reason``
    is the first shard stop (``None`` when every shard ran to
    completion); span trees are concatenated. The result passes
    ``validate_run_report`` and ``robustness_problems``, so downstream
    tooling treats a distributed run like a local one.
    """
    if not reports:
        raise ValueError("merge_run_reports needs at least one report")
    if workers is not None and len(workers) != len(reports):
        raise ValueError(
            f"{len(workers)} worker tag(s) for {len(reports)} report(s)"
        )
    tags = (
        [str(w) for w in workers]
        if workers is not None
        else [f"shard-{i}" for i in range(len(reports))]
    )
    first = reports[0]
    counters = merge_counters(*(r.get("counters", {}) for r in reports))
    count = sum(int(r.get("count", 0)) for r in reports)
    timing_keys = (
        "read_seconds", "plan_seconds", "execute_seconds", "total_seconds"
    )
    timings = {
        key: max(
            float(r.get("timings", {}).get(key, 0.0) or 0.0) for r in reports
        )
        for key in timing_keys
    }
    stop_reason = next(
        (r.get("stop_reason") for r in reports if r.get("stop_reason")), None
    )
    spans: list = []
    for tag, report in zip(tags, reports):
        for span in report.get("spans", []) or []:
            entry = dict(span)
            entry.setdefault("attrs", {})
            entry["attrs"] = {**entry["attrs"], "worker": tag}
            spans.append(entry)
    execute = timings["execute_seconds"]
    merged: dict = {
        "format": first.get("format", "repro-run-report"),
        "version": int(first.get("version", 1)),
        "engine": str(first.get("engine", "CSCE")),
        "variant": str(first.get("variant", "")),
        "count": count,
        "truncated": any(bool(r.get("truncated")) for r in reports),
        "timed_out": any(bool(r.get("timed_out")) for r in reports),
        "stop_reason": stop_reason,
        "degradation": _longest_ladder(reports),
        "timings": timings,
        "throughput": (count / execute) if execute > 0 else 0.0,
        "counters": counters,
        "spans": spans,
        "shards": {
            "count": len(reports),
            "workers": tags,
            "counts": [int(r.get("count", 0)) for r in reports],
            "stop_reasons": [r.get("stop_reason") for r in reports],
            "execute_seconds_sum": sum(
                float(r.get("timings", {}).get("execute_seconds", 0.0) or 0.0)
                for r in reports
            ),
        },
    }
    for key in ("dataset", "graph", "pattern", "plan"):
        if key in first:
            merged[key] = first[key]
    return merged
