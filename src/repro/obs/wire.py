"""The inspector wire protocol: newline-delimited JSON frames.

One request per line, one response per line, over whatever byte stream
the transport provides (a unix-domain socket, a TCP loopback socket — see
:mod:`repro.obs.inspect`). Frames are small JSON objects stamped with
``format`` = :data:`WIRE_FORMAT` and ``version`` = :data:`WIRE_VERSION`::

    -> {"format": "repro-inspect", "version": 1,
        "cmd": "progress", "args": {}}
    <- {"format": "repro-inspect", "version": 1, "ok": true,
        "cmd": "progress", "data": {"percent": 42.13, ...}}
    <- {"format": "repro-inspect", "version": 1, "ok": false,
        "cmd": "budget", "error": "no governor attached ..."}

Command names are a **closed registry** (:data:`KNOWN_COMMANDS`), the
same pattern as ``STAT_KEYS`` / ``KNOWN_EVENTS``: the
``inspector_commands`` reprolint pass gates every command-name literal in
the codebase against this tuple, so a typo'd command fails lint instead
of failing at attach time.

The ``stats`` / ``counters`` commands carry a
:class:`~repro.obs.merge.WorkerSnapshot` — the merge-ready payload PR 6
introduced — wrapped by :func:`encode_snapshot` / :func:`decode_snapshot`
with its own format/version stamp. The encoding is **lossless** (a
Hypothesis property pins ``decode(encode(s)) == s``), so a coordinator
can aggregate N live worker sockets with
:func:`~repro.obs.merge.merge_counters` /
:func:`~repro.obs.merge.merge_worker_snapshots` unchanged.

Pure data plumbing: no sockets, no threads, no engine imports — the
transport lives in :mod:`repro.obs.inspect`.
"""

from __future__ import annotations

import json
from typing import Any, Mapping

from repro.errors import WireError
from repro.obs.merge import WorkerSnapshot

WIRE_FORMAT = "repro-inspect"
WIRE_VERSION = 1

SNAPSHOT_FORMAT = "repro-worker-snapshot"
SNAPSHOT_VERSION = 1

#: Hard cap on one frame's encoded size. Generous (a recorder dump of a
#: 256-event ring is a few hundred KiB at worst) but bounded, so a
#: garbage or hostile peer cannot make the server buffer arbitrarily.
MAX_FRAME_BYTES = 4 * 1024 * 1024

#: Declared wire-format manifests for this module, gated by the
#: ``wire_schema`` reprolint pass: encoders must together write exactly
#: the declared keys (each stamping format/version), decoders may read
#: only declared keys, and a ``keys`` change without a version bump fails
#: ``reprolint --diff``. See docs/static-analysis.md.
WIRE_MANIFESTS: dict[str, dict] = {
    "inspect-frame": {
        "format": WIRE_FORMAT,
        "version": WIRE_VERSION,
        "keys": ("format", "version", "cmd", "args", "ok", "data", "error"),
        "encoders": ("request_frame", "ok_frame", "error_frame"),
        "decoders": ("validate_request", "decode_response"),
    },
    "worker-snapshot": {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        "keys": (
            "format",
            "version",
            "worker",
            "workers",
            "counters",
            "stats",
            "context",
        ),
        "encoders": ("encode_snapshot",),
        "decoders": ("decode_snapshot",),
    },
}

#: Every command the inspector serves, in documentation order. Closed
#: registry: the ``inspector_commands`` reprolint pass checks command
#: literals against this tuple, and ``MatchInspector.HANDLERS`` must map
#: exactly these names (pinned by a test).
KNOWN_COMMANDS: tuple[str, ...] = (
    "status",
    "progress",
    "stats",
    "counters",
    "recorder",
    "health",
    "checkpoint-now",
    "budget",
    "cancel",
)

#: One-line help per command (``csce inspect --help`` and docs render
#: from here, so the CLI and the registry cannot drift).
COMMAND_HELP: dict[str, str] = {
    "status": "run state, worker identity, embeddings/nodes, stop flags",
    "progress": "monotone percent-complete, ETA, depth-frontier sample",
    "stats": "the live WorkerSnapshot (unified stats + counters)",
    "counters": "alias of stats (same WorkerSnapshot payload)",
    "recorder": "flight-recorder ring dump (args: limit=N for the tail)",
    "health": "pool supervision state: stall watchdog, per-worker beat"
              " ages, quarantined units, respawn budget",
    "checkpoint-now": "write a resumable checkpoint at the next tick"
                      " (args: path=..., timeout=SECONDS)",
    "budget": "tighten deadline/embedding/memory caps (args: time_limit=,"
              " max_embeddings=, memory_limit_mb=)",
    "cancel": "trip the cancel token; the run stops with"
              " stop_reason=cancelled (args: reason=...)",
}


def encode_frame(payload: Mapping[str, Any]) -> bytes:
    """Serialize one frame to its wire form (UTF-8 JSON + ``\\n``)."""
    if not isinstance(payload, Mapping):
        raise WireError(
            f"frame must be a mapping, got {type(payload).__name__}"
        )
    try:
        text = json.dumps(
            dict(payload), separators=(",", ":"), allow_nan=False,
            default=str,
        )
    except (TypeError, ValueError) as exc:
        raise WireError(f"frame is not JSON-serializable: {exc}") from exc
    data = text.encode("utf-8") + b"\n"
    if len(data) > MAX_FRAME_BYTES:
        raise WireError(
            f"frame of {len(data)} bytes exceeds the"
            f" {MAX_FRAME_BYTES}-byte limit"
        )
    return data


def decode_frame(line: bytes | str) -> dict:
    """Parse one wire line back into a frame dict.

    Raises :class:`~repro.errors.WireError` on anything malformed — the
    server turns that into an error frame instead of dying, so one bad
    client line never takes the connection (let alone the match) down.
    """
    if isinstance(line, (bytes, bytearray)):
        if len(line) > MAX_FRAME_BYTES:
            raise WireError(
                f"frame of {len(line)} bytes exceeds the"
                f" {MAX_FRAME_BYTES}-byte limit"
            )
        try:
            line = bytes(line).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise WireError(f"frame is not valid UTF-8: {exc}") from exc
    text = line.strip()
    if not text:
        raise WireError("empty frame")
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as exc:
        raise WireError(f"frame is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise WireError(
            f"frame must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def request_frame(cmd: str, args: Mapping[str, Any] | None = None) -> dict:
    """Build a request frame; rejects commands outside the registry."""
    if cmd not in KNOWN_COMMANDS:
        raise WireError(
            f"unknown command {cmd!r}; known commands:"
            f" {', '.join(KNOWN_COMMANDS)}"
        )
    frame: dict = {"format": WIRE_FORMAT, "version": WIRE_VERSION, "cmd": cmd}
    if args:
        frame["args"] = dict(args)
    return frame


def ok_frame(cmd: str, data: Any) -> dict:
    """Build a success response frame carrying ``data``."""
    return {
        "format": WIRE_FORMAT,
        "version": WIRE_VERSION,
        "ok": True,
        "cmd": cmd,
        "data": data,
    }


def error_frame(message: str, cmd: str | None = None) -> dict:
    """Build an error response frame (``cmd`` when it could be parsed)."""
    frame: dict = {
        "format": WIRE_FORMAT,
        "version": WIRE_VERSION,
        "ok": False,
        "error": str(message),
    }
    if cmd:
        frame["cmd"] = cmd
    return frame


def validate_request(frame: Mapping[str, Any]) -> tuple[str, dict]:
    """Check a decoded request frame; returns ``(cmd, args)``.

    Raises :class:`~repro.errors.WireError` on a foreign format, an
    unsupported version, a missing/unknown command, or non-mapping args.
    """
    if frame.get("format") != WIRE_FORMAT:
        raise WireError(
            f"not an inspector frame (format={frame.get('format')!r})"
        )
    if frame.get("version") != WIRE_VERSION:
        raise WireError(
            f"unsupported wire version {frame.get('version')!r}"
            f" (this build speaks version {WIRE_VERSION})"
        )
    cmd = frame.get("cmd")
    if not isinstance(cmd, str) or cmd not in KNOWN_COMMANDS:
        raise WireError(
            f"unknown command {cmd!r}; known commands:"
            f" {', '.join(KNOWN_COMMANDS)}"
        )
    args = frame.get("args") or {}
    if not isinstance(args, dict):
        raise WireError(
            f"args must be a JSON object, got {type(args).__name__}"
        )
    return cmd, args


def decode_response(frame: Mapping[str, Any]) -> Any:
    """Unwrap a response frame into its ``data``; raises on error frames.

    :class:`~repro.errors.WireError` for protocol problems (foreign
    format/version), :class:`~repro.errors.InspectorError` — via the
    server's own message — when ``ok`` is false.
    """
    from repro.errors import InspectorError

    if frame.get("format") != WIRE_FORMAT:
        raise WireError(
            f"not an inspector frame (format={frame.get('format')!r})"
        )
    if frame.get("version") != WIRE_VERSION:
        raise WireError(
            f"unsupported wire version {frame.get('version')!r}"
            f" (this build speaks version {WIRE_VERSION})"
        )
    if not frame.get("ok"):
        raise InspectorError(str(frame.get("error") or "request failed"))
    return frame.get("data")


def encode_snapshot(snapshot: WorkerSnapshot) -> dict:
    """Wrap a :class:`WorkerSnapshot` for the wire (format/version
    stamped, JSON-ready). Lossless: ``decode_snapshot`` inverts it."""
    return {
        "format": SNAPSHOT_FORMAT,
        "version": SNAPSHOT_VERSION,
        **snapshot.to_dict(),
    }


def decode_snapshot(payload: Mapping[str, Any]) -> WorkerSnapshot:
    """Invert :func:`encode_snapshot`; raises :class:`WireError` on a
    foreign or structurally broken payload."""
    if not isinstance(payload, Mapping):
        raise WireError(
            f"snapshot must be a mapping, got {type(payload).__name__}"
        )
    if payload.get("format") != SNAPSHOT_FORMAT:
        raise WireError(
            f"not a worker snapshot (format={payload.get('format')!r})"
        )
    if payload.get("version") != SNAPSHOT_VERSION:
        raise WireError(
            f"unsupported snapshot version {payload.get('version')!r}"
            f" (this build reads version {SNAPSHOT_VERSION})"
        )
    try:
        return WorkerSnapshot.from_dict(payload)
    except (KeyError, TypeError, ValueError) as exc:
        raise WireError(f"malformed worker snapshot: {exc}") from exc
