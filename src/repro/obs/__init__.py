"""Observability for the CSCE pipeline: spans, counters, logs, heartbeats.

One :class:`Observation` bundles the three instruments a run can carry:

* a :class:`~repro.obs.tracer.Tracer` collecting the nested span tree
  (``match`` → ``read`` / ``plan`` / ``execute`` → per-cluster reads);
* a :class:`~repro.obs.counters.CounterRegistry` aggregating run telemetry
  beyond ``MatchResult.stats`` (CCSR bytes/rows read, heartbeat totals);
* a :class:`~repro.obs.progress.Heartbeat` emitting periodic progress
  lines during long enumerations.

Passing ``obs=None`` (the default everywhere) selects the no-op
instruments — a single branch on the hot paths, so disabled observability
costs nothing measurable. Typical use::

    from repro.obs import Observation

    obs = Observation(heartbeat_interval=5.0)
    result = engine.match(pattern, obs=obs)
    report = build_run_report(result, obs=obs, plan=...)

Structured logging is configured separately (it is process-global):
:func:`~repro.obs.logconfig.configure_logging`.
"""

from __future__ import annotations

from repro.obs.counters import (
    NULL_COUNTERS,
    STAT_KEYS,
    CounterRegistry,
    NullCounterRegistry,
    assert_stat_keys,
    unified_stats,
)
from repro.obs.logconfig import JsonFormatter, configure_logging, resolve_level
from repro.obs.progress import NULL_HEARTBEAT, Heartbeat, NullHeartbeat
from repro.obs.report import (
    RUN_REPORT_VERSION,
    build_run_report,
    format_run_report,
    load_run_reports,
    plan_summary,
    validate_run_report,
    write_run_report,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer


class Observation:
    """Bundle of tracer + counter registry + heartbeat for one run.

    All three default to live instruments; pass ``trace=False`` to skip
    span collection while keeping counters, or build the pieces yourself.
    """

    __slots__ = ("tracer", "counters", "heartbeat")

    enabled = True

    def __init__(
        self,
        tracer: Tracer | NullTracer | None = None,
        counters: CounterRegistry | NullCounterRegistry | None = None,
        heartbeat: Heartbeat | NullHeartbeat | None = None,
        trace: bool = True,
        heartbeat_interval: float | None = None,
    ):
        if tracer is None:
            tracer = Tracer() if trace else NULL_TRACER
        if counters is None:
            counters = CounterRegistry()
        if heartbeat is None:
            heartbeat = (
                Heartbeat(heartbeat_interval)
                if heartbeat_interval is not None
                else NULL_HEARTBEAT
            )
        self.tracer = tracer
        self.counters = counters
        self.heartbeat = heartbeat

    def __repr__(self) -> str:
        return (
            f"<Observation trace={self.tracer.enabled}"
            f" heartbeat={self.heartbeat.enabled}>"
        )


class _NullObservation:
    """The disabled bundle: every instrument is its no-op variant."""

    __slots__ = ()

    enabled = False
    tracer = NULL_TRACER
    counters = NULL_COUNTERS
    heartbeat = NULL_HEARTBEAT


NULL_OBS = _NullObservation()


__all__ = [
    "Observation",
    "NULL_OBS",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "CounterRegistry",
    "NullCounterRegistry",
    "NULL_COUNTERS",
    "STAT_KEYS",
    "unified_stats",
    "assert_stat_keys",
    "Heartbeat",
    "NullHeartbeat",
    "NULL_HEARTBEAT",
    "configure_logging",
    "resolve_level",
    "JsonFormatter",
    "RUN_REPORT_VERSION",
    "build_run_report",
    "format_run_report",
    "plan_summary",
    "validate_run_report",
    "write_run_report",
    "load_run_reports",
]
