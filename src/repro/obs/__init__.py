"""Observability for the CSCE pipeline: spans, counters, logs, heartbeats,
metrics, and profiling.

One :class:`Observation` bundles the instruments a run can carry:

* a :class:`~repro.obs.tracer.Tracer` collecting the nested span tree
  (``match`` → ``read`` / ``plan`` / ``execute`` → per-cluster reads);
* a :class:`~repro.obs.counters.CounterRegistry` aggregating run telemetry
  beyond ``MatchResult.stats`` (CCSR bytes/rows read, heartbeat totals);
* a :class:`~repro.obs.progress.Heartbeat` emitting periodic progress
  lines during long enumerations;
* a :class:`~repro.obs.profile.Profiler` (``profile=True``) adding
  per-span tracemalloc memory, a per-depth search profile, and the
  hot-cluster table;
* a :class:`~repro.obs.metrics.MetricsPump` (``metrics=...``) sampling
  the counters into typed metrics on the heartbeat tick and pushing them
  through Prometheus-textfile / JSONL exporters.

Passing ``obs=None`` (the default everywhere) selects the no-op
instruments — a single branch on the hot paths, so disabled observability
costs nothing measurable. Typical use::

    from repro.obs import Observation

    obs = Observation(heartbeat_interval=5.0, profile=True)
    result = engine.match(pattern, obs=obs)
    obs.finish()
    report = build_run_report(result, obs=obs, plan=...)

Structured logging is configured separately (it is process-global):
:func:`~repro.obs.logconfig.configure_logging`.
"""

from __future__ import annotations

from typing import Any

from repro.obs.counters import (
    NULL_COUNTERS,
    STAT_KEYS,
    CounterRegistry,
    NullCounterRegistry,
    assert_stat_keys,
    unified_stats,
)
from repro.obs.explain import build_explain, estimate_candidates, format_explain
from repro.obs.inspect import (
    DEFAULT_INSPECT_INTERVAL,
    InspectorClient,
    InspectorServer,
    MatchInspector,
    inspect_call,
    render_top,
    resolve_endpoint,
)
from repro.obs.logconfig import JsonFormatter, configure_logging, resolve_level
from repro.obs.merge import (
    SpanContext,
    WorkerSnapshot,
    WorkUnit,
    merge_counters,
    merge_run_reports,
    merge_worker_snapshots,
)
from repro.obs.metrics import (
    NULL_METRICS,
    JsonlTimeSeriesExporter,
    MetricsPump,
    MetricsRegistry,
    NullMetricsPump,
    PrometheusTextfileExporter,
)
from repro.obs.profile import (
    NULL_PROFILE,
    MemoryTracer,
    NullProfiler,
    Profiler,
    SearchDepthProfile,
)
from repro.obs.progress import (
    NULL_HEARTBEAT,
    Heartbeat,
    NullHeartbeat,
    ProgressEstimator,
    search_state_fraction,
)
from repro.obs.recorder import (
    KNOWN_EVENTS,
    NULL_RECORDER,
    FlightRecorder,
    NullFlightRecorder,
    RecordedEvent,
    perfetto_trace,
    write_perfetto,
)
from repro.obs.report import (
    RUN_REPORT_VERSION,
    build_run_report,
    format_run_report,
    load_run_reports,
    plan_summary,
    robustness_problems,
    schema_problems,
    validate_run_report,
    write_run_report,
)
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer
from repro.obs.wire import (
    KNOWN_COMMANDS,
    decode_frame,
    decode_snapshot,
    encode_frame,
    encode_snapshot,
)


class Observation:
    """Bundle of tracer + counters + heartbeat + profiler + metrics +
    flight recorder.

    All instruments default to live (tracer/counters/recorder) or disabled
    (heartbeat/profiler/metrics); pass ``trace=False`` to skip span
    collection, ``profile=True`` (or a :class:`Profiler`) to enable the
    profiling hooks, ``metrics=MetricsPump(...)`` to stream metrics,
    ``record=False`` to drop the flight recorder. When both profiling and
    tracing are on, the tracer is a :class:`MemoryTracer` so every span
    carries memory attributes. ``progress`` is set by the engine
    (:meth:`attach_progress`) once a run creates its
    :class:`ProgressEstimator`.
    """

    __slots__ = (
        "tracer",
        "counters",
        "heartbeat",
        "profile",
        "metrics",
        "recorder",
        "progress",
    )

    enabled = True

    def __init__(
        self,
        tracer: Tracer | NullTracer | None = None,
        counters: CounterRegistry | NullCounterRegistry | None = None,
        heartbeat: Heartbeat | NullHeartbeat | None = None,
        trace: bool = True,
        heartbeat_interval: float | None = None,
        profile: bool | Profiler = False,
        metrics: MetricsPump | NullMetricsPump | None = None,
        recorder: FlightRecorder | NullFlightRecorder | None = None,
        record: bool = True,
    ) -> None:
        if profile is True:
            profile = Profiler()
        elif not profile:
            profile = NULL_PROFILE
        if tracer is None:
            if trace and profile.enabled:
                tracer = MemoryTracer(profile)
            elif trace:
                tracer = Tracer()
            else:
                tracer = NULL_TRACER
        if counters is None:
            counters = CounterRegistry()
        if heartbeat is None:
            heartbeat = (
                Heartbeat(heartbeat_interval)
                if heartbeat_interval is not None
                else NULL_HEARTBEAT
            )
        if recorder is None:
            recorder = FlightRecorder() if record else NULL_RECORDER
        self.tracer = tracer
        self.counters = counters
        self.heartbeat = heartbeat
        self.profile = profile
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self.recorder = recorder
        self.progress: ProgressEstimator | None = None
        if self.metrics.enabled and heartbeat.enabled:
            # Sample live metrics at the heartbeat cadence — the hot loops
            # pay nothing beyond the tick they already pay for.
            heartbeat.add_listener(lambda: self.metrics.sample(self))

    def attach_progress(self, estimator: ProgressEstimator) -> None:
        """Adopt a run's progress estimator (called by the engine), so
        heartbeat lines, the metrics pump, and run-reports read it."""
        self.progress = estimator

    def finish(self, result: Any = None) -> None:
        """Close out the run: final metrics sample, profiler teardown."""
        if self.metrics.enabled:
            self.metrics.finalize(result, obs=self)
        self.profile.finish()

    def __repr__(self) -> str:
        return (
            f"<Observation trace={self.tracer.enabled}"
            f" heartbeat={self.heartbeat.enabled}"
            f" profile={self.profile.enabled}"
            f" metrics={self.metrics.enabled}"
            f" recorder={self.recorder.enabled}>"
        )


class _NullObservation:
    """The disabled bundle: every instrument is its no-op variant."""

    __slots__ = ()

    enabled = False
    tracer = NULL_TRACER
    counters = NULL_COUNTERS
    heartbeat = NULL_HEARTBEAT
    profile = NULL_PROFILE
    metrics = NULL_METRICS
    recorder = NULL_RECORDER
    progress = None

    def attach_progress(self, estimator: ProgressEstimator) -> None:
        pass

    def finish(self, result: Any = None) -> None:
        pass


NULL_OBS = _NullObservation()


__all__ = [
    "Observation",
    "NULL_OBS",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "MemoryTracer",
    "CounterRegistry",
    "NullCounterRegistry",
    "NULL_COUNTERS",
    "STAT_KEYS",
    "unified_stats",
    "assert_stat_keys",
    "Heartbeat",
    "NullHeartbeat",
    "NULL_HEARTBEAT",
    "ProgressEstimator",
    "search_state_fraction",
    "FlightRecorder",
    "NullFlightRecorder",
    "NULL_RECORDER",
    "KNOWN_EVENTS",
    "RecordedEvent",
    "perfetto_trace",
    "write_perfetto",
    "SpanContext",
    "WorkerSnapshot",
    "WorkUnit",
    "merge_counters",
    "merge_worker_snapshots",
    "merge_run_reports",
    "Profiler",
    "NullProfiler",
    "NULL_PROFILE",
    "SearchDepthProfile",
    "MetricsRegistry",
    "MetricsPump",
    "NullMetricsPump",
    "NULL_METRICS",
    "PrometheusTextfileExporter",
    "JsonlTimeSeriesExporter",
    "configure_logging",
    "resolve_level",
    "JsonFormatter",
    "RUN_REPORT_VERSION",
    "build_run_report",
    "format_run_report",
    "plan_summary",
    "schema_problems",
    "validate_run_report",
    "robustness_problems",
    "write_run_report",
    "load_run_reports",
    "build_explain",
    "format_explain",
    "estimate_candidates",
    "KNOWN_COMMANDS",
    "MatchInspector",
    "InspectorServer",
    "InspectorClient",
    "DEFAULT_INSPECT_INTERVAL",
    "inspect_call",
    "render_top",
    "resolve_endpoint",
    "encode_frame",
    "decode_frame",
    "encode_snapshot",
    "decode_snapshot",
]
