"""Structured logging configuration.

Every module in the package logs through ``logging.getLogger(__name__)``
(the standard library-friendly idiom); this module owns the one place that
attaches handlers. Plain text by default; ``json_output=True`` (or
``REPRO_LOG_JSON=1``) switches to one JSON object per line for log
shippers. The level resolves CLI flag > ``REPRO_LOG_LEVEL`` env var >
``WARNING`` — libraries stay quiet unless asked.

:func:`configure_logging` is idempotent: it tags the handler it installs
and reuses (never duplicates) it on repeat calls, so a CLI entry point and
a library embedder can both call it without records being emitted twice.
Handlers attached by the embedding application are left untouched.
"""

from __future__ import annotations

import json
import logging
import sys
import time
from typing import TextIO

import os

ENV_LEVEL = "REPRO_LOG_LEVEL"
ENV_JSON = "REPRO_LOG_JSON"

_VALID_LEVELS = ("DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL")

#: Fields of a ``LogRecord`` that are not user-supplied ``extra`` payload.
_RESERVED = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


class JsonFormatter(logging.Formatter):
    """One JSON object per record: timestamp, level, logger, message,
    plus any ``extra={...}`` fields the call site attached."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "time": time.strftime(
                "%Y-%m-%dT%H:%M:%S", time.localtime(record.created)
            ),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _RESERVED and not key.startswith("_"):
                payload[key] = value
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


class _StderrHandler(logging.StreamHandler):
    """A stream handler bound to *the current* ``sys.stderr``.

    Late binding (a property, not a captured stream object) keeps records
    flowing to the right place when the embedding application — or a test
    harness — swaps ``sys.stderr`` after configuration.
    """

    def __init__(self) -> None:
        logging.Handler.__init__(self)

    @property
    def stream(self) -> TextIO:  # type: ignore[override]
        return sys.stderr


def resolve_level(level: str | int | None = None) -> str:
    """CLI flag > ``REPRO_LOG_LEVEL`` > WARNING, validated."""
    if level is None:
        level = os.environ.get(ENV_LEVEL, "WARNING")
    if isinstance(level, int):
        return logging.getLevelName(level)
    name = str(level).upper()
    if name not in _VALID_LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; choose from {', '.join(_VALID_LEVELS)}"
        )
    return name


def _managed_handlers(root: logging.Logger) -> list[logging.Handler]:
    return [h for h in root.handlers if getattr(h, "_repro_managed", False)]


def configure_logging(
    level: str | int | None = None,
    json_output: bool | None = None,
    force: bool = True,
) -> str:
    """Install handlers for the ``repro`` logger tree; returns the level.

    Idempotent: the handler this function installs is tagged and *reused*
    on repeat calls (level/format are updated in place), so calling setup
    from both a CLI and a library embedder attaches exactly one handler and
    emits each record exactly once. Foreign handlers — attached by the
    embedding application — are never removed. ``force=False`` leaves any
    existing configuration (managed or foreign) entirely alone.
    """
    root = logging.getLogger("repro")
    if not force and root.handlers:
        return logging.getLevelName(root.level)
    name = resolve_level(level)
    if json_output is None:
        json_output = os.environ.get(ENV_JSON, "").lower() in ("1", "true", "yes")
    formatter: logging.Formatter = (
        JsonFormatter()
        if json_output
        else logging.Formatter(
            "%(asctime)s %(levelname)-7s %(name)s: %(message)s",
            datefmt="%H:%M:%S",
        )
    )
    managed = _managed_handlers(root)
    if managed:
        handler = managed[0]
        for stale in managed[1:]:  # defensive: never keep duplicates
            root.removeHandler(stale)
            stale.close()
    else:
        handler = _StderrHandler()
        handler._repro_managed = True
        root.addHandler(handler)
    handler.setFormatter(formatter)
    root.setLevel(name)
    root.propagate = False
    return name
