"""Structured logging configuration (``logging.config.dictConfig``).

Every module in the package logs through ``logging.getLogger(__name__)``
(the standard library-friendly idiom); this module owns the one place that
attaches handlers. Plain text by default; ``json_output=True`` (or
``REPRO_LOG_JSON=1``) switches to one JSON object per line for log
shippers. The level resolves CLI flag > ``REPRO_LOG_LEVEL`` env var >
``WARNING`` — libraries stay quiet unless asked.
"""

from __future__ import annotations

import json
import logging
import logging.config
import os
import time

ENV_LEVEL = "REPRO_LOG_LEVEL"
ENV_JSON = "REPRO_LOG_JSON"

_VALID_LEVELS = ("DEBUG", "INFO", "WARNING", "ERROR", "CRITICAL")

#: Fields of a ``LogRecord`` that are not user-supplied ``extra`` payload.
_RESERVED = frozenset(
    logging.LogRecord("", 0, "", 0, "", (), None).__dict__
) | {"message", "asctime", "taskName"}


class JsonFormatter(logging.Formatter):
    """One JSON object per record: timestamp, level, logger, message,
    plus any ``extra={...}`` fields the call site attached."""

    def format(self, record: logging.LogRecord) -> str:
        payload = {
            "ts": round(record.created, 6),
            "time": time.strftime(
                "%Y-%m-%dT%H:%M:%S", time.localtime(record.created)
            ),
            "level": record.levelname,
            "logger": record.name,
            "message": record.getMessage(),
        }
        for key, value in record.__dict__.items():
            if key not in _RESERVED and not key.startswith("_"):
                payload[key] = value
        if record.exc_info:
            payload["exception"] = self.formatException(record.exc_info)
        return json.dumps(payload, default=str)


def resolve_level(level: str | int | None = None) -> str:
    """CLI flag > ``REPRO_LOG_LEVEL`` > WARNING, validated."""
    if level is None:
        level = os.environ.get(ENV_LEVEL, "WARNING")
    if isinstance(level, int):
        return logging.getLevelName(level)
    name = str(level).upper()
    if name not in _VALID_LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; choose from {', '.join(_VALID_LEVELS)}"
        )
    return name


def configure_logging(
    level: str | int | None = None,
    json_output: bool | None = None,
    force: bool = True,
) -> str:
    """Install handlers for the ``repro`` logger tree; returns the level.

    ``force=False`` leaves an existing configuration alone (library use:
    applications that already configured logging win).
    """
    root = logging.getLogger("repro")
    if not force and root.handlers:
        return logging.getLevelName(root.level)
    name = resolve_level(level)
    if json_output is None:
        json_output = os.environ.get(ENV_JSON, "").lower() in ("1", "true", "yes")
    logging.config.dictConfig(
        {
            "version": 1,
            "disable_existing_loggers": False,
            "formatters": {
                "plain": {
                    "format": "%(asctime)s %(levelname)-7s %(name)s: %(message)s",
                    "datefmt": "%H:%M:%S",
                },
                "json": {"()": "repro.obs.logconfig.JsonFormatter"},
            },
            "handlers": {
                "repro": {
                    "class": "logging.StreamHandler",
                    "stream": "ext://sys.stderr",
                    "formatter": "json" if json_output else "plain",
                },
            },
            "loggers": {
                "repro": {
                    "level": name,
                    "handlers": ["repro"],
                    "propagate": False,
                },
            },
        }
    )
    return name
