"""Shared machinery for the baseline matchers.

Each baseline re-implements the algorithmic core of one comparison system
from Table III. They all run over a plain adjacency index of the data graph
(:class:`DataIndex`) rather than CCSR — deliberately, since paying per-edge
label checks at match time is exactly the overhead the paper's CCSR removes.

The capability metadata on each class (supported variants, label support,
direction support, max tested pattern size) renders Table III.
"""

from __future__ import annotations

import abc
import logging
import time
from typing import Hashable, Iterator

from repro.core.executor import MatchResult
from repro.core.variants import Variant
from repro.errors import (
    EmbeddingLimitExceeded,
    TimeLimitExceeded,
    VariantError,
)
from repro.graph.model import Graph
from repro.obs import NULL_HEARTBEAT, NULL_OBS, unified_stats

logger = logging.getLogger(__name__)

_TIME_CHECK_INTERVAL = 2048


class SearchBudget:
    """Wall-clock budget shared by all baseline recursions.

    Carries the run's heartbeat too, so baselines emit the same periodic
    progress lines as CSCE, on the same ``_TIME_CHECK_INTERVAL`` tick.
    """

    __slots__ = ("deadline", "nodes", "heartbeat", "_ticking")

    def __init__(self, time_limit: float | None, heartbeat=None):
        self.deadline = (
            time.perf_counter() + time_limit if time_limit is not None else None
        )
        self.nodes = 0
        self.heartbeat = heartbeat if heartbeat is not None else NULL_HEARTBEAT
        self._ticking = self.deadline is not None or self.heartbeat.enabled

    def tick(self, emitted: int = 0) -> None:
        self.nodes += 1
        if self._ticking and self.nodes % _TIME_CHECK_INTERVAL == 0:
            if self.heartbeat.enabled:
                self.heartbeat.beat(self.nodes, emitted, phase="baseline")
            if (
                self.deadline is not None
                and time.perf_counter() > self.deadline
            ):
                raise TimeLimitExceeded(
                    "baseline time limit", partial_count=emitted
                )


class DataIndex:
    """Adjacency-list view of a data graph (the Fig. 3 data structure).

    Vertices, labels, and per-pair edge descriptors live in parallel
    structures; every label check at match time is explicit — the repetition
    CCSR's clustering eliminates.
    """

    def __init__(self, graph: Graph):
        self.graph = graph
        self.num_vertices = graph.num_vertices
        self.labels = list(graph.vertex_labels)
        self.label_index: dict[Hashable, list[int]] = {}
        for v, label in enumerate(self.labels):
            self.label_index.setdefault(label, []).append(v)
        self.neighbors: list[list[int]] = [graph.neighbors(v) for v in graph.vertices()]
        self.neighbor_sets: list[set[int]] = [set(ns) for ns in self.neighbors]
        self.degrees: list[int] = [len(ns) for ns in self.neighbors]
        # (a, b) -> [(edge_label, directed, forward)], both orientations.
        self.edge_index: dict[tuple[int, int], list[tuple[Hashable, bool, bool]]] = {}
        for e in graph.edges():
            self.edge_index.setdefault((e.src, e.dst), []).append(
                (e.label, e.directed, True)
            )
            self.edge_index.setdefault((e.dst, e.src), []).append(
                (e.label, e.directed, False)
            )
        # Neighbor label multisets for NLF-style filtering.
        self.neighbor_label_counts: list[dict[Hashable, int]] = []
        for v in graph.vertices():
            counts: dict[Hashable, int] = {}
            for w in self.neighbors[v]:
                counts[self.labels[w]] = counts.get(self.labels[w], 0) + 1
            self.neighbor_label_counts.append(counts)

    # ------------------------------------------------------------------
    def vertices_with_label(self, label: Hashable) -> list[int]:
        return self.label_index.get(label, [])

    def adjacent(self, a: int, b: int) -> bool:
        return b in self.neighbor_sets[a]

    def matches_pattern_edge(
        self, a: int, b: int, edge_label: Hashable, directed: bool
    ) -> bool:
        """Can the pattern edge ``u -> v`` (or ``u - v``) map onto (a, b)?"""
        for label, is_directed, forward in self.edge_index.get((a, b), ()):
            if label != edge_label or is_directed != directed:
                continue
            if directed and not forward:
                continue
            return True
        return False

    def pair_descriptor(self, a: int, b: int) -> tuple:
        """Exact multiset of edges between a pair, for induced matching."""
        entries = []
        for label, directed, forward in self.edge_index.get((a, b), ()):
            if directed:
                entries.append((label, "d_fwd" if forward else "d_rev"))
            else:
                entries.append((label, "u"))
        return tuple(sorted(entries, key=repr))


def pattern_pair_descriptor(pattern: Graph, u: int, w: int) -> tuple:
    """The pattern-side counterpart of :meth:`DataIndex.pair_descriptor`."""
    entries = []
    for e in pattern.edges_between(u, w):
        if e.directed:
            entries.append((e.label, "d_fwd" if (e.src, e.dst) == (u, w) else "d_rev"))
        else:
            entries.append((e.label, "u"))
    return tuple(sorted(entries, key=repr))


class BaselineMatcher(abc.ABC):
    """Common driver: timing, limits, counting, capability checks."""

    display_name: str = "baseline"
    supported_variants: frozenset[Variant] = frozenset()
    supports_vertex_labels: bool = True
    supports_edge_labels: bool = False
    supports_undirected: bool = True
    supports_directed: bool = False
    max_tested_pattern_size: int = 0

    def __init__(self, graph: Graph):
        start = time.perf_counter()
        self._restrictions: tuple[tuple[int, int], ...] = ()
        self.index = DataIndex(graph)
        self._prepare(graph)
        self.build_seconds = time.perf_counter() - start

    def _prepare(self, graph: Graph) -> None:
        """Hook for subclass preprocessing beyond the shared index."""

    # ------------------------------------------------------------------
    def check_supported(self, pattern: Graph, variant: Variant) -> None:
        """Raise :class:`VariantError` on Table III capability violations."""
        if variant not in self.supported_variants:
            raise VariantError(
                f"{self.display_name} does not support {variant} matching"
            )
        if not self.supports_vertex_labels and (
            len(set(self.index.labels)) > 1
            or len(pattern.distinct_vertex_labels()) > 1
        ):
            raise VariantError(f"{self.display_name} does not support vertex labels")
        if not self.supports_edge_labels and (
            pattern.distinct_edge_labels() - {None}
        ):
            raise VariantError(f"{self.display_name} does not support edge labels")
        if not self.supports_directed and pattern.is_directed:
            raise VariantError(f"{self.display_name} does not support directed edges")
        if not self.supports_undirected and any(
            not e.directed for e in pattern.edges()
        ):
            raise VariantError(
                f"{self.display_name} does not support undirected edges"
            )

    def match(
        self,
        pattern: Graph,
        variant: Variant | str = Variant.EDGE_INDUCED,
        count_only: bool = False,
        max_embeddings: int | None = None,
        time_limit: float | None = None,
        restrictions: tuple[tuple[int, int], ...] | None = None,
        obs=None,
    ) -> MatchResult:
        """Run the baseline with the same interface as :class:`CSCE.match`.

        ``restrictions`` (symmetry-breaking ``f(u) < f(v)`` pairs) are
        honoured by the backtracking matchers and ignored by engines whose
        originals lack the feature. ``obs`` gets the same ``match`` /
        ``execute`` spans and heartbeat ticks as CSCE runs, so bench
        comparisons report comparable telemetry; the unified stats keys
        the baseline cannot measure (memoization, factorization) read 0.
        """
        variant = Variant.parse(variant)
        obs = obs or NULL_OBS
        self.check_supported(pattern, variant)
        self._restrictions = tuple(restrictions) if restrictions else ()
        budget = SearchBudget(time_limit, heartbeat=obs.heartbeat)
        start = time.perf_counter()
        count = 0
        truncated = False
        timed_out = False
        embeddings: list[dict[int, int]] | None = None if count_only else []
        with obs.tracer.span(
            "match", engine=self.display_name, variant=variant.value
        ) as match_span:
            with obs.tracer.span("execute", mode="enumerate") as span:
                try:
                    for mapping in self._embeddings(pattern, variant, budget):
                        count += 1
                        if embeddings is not None:
                            embeddings.append(dict(mapping))
                        if max_embeddings is not None and count >= max_embeddings:
                            raise EmbeddingLimitExceeded(
                                "limit", partial_count=count
                            )
                except EmbeddingLimitExceeded:
                    truncated = True
                except TimeLimitExceeded:
                    timed_out = True
                span.set("count", count)
                span.set("nodes", budget.nodes)
            match_span.set("count", count)
        stats = unified_stats(nodes=budget.nodes)
        if obs.enabled:
            obs.counters.merge(stats)
        return MatchResult(
            count=count,
            variant=variant,
            embeddings=embeddings,
            elapsed=time.perf_counter() - start,
            truncated=truncated,
            timed_out=timed_out,
            stats=stats,
        )

    def count(self, pattern: Graph, variant: Variant | str = Variant.EDGE_INDUCED, **kwargs) -> int:
        return self.match(pattern, variant, count_only=True, **kwargs).count

    @abc.abstractmethod
    def _embeddings(
        self, pattern: Graph, variant: Variant, budget: SearchBudget
    ) -> Iterator[dict[int, int]]:
        """Yield embeddings as {pattern vertex -> data vertex} mappings."""

    # ------------------------------------------------------------------
    @classmethod
    def capability_row(cls) -> dict[str, str]:
        """One row of Table III."""
        variant_letters = {
            Variant.EDGE_INDUCED: "E",
            Variant.HOMOMORPHIC: "H",
            Variant.VERTEX_INDUCED: "V",
        }
        variants = ", ".join(
            letter
            for variant, letter in variant_letters.items()
            if variant in cls.supported_variants
        )
        if cls.supports_undirected and cls.supports_directed:
            direction = "U and D"
        elif cls.supports_directed:
            direction = "D"
        else:
            direction = "U"
        return {
            "Algorithm": cls.display_name,
            "Variant": variants,
            "Vertex Labels": "Yes" if cls.supports_vertex_labels else "No",
            "Edge Labels": "Yes" if cls.supports_edge_labels else "No",
            "Edge Direction": direction,
            "Pattern Size": f"Up to {cls.max_tested_pattern_size}",
        }

    def __repr__(self) -> str:
        return f"<{type(self).__name__} over |V|={self.index.num_vertices}>"


def backward_constraints(pattern: Graph, order: list[int]) -> list[list[tuple]]:
    """Per order position, the (prior, edge_label, directed, forward) checks
    implied by pattern edges to already-matched vertices. ``forward`` means
    the pattern edge runs prior -> current."""
    position = {v: i for i, v in enumerate(order)}
    checks: list[list[tuple]] = [[] for _ in order]
    for e in pattern.edges():
        src_pos, dst_pos = position[e.src], position[e.dst]
        if src_pos < dst_pos:
            checks[dst_pos].append((e.src, e.label, e.directed, True))
        else:
            checks[src_pos].append((e.dst, e.label, e.directed, False))
    return checks
