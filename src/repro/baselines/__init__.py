"""Re-implemented baseline matching engines (Table III).

Each class reproduces the algorithmic core of one comparison system in pure
Python so that all engines — including CSCE — pay the same interpreter tax
and relative comparisons measure algorithms, not languages:

=================  ============================================
Class              Stands in for
=================  ============================================
BacktrackingMatcher  RI / QuickSI / GuP (guarded backtracking)
VF2Matcher           VF3 (vertex-induced, lookahead pruning)
WCOJMatcher          RapidMatch (relation-based pipelined WCOJ)
GraphflowMatcher     Graphflow (WCOJ, homomorphic, directed)
FailingSetMatcher    DAF / VEQ (failing-set pruning)
SymmetryBreakingMatcher  GraphPi (automorphism restrictions)
=================  ============================================
"""

from repro.baselines.base import BaselineMatcher, DataIndex, SearchBudget
from repro.baselines.backtracking import BacktrackingMatcher
from repro.baselines.vf2 import VF2Matcher
from repro.baselines.wcoj import GraphflowMatcher, WCOJMatcher
from repro.baselines.failing_set import FailingSetMatcher
from repro.baselines.symmetry import SymmetryBreakingMatcher, symmetry_restrictions

ALL_BASELINES = (
    SymmetryBreakingMatcher,
    GraphflowMatcher,
    BacktrackingMatcher,
    WCOJMatcher,
    FailingSetMatcher,
    VF2Matcher,
)

__all__ = [
    "BaselineMatcher",
    "DataIndex",
    "SearchBudget",
    "BacktrackingMatcher",
    "VF2Matcher",
    "WCOJMatcher",
    "GraphflowMatcher",
    "FailingSetMatcher",
    "SymmetryBreakingMatcher",
    "symmetry_restrictions",
    "ALL_BASELINES",
]
