"""Backtracking with failing-set pruning — the DAF / VEQ stand-in.

Failing-set pruning (DAF, applied by RapidMatch and VEQ) analyses *why* a
subtree of the search produced no embedding. Each recursive call returns a
*failing set* of pattern vertices responsible for the failure; if the vertex
just assigned is not in its child's failing set, re-assigning it cannot
help, so all of its remaining candidates are skipped.

The rules follow DAF (Han et al., SIGMOD 2019):

* empty candidate set for vertex ``u``  ->  failing set = {u} and the
  ancestors that produced u's candidates (its backward neighbors);
* injectivity conflict on ``u`` against matched vertex ``u'``  ->  {u, u'};
* an embedding found  ->  empty failing set (no pruning above);
* otherwise the union of the children's failing sets.

The paper's Finding 3 compares this technique against SCE: FSP pays its
analysis on every failure during execution, SCE computes independence once
at plan time. It also only applies to edge-induced matching (Section I).
"""

from __future__ import annotations

from typing import Iterator

from repro.baselines.base import (
    BaselineMatcher,
    SearchBudget,
    backward_constraints,
)
from repro.core.gcf import gcf_order
from repro.core.variants import Variant
from repro.graph.model import Graph


class FailingSetMatcher(BaselineMatcher):
    """DAF/VEQ-style backtracking with failing-set pruning."""

    display_name = "VEQ"
    supported_variants = frozenset({Variant.EDGE_INDUCED})
    supports_vertex_labels = True
    supports_edge_labels = True
    supports_undirected = True
    supports_directed = True
    max_tested_pattern_size = 200

    def _embeddings(
        self, pattern: Graph, variant: Variant, budget: SearchBudget
    ) -> Iterator[dict[int, int]]:
        index = self.index
        order = gcf_order(pattern, task_clusters=None, use_cluster_tiebreak=False)
        checks = backward_constraints(pattern, order)
        n = pattern.num_vertices
        # Ancestors contributing to each vertex's candidate set: its
        # backward pattern neighbors, transitively.
        ancestor_sets: list[set[int]] = [set() for _ in range(n)]
        position = {v: i for i, v in enumerate(order)}
        for pos in range(n):
            u = order[pos]
            for prior, _label, _directed, _forward in checks[pos]:
                ancestor_sets[pos].add(prior)
                ancestor_sets[pos] |= ancestor_sets[position[prior]]

        assignment: dict[int, int] = {}
        used: dict[int, int] = {}  # data vertex -> pattern vertex using it
        results: list[dict[int, int]] = []

        def candidates(pos: int) -> list[int]:
            u = order[pos]
            backward = checks[pos]
            label = pattern.vertex_label(u)
            if not backward:
                return [
                    v
                    for v in index.vertices_with_label(label)
                    if index.degrees[v] >= pattern.degree(u)
                ]
            anchor_prior, anchor_label, anchor_directed, anchor_forward = backward[0]
            anchor_image = assignment[anchor_prior]
            out: list[int] = []
            for v in index.neighbors[anchor_image]:
                if index.labels[v] != label:
                    continue
                ok = (
                    index.matches_pattern_edge(
                        anchor_image, v, anchor_label, anchor_directed
                    )
                    if anchor_forward
                    else index.matches_pattern_edge(
                        v, anchor_image, anchor_label, anchor_directed
                    )
                )
                if not ok:
                    continue
                for prior, lbl, directed, forward in backward[1:]:
                    image = assignment[prior]
                    ok = (
                        index.matches_pattern_edge(image, v, lbl, directed)
                        if forward
                        else index.matches_pattern_edge(v, image, lbl, directed)
                    )
                    if not ok:
                        break
                else:
                    out.append(v)
            return out

        def extend(pos: int) -> set[int] | None:
            """Fill position ``pos``; returns the subtree's failing set, or
            ``None`` when at least one embedding was found below."""
            if pos == n:
                results.append(dict(assignment))
                return None
            budget.tick(len(results))
            u = order[pos]
            cands = candidates(pos)
            if not cands:
                return {u} | ancestor_sets[pos]
            found = False
            failing: set[int] = set()
            for v in cands:
                holder = used.get(v)
                if holder is not None:
                    # Injectivity conflict: blame both contenders.
                    failing |= {u, holder}
                    continue
                assignment[u] = v
                used[v] = u
                child_failing = extend(pos + 1)
                del used[v]
                del assignment[u]
                if child_failing is None:
                    found = True
                else:
                    failing |= child_failing
                    if u not in child_failing and not found:
                        # u is irrelevant to the failure: no other candidate
                        # of u can fix it — prune the remaining siblings.
                        return child_failing
            if found:
                return None
            return failing | {u} | ancestor_sets[pos]

        # The recursion accumulates into ``results``; stream them out in
        # batches so the base driver can enforce limits.
        def run() -> Iterator[dict[int, int]]:
            extend(0)
            yield from results

        yield from run()
