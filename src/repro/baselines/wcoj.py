"""Relation-based pipelined worst-case-optimal-join matchers.

The RapidMatch/Graphflow family (Section II "Execution", join framework):
for every pattern edge, scan the data graph and build a *relation* of all
matching data edges; then join one pattern vertex at a time, intersecting
the relations' adjacency indices along the matching order. This mirrors
CSCE's execution but pays two costs CSCE avoids: relations are rebuilt per
query by scanning all edges with label checks (no CCSR), and no candidate
reuse happens across sibling partial embeddings (no SCE).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.baselines.base import BaselineMatcher, SearchBudget
from repro.core.gcf import rapidmatch_order
from repro.core.variants import Variant
from repro.graph.model import Edge, Graph

_EMPTY = np.empty(0, dtype=np.int64)


class _Relation:
    """All data edges matching one pattern edge, indexed both ways."""

    def __init__(self, pairs: list[tuple[int, int]]):
        forward: dict[int, list[int]] = {}
        backward: dict[int, list[int]] = {}
        for a, b in pairs:
            forward.setdefault(a, []).append(b)
            backward.setdefault(b, []).append(a)
        self.forward = {
            a: np.asarray(sorted(set(bs)), dtype=np.int64) for a, bs in forward.items()
        }
        self.backward = {
            b: np.asarray(sorted(set(as_)), dtype=np.int64)
            for b, as_ in backward.items()
        }
        self.size = len(pairs)

    def successors(self, a: int) -> np.ndarray:
        return self.forward.get(a, _EMPTY)

    def predecessors(self, b: int) -> np.ndarray:
        return self.backward.get(b, _EMPTY)

    def sources(self) -> np.ndarray:
        return np.asarray(sorted(self.forward), dtype=np.int64)

    def destinations(self) -> np.ndarray:
        return np.asarray(sorted(self.backward), dtype=np.int64)


class WCOJMatcher(BaselineMatcher):
    """Pipelined WCOJ without clustering or SCE (RapidMatch stand-in)."""

    display_name = "RapidMatch"
    supported_variants = frozenset({Variant.EDGE_INDUCED, Variant.HOMOMORPHIC})
    supports_vertex_labels = True
    supports_edge_labels = False
    supports_undirected = True
    supports_directed = False
    max_tested_pattern_size = 32

    def _build_relation(self, pattern: Graph, edge: Edge) -> _Relation:
        """Scan every data edge, label-checking each — the per-query cost."""
        index = self.index
        src_label = pattern.vertex_label(edge.src)
        dst_label = pattern.vertex_label(edge.dst)
        pairs: list[tuple[int, int]] = []
        for e in index.graph.edges():
            if e.label != edge.label or e.directed != edge.directed:
                continue
            orientations = [(e.src, e.dst)]
            if not e.directed:
                orientations.append((e.dst, e.src))
            for a, b in orientations:
                if index.labels[a] == src_label and index.labels[b] == dst_label:
                    pairs.append((a, b))
        return _Relation(pairs)

    def _embeddings(
        self, pattern: Graph, variant: Variant, budget: SearchBudget
    ) -> Iterator[dict[int, int]]:
        order = rapidmatch_order(pattern)
        relation_by_edge: dict[Edge, _Relation] = {
            e: self._build_relation(pattern, e) for e in pattern.edges()
        }
        # Map each backward check to its relation + direction.
        position = {v: i for i, v in enumerate(order)}
        per_position: list[list[tuple[int, _Relation, bool]]] = [
            [] for _ in order
        ]
        for e in pattern.edges():
            relation = relation_by_edge[e]
            if position[e.src] < position[e.dst]:
                per_position[position[e.dst]].append((e.src, relation, True))
            else:
                per_position[position[e.src]].append((e.dst, relation, False))

        n = pattern.num_vertices
        injective = variant.injective
        assignment: dict[int, int] = {}
        used: set[int] = set()

        def first_pool(pos: int) -> np.ndarray:
            u = order[pos]
            pools = []
            for e in pattern.incident_edges(u):
                relation = relation_by_edge[e]
                pools.append(
                    relation.sources() if e.src == u else relation.destinations()
                )
            if pools:
                return min(pools, key=len)
            return np.asarray(
                self.index.vertices_with_label(pattern.vertex_label(u)),
                dtype=np.int64,
            )

        def candidates(pos: int) -> np.ndarray:
            specs = per_position[pos]
            if not specs:
                return first_pool(pos)
            arrays = []
            for prior, relation, forward in specs:
                image = assignment[prior]
                arr = relation.successors(image) if forward else relation.predecessors(image)
                if arr.shape[0] == 0:
                    return _EMPTY
                arrays.append(arr)
            arrays.sort(key=len)
            result = arrays[0]
            for arr in arrays[1:]:
                result = np.intersect1d(result, arr, assume_unique=True)
                if result.shape[0] == 0:
                    break
            return result

        def extend(pos: int) -> Iterator[dict[int, int]]:
            if pos == n:
                yield dict(assignment)
                return
            budget.tick()
            u = order[pos]
            for v in candidates(pos).tolist():
                if injective and v in used:
                    continue
                assignment[u] = v
                if injective:
                    used.add(v)
                yield from extend(pos + 1)
                if injective:
                    used.discard(v)
                del assignment[u]

        yield from extend(0)


class GraphflowMatcher(WCOJMatcher):
    """Graphflow: the same WCOJ core, profiled for homomorphic matching on
    directed, edge-labeled graphs (Table III row GF)."""

    display_name = "Graphflow"
    supported_variants = frozenset({Variant.HOMOMORPHIC})
    supports_vertex_labels = True
    supports_edge_labels = True
    supports_undirected = False
    supports_directed = True
    max_tested_pattern_size = 7
