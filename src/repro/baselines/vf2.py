"""VF2-style induced matcher — the VF3 stand-in.

VF2/VF3 (Table III row VF3) solve vertex-induced isomorphism on labeled,
directed or undirected graphs. The implementation follows VF2's state-space
recursion: extend the mapping with frontier candidate pairs, check exact
pairwise consistency against all matched vertices, and apply VF2's
lookahead cutting rules (counts of frontier/unseen neighbors) that VF3-Light
keeps as its main pruning device.
"""

from __future__ import annotations

from typing import Iterator

from repro.baselines.base import (
    BaselineMatcher,
    SearchBudget,
    pattern_pair_descriptor,
)
from repro.core.variants import Variant
from repro.graph.model import Graph


class VF2Matcher(BaselineMatcher):
    """Vertex-induced matcher with VF2 frontier ordering and lookahead."""

    display_name = "VF3"
    supported_variants = frozenset({Variant.VERTEX_INDUCED})
    supports_vertex_labels = True
    supports_edge_labels = True
    supports_undirected = True
    supports_directed = True
    max_tested_pattern_size = 2000

    def _embeddings(
        self, pattern: Graph, variant: Variant, budget: SearchBudget
    ) -> Iterator[dict[int, int]]:
        index = self.index
        n = pattern.num_vertices

        # VF3-style static order: most-constrained first — high degree,
        # rare label.
        label_rarity = {
            label: len(index.vertices_with_label(label))
            for label in pattern.distinct_vertex_labels()
        }
        remaining = set(pattern.vertices())
        order: list[int] = []
        ordered: set[int] = set()
        while remaining:
            def key(u: int):
                frontier = len(set(pattern.neighbors(u)) & ordered)
                return (
                    -frontier,
                    label_rarity.get(pattern.vertex_label(u), 0),
                    -pattern.degree(u),
                    u,
                )

            u = min(remaining, key=key)
            order.append(u)
            ordered.add(u)
            remaining.discard(u)

        position = {u: i for i, u in enumerate(order)}
        pair_descriptors: list[list[tuple[int, tuple]]] = [[] for _ in range(n)]
        for j in range(n):
            u_j = order[j]
            for i in range(j):
                u_i = order[i]
                pair_descriptors[j].append(
                    (u_i, pattern_pair_descriptor(pattern, u_i, u_j))
                )
        # Lookahead requirement: how many *unmatched* pattern neighbors each
        # vertex still needs at each position.
        unmatched_neighbor_need = [
            sum(1 for w in pattern.neighbors(order[j]) if position[w] > j)
            for j in range(n)
        ]

        assignment: dict[int, int] = {}
        used: set[int] = set()

        def candidates(pos: int) -> Iterator[int]:
            u = order[pos]
            label = pattern.vertex_label(u)
            matched_neighbors = [w for w in pattern.neighbors(u) if w in assignment]
            if matched_neighbors:
                anchor = assignment[matched_neighbors[0]]
                pool = index.neighbors[anchor]
            else:
                pool = index.vertices_with_label(label)
            for v in pool:
                if v in used or index.labels[v] != label:
                    continue
                if index.degrees[v] < pattern.degree(u):
                    continue
                yield v

        def consistent(pos: int, v: int) -> bool:
            # Exact pairwise correspondence (induced semantics with labels
            # and direction), plus the VF2 lookahead cut.
            for u_i, descriptor in pair_descriptors[pos]:
                if index.pair_descriptor(assignment[u_i], v) != descriptor:
                    return False
            free_neighbors = sum(
                1 for w in index.neighbors[v] if w not in used
            )
            return free_neighbors >= unmatched_neighbor_need[pos]

        def extend(pos: int) -> Iterator[dict[int, int]]:
            if pos == n:
                yield dict(assignment)
                return
            budget.tick()
            u = order[pos]
            for v in candidates(pos):
                if not consistent(pos, v):
                    continue
                assignment[u] = v
                used.add(v)
                yield from extend(pos + 1)
                used.discard(v)
                del assignment[u]

        yield from extend(0)
