"""Symmetry-breaking matcher — the GraphPi stand-in.

GraphPi (and GraphZero before it) eliminates automorphic redundancy: it
computes the pattern's automorphism group, derives a chain of ordering
restrictions ``f(u) < f(v)`` under which every automorphism orbit of
embeddings has exactly one representative, matches under those
restrictions, and multiplies the result count by the group size.

The optimization cost is dominated by enumerating the automorphism group —
exponential for symmetric unlabeled patterns. That is precisely the paper's
Finding 2: symmetry breaking does not scale to large patterns, which this
implementation reproduces by construction.

Restriction generation uses the orbit-based stabilizer chain of
Grochow & Kellis (the scheme GraphZero/GraphPi build on): repeatedly pick a
vertex in a non-trivial orbit of the current group, require it to map below
every other orbit member, and descend to its stabilizer. Each automorphism
orbit of embeddings then has exactly one representative satisfying all
restrictions.
"""

from __future__ import annotations

import time
from typing import Iterator

from repro.baselines.base import (
    BaselineMatcher,
    SearchBudget,
    backward_constraints,
)
from repro.core.executor import MatchResult
from repro.core.gcf import gcf_order
from repro.core.variants import Variant
from repro.errors import VariantError
from repro.graph.algorithms import iter_automorphisms
from repro.graph.model import Graph


def symmetry_restrictions(pattern: Graph) -> tuple[list[tuple[int, int]], int]:
    """Ordering restrictions breaking all automorphisms, and |Aut(P)|.

    Returns ``(restrictions, group_size)`` where each restriction ``(u, v)``
    requires ``f(u) < f(v)``.
    """
    group = [tuple(m[v] for v in pattern.vertices()) for m in iter_automorphisms(pattern)]
    group_size = len(group)
    restrictions: list[tuple[int, int]] = []
    while len(group) > 1:
        # Orbits of the current group.
        orbit_of: dict[int, set[int]] = {}
        for v in pattern.vertices():
            orbit = {p[v] for p in group}
            if len(orbit) > 1:
                orbit_of[v] = orbit
        # Anchor the smallest vertex of the largest orbit below all of its
        # orbit mates, then descend to its stabilizer.
        u = min(orbit_of, key=lambda v: (-len(orbit_of[v]), v))
        for w in sorted(orbit_of[u] - {u}):
            restrictions.append((u, w))
        group = [p for p in group if p[u] == u]
    return restrictions, group_size


class SymmetryBreakingMatcher(BaselineMatcher):
    """Edge-induced counting with automorphism-based symmetry breaking."""

    display_name = "GraphPi"
    supported_variants = frozenset({Variant.EDGE_INDUCED})
    supports_vertex_labels = False
    supports_edge_labels = False
    supports_undirected = True
    supports_directed = False
    max_tested_pattern_size = 7

    def match(
        self,
        pattern: Graph,
        variant: Variant | str = Variant.EDGE_INDUCED,
        count_only: bool = True,
        max_embeddings: int | None = None,
        time_limit: float | None = None,
    ) -> MatchResult:
        """Count embeddings (symmetry breaking is count-only: the matcher
        never materializes the automorphic copies it skips).

        The result's ``count`` is already multiplied by |Aut(P)| so it
        agrees with engines that do not break symmetry (Section VII-B).
        ``stats`` records the optimization time (``symmetry_seconds``) that
        Finding 2 shows exploding with pattern size.
        """
        variant = Variant.parse(variant)
        self.check_supported(pattern, variant)
        if not count_only:
            raise VariantError(
                f"{self.display_name} only counts; it skips automorphic"
                " embeddings instead of materializing them"
            )
        optimization_start = time.perf_counter()
        restrictions, group_size = symmetry_restrictions(pattern)
        symmetry_seconds = time.perf_counter() - optimization_start

        budget = SearchBudget(time_limit)
        start = time.perf_counter()
        restricted_count = 0
        timed_out = False
        try:
            for _ in self._restricted_embeddings(pattern, restrictions, budget):
                restricted_count += 1
        except Exception as exc:  # TimeLimitExceeded from budget.tick
            from repro.errors import TimeLimitExceeded

            if isinstance(exc, TimeLimitExceeded):
                timed_out = True
            else:
                raise
        return MatchResult(
            count=restricted_count * group_size,
            variant=variant,
            embeddings=None,
            elapsed=time.perf_counter() - start + symmetry_seconds,
            timed_out=timed_out,
            stats={
                "nodes": budget.nodes,
                "symmetry_seconds": symmetry_seconds,
                "automorphisms": group_size,
                "restrictions": len(restrictions),
                "restricted_count": restricted_count,
            },
        )

    def _embeddings(
        self, pattern: Graph, variant: Variant, budget: SearchBudget
    ) -> Iterator[dict[int, int]]:
        raise NotImplementedError("use match(); symmetry breaking is count-only")

    def _restricted_embeddings(
        self,
        pattern: Graph,
        restrictions: list[tuple[int, int]],
        budget: SearchBudget,
    ) -> Iterator[dict[int, int]]:
        index = self.index
        order = gcf_order(pattern, task_clusters=None, use_cluster_tiebreak=False)
        checks = backward_constraints(pattern, order)
        n = pattern.num_vertices
        position = {v: i for i, v in enumerate(order)}
        # Evaluate each restriction as soon as both endpoints are matched.
        restriction_at: list[list[tuple[int, int, bool]]] = [[] for _ in range(n)]
        for u, v in restrictions:
            later = u if position[u] > position[v] else v
            restriction_at[position[later]].append((u, v, later == u))

        assignment: dict[int, int] = {}
        used: set[int] = set()

        def extend(pos: int) -> Iterator[dict[int, int]]:
            if pos == n:
                yield dict(assignment)
                return
            budget.tick()
            u = order[pos]
            backward = checks[pos]
            if backward:
                anchor_prior = backward[0][0]
                pool = index.neighbors[assignment[anchor_prior]]
            else:
                pool = index.vertices_with_label(pattern.vertex_label(u))
            for v in pool:
                if v in used:
                    continue
                ok = True
                for prior, _lbl, _directed, _forward in backward:
                    if not index.adjacent(assignment[prior], v):
                        ok = False
                        break
                if not ok:
                    continue
                violates = False
                for a, b, later_is_a in restriction_at[pos]:
                    fa = v if later_is_a else assignment[a]
                    fb = assignment[b] if later_is_a else v
                    if not fa < fb:
                        violates = True
                        break
                if violates:
                    continue
                assignment[u] = v
                used.add(v)
                yield from extend(pos + 1)
                used.discard(v)
                del assignment[u]

        yield from extend(0)
