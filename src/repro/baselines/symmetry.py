"""Symmetry-breaking matcher — the GraphPi stand-in.

GraphPi (and GraphZero before it) eliminates automorphic redundancy: it
computes the pattern's automorphism group, derives a chain of ordering
restrictions ``f(u) < f(v)`` under which every automorphism orbit of
embeddings has exactly one representative, matches under those
restrictions, and multiplies the result count by the group size.

The optimization cost is dominated by enumerating the automorphism group —
exponential for symmetric unlabeled patterns. That is precisely the paper's
Finding 2: symmetry breaking does not scale to large patterns, which this
implementation reproduces by construction.

Restriction generation uses the orbit-based stabilizer chain of
Grochow & Kellis (the scheme GraphZero/GraphPi build on): repeatedly pick a
vertex in a non-trivial orbit of the current group, require it to map below
every other orbit member, and descend to its stabilizer. Each automorphism
orbit of embeddings then has exactly one representative satisfying all
restrictions.

The restricted search itself runs on the compiled engine: the pattern is
compiled once per (pattern, restrictions) through a private
:class:`~repro.engine.MatchSession` and counted by the iterative physical
executor, so the baseline isolates the *symmetry-breaking strategy* (and
its optimization cost) rather than differences in backtracking machinery.
"""

from __future__ import annotations

import time
from typing import Iterator

from repro.baselines.base import BaselineMatcher, SearchBudget
from repro.core.variants import Variant
from repro.engine.executor import execute_physical
from repro.engine.results import MatchOptions, MatchResult
from repro.engine.session import MatchSession
from repro.errors import VariantError
from repro.graph.algorithms import iter_automorphisms
from repro.graph.model import Graph
from repro.obs import NULL_OBS


def symmetry_restrictions(pattern: Graph) -> tuple[list[tuple[int, int]], int]:
    """Ordering restrictions breaking all automorphisms, and |Aut(P)|.

    Returns ``(restrictions, group_size)`` where each restriction ``(u, v)``
    requires ``f(u) < f(v)``.
    """
    group = [tuple(m[v] for v in pattern.vertices()) for m in iter_automorphisms(pattern)]
    group_size = len(group)
    restrictions: list[tuple[int, int]] = []
    while len(group) > 1:
        # Orbits of the current group.
        orbit_of: dict[int, set[int]] = {}
        for v in pattern.vertices():
            orbit = {p[v] for p in group}
            if len(orbit) > 1:
                orbit_of[v] = orbit
        # Anchor the smallest vertex of the largest orbit below all of its
        # orbit mates, then descend to its stabilizer.
        u = min(orbit_of, key=lambda v: (-len(orbit_of[v]), v))
        for w in sorted(orbit_of[u] - {u}):
            restrictions.append((u, w))
        group = [p for p in group if p[u] == u]
    return restrictions, group_size


class SymmetryBreakingMatcher(BaselineMatcher):
    """Edge-induced counting with automorphism-based symmetry breaking."""

    display_name = "GraphPi"
    supported_variants = frozenset({Variant.EDGE_INDUCED})
    supports_vertex_labels = False
    supports_edge_labels = False
    supports_undirected = True
    supports_directed = False
    max_tested_pattern_size = 7

    def _prepare(self, graph: Graph) -> None:
        self._session = MatchSession(graph)

    def match(
        self,
        pattern: Graph,
        variant: Variant | str = Variant.EDGE_INDUCED,
        count_only: bool = True,
        max_embeddings: int | None = None,
        time_limit: float | None = None,
        restrictions: tuple[tuple[int, int], ...] | None = None,
        obs=None,
    ) -> MatchResult:
        """Count embeddings (symmetry breaking is count-only: the matcher
        never materializes the automorphic copies it skips).

        The result's ``count`` is already multiplied by |Aut(P)| so it
        agrees with engines that do not break symmetry (Section VII-B).
        ``stats`` records the optimization time (``symmetry_seconds``) that
        Finding 2 shows exploding with pattern size. Caller-supplied
        ``restrictions`` are merged with the derived symmetry chain and
        further constrain the restricted search (the |Aut(P)| multiplier is
        unchanged). ``max_embeddings`` is accepted for interface parity but
        ignored: a cap on the *restricted* count has no meaningful
        embedding-count semantics after the group-size multiplication.
        """
        variant = Variant.parse(variant)
        obs = obs or NULL_OBS
        self.check_supported(pattern, variant)
        if not count_only:
            raise VariantError(
                f"{self.display_name} only counts; it skips automorphic"
                " embeddings instead of materializing them"
            )
        optimization_start = time.perf_counter()
        sym_restrictions, group_size = symmetry_restrictions(pattern)
        symmetry_seconds = time.perf_counter() - optimization_start
        combined = tuple(
            dict.fromkeys([*(restrictions or ()), *sym_restrictions])
        ) or None

        with obs.tracer.span(
            "match", engine=self.display_name, variant=variant.value
        ) as span:
            compiled = self._session.compile(
                pattern, variant, restrictions=combined, obs=obs
            )
            result = execute_physical(
                compiled.physical,
                MatchOptions(
                    count_only=True,
                    time_limit=time_limit,
                    restrictions=combined,
                    obs=obs if obs.enabled else None,
                ),
            )
            span.set("count", result.count * group_size)
        stats = dict(result.stats)
        stats.update(
            symmetry_seconds=symmetry_seconds,
            automorphisms=group_size,
            restrictions=len(combined or ()),
            restricted_count=result.count,
        )
        return MatchResult(
            count=result.count * group_size,
            variant=variant,
            embeddings=None,
            elapsed=result.elapsed + symmetry_seconds,
            read_seconds=result.read_seconds,
            plan_seconds=result.plan_seconds,
            compile_seconds=result.compile_seconds,
            timed_out=result.timed_out,
            stats=stats,
        )

    def _embeddings(
        self, pattern: Graph, variant: Variant, budget: SearchBudget
    ) -> Iterator[dict[int, int]]:
        raise NotImplementedError("use match(); symmetry breaking is count-only")
