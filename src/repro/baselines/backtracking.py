"""Backtracking matcher in the RI / GuP mold.

The classic backtracking framework (Section II "Execution"): order pattern
vertices with GCF, filter initial candidates with label-degree (LDF) and
neighborhood-label-frequency (NLF) rules, then grow partial embeddings by
scanning the data-graph neighbors of one matched backward neighbor and
verifying every other backward edge with explicit label checks.

This is the stand-in for RI (edge-induced + vertex-induced heuristics
backtracking) and, with its guard-style candidate filtering, for GuP's
pruning-centric variant of the same framework.
"""

from __future__ import annotations

from typing import Iterator

from repro.baselines.base import (
    BaselineMatcher,
    SearchBudget,
    backward_constraints,
    pattern_pair_descriptor,
)
from repro.core.gcf import gcf_order
from repro.core.variants import Variant
from repro.graph.model import Graph


class BacktrackingMatcher(BaselineMatcher):
    """RI-style backtracking with LDF/NLF candidate filtering."""

    display_name = "RI-Backtracking"
    supported_variants = frozenset(
        {Variant.EDGE_INDUCED, Variant.VERTEX_INDUCED, Variant.HOMOMORPHIC}
    )
    supports_vertex_labels = True
    supports_edge_labels = True
    supports_undirected = True
    supports_directed = True
    max_tested_pattern_size = 32

    def _embeddings(
        self, pattern: Graph, variant: Variant, budget: SearchBudget
    ) -> Iterator[dict[int, int]]:
        index = self.index
        order = gcf_order(pattern, task_clusters=None, use_cluster_tiebreak=False)
        checks = backward_constraints(pattern, order)
        n = pattern.num_vertices
        induced = variant.induced
        injective = variant.injective

        # Per position, the earlier *non*-neighbors to negate under the
        # induced variant (strict: pattern/data pair descriptors must agree,
        # so neighbors are re-verified exactly too).
        position = {v: i for i, v in enumerate(order)}
        induced_pairs: list[list[tuple[int, tuple]]] = [[] for _ in range(n)]
        if induced:
            for j in range(n):
                u_j = order[j]
                for i in range(j):
                    u_i = order[i]
                    induced_pairs[j].append(
                        (u_i, pattern_pair_descriptor(pattern, u_i, u_j))
                    )

        # LDF + NLF filters for the first vertex. Degree-based pruning is
        # only sound under injective variants: a homomorphism may fold many
        # pattern neighbors onto one data vertex.
        def passes_filters(u: int, v: int) -> bool:
            if index.labels[v] != pattern.vertex_label(u):
                return False
            if not injective:
                return True
            if index.degrees[v] < pattern.degree(u):
                return False
            need = {}
            for w in pattern.neighbors(u):
                lbl = pattern.vertex_label(w)
                need[lbl] = need.get(lbl, 0) + 1
            have = index.neighbor_label_counts[v]
            return all(have.get(lbl, 0) >= cnt for lbl, cnt in need.items())

        # Symmetry restrictions (f(u) < f(v)), evaluated once both ends map.
        restriction_at: list[list[tuple[int, bool]]] = [[] for _ in range(n)]
        for u, v in self._restrictions:
            if position[u] > position[v]:
                restriction_at[position[u]].append((v, True))
            else:
                restriction_at[position[v]].append((u, False))

        assignment: dict[int, int] = {}
        used: set[int] = set()

        def candidates(pos: int) -> Iterator[int]:
            u = order[pos]
            backward = checks[pos]
            if not backward:
                pool = index.vertices_with_label(pattern.vertex_label(u))
                for v in pool:
                    if passes_filters(u, v):
                        yield v
                return
            # Scan neighbors of one matched backward neighbor, verify rest.
            anchor_prior, anchor_label, anchor_directed, anchor_forward = backward[0]
            anchor_image = assignment[anchor_prior]
            for v in index.neighbors[anchor_image]:
                if index.labels[v] != pattern.vertex_label(u):
                    continue
                if anchor_forward:
                    ok = index.matches_pattern_edge(
                        anchor_image, v, anchor_label, anchor_directed
                    )
                else:
                    ok = index.matches_pattern_edge(
                        v, anchor_image, anchor_label, anchor_directed
                    )
                if not ok:
                    continue
                for prior, label, directed, forward in backward[1:]:
                    image = assignment[prior]
                    if forward:
                        ok = index.matches_pattern_edge(image, v, label, directed)
                    else:
                        ok = index.matches_pattern_edge(v, image, label, directed)
                    if not ok:
                        break
                else:
                    yield v

        def extend(pos: int) -> Iterator[dict[int, int]]:
            if pos == n:
                yield dict(assignment)
                return
            budget.tick()
            u = order[pos]
            for v in candidates(pos):
                if injective and v in used:
                    continue
                violates = False
                for other, candidate_is_smaller in restriction_at[pos]:
                    image = assignment[other]
                    if (candidate_is_smaller and v >= image) or (
                        not candidate_is_smaller and v <= image
                    ):
                        violates = True
                        break
                if violates:
                    continue
                if induced:
                    conflict = False
                    for u_i, descriptor in induced_pairs[pos]:
                        if index.pair_descriptor(assignment[u_i], v) != descriptor:
                            conflict = True
                            break
                    if conflict:
                        continue
                assignment[u] = v
                if injective:
                    used.add(v)
                yield from extend(pos + 1)
                if injective:
                    used.discard(v)
                del assignment[u]

        yield from extend(0)
