"""Bench history: persist harness sweeps and gate regressions.

Every harness sweep can be folded into a ``BENCH_<figure>.json`` document
(schema ``repro-bench-history`` v1): one entry per configuration
(engine, dataset, variant, pattern size, pattern name), averaged over the
sweep's repeats, stamped with the machine it ran on and a **calibration
constant** — the wall-clock of a fixed CPU-bound loop measured on that
machine. Comparisons normalize every timing by its document's calibration
(``total_seconds / calibration_seconds``), so a baseline recorded on a
fast laptop gates a slow CI runner without false alarms.

:func:`compare_histories` computes per-config deltas and classifies each:

``ok`` / ``improved`` / ``regression``
    comparable timings; regression when the normalized ratio exceeds the
    threshold *and* the baseline is above the noise floor;
``incomparable``
    either side timed out, was unsupported, or found a different number of
    embeddings (the paper's convention: a timeout records the time limit,
    which is a *censored* measurement — comparing it as a timing would
    call a faster machine's successful run a regression);
``new`` / ``missing``
    the configuration exists on only one side.

``repro bench compare --baseline`` renders the table and exits nonzero on
any regression — the CI perf-smoke gate.
"""

from __future__ import annotations

import json
import os
import platform
import statistics
import time
from dataclasses import dataclass, field
from typing import Sequence

from repro.errors import FormatError

BENCH_FORMAT = "repro-bench-history"
BENCH_VERSION = 1

#: Default regression threshold: normalized current/baseline time ratio.
DEFAULT_THRESHOLD = 1.5
#: Baseline timings below this floor (seconds) are noise, never regressions.
#: The scaled-down smoke configs run in ~1 ms, so the floor sits below that;
#: raise it per-comparison (``--min-seconds``) for flaky environments.
DEFAULT_MIN_SECONDS = 0.0005

#: Required top-level fields of a bench-history document.
BENCH_SCHEMA: dict[str, type | tuple] = {
    "format": str,
    "version": int,
    "figure": str,
    "machine": dict,
    "configs": list,
}

_CONFIG_NUMERIC = ("total_seconds", "execute_seconds", "embeddings", "n")


def calibrate(loops: int = 200_000, repeats: int = 3) -> float:
    """Time a fixed CPU-bound loop; the document's machine-speed constant.

    The minimum over ``repeats`` runs suppresses scheduler noise. All
    timing comparisons divide by this, so only the *ratio* between two
    machines matters, not the loop's absolute cost.
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        acc = 0
        for i in range(loops):
            acc += i * i
        best = min(best, time.perf_counter() - start)
    return best


def machine_fingerprint(calibration_seconds: float | None = None) -> dict:
    """Identity + speed of the machine a history document was recorded on."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "cpu_count": os.cpu_count() or 1,
        "calibration_seconds": (
            calibrate() if calibration_seconds is None else calibration_seconds
        ),
    }


def config_key(record) -> str:
    """Stable identity of one sweep configuration (an ExperimentRecord).

    Parallel runs (``workers > 1``) get a ``|wN`` suffix so they never
    compare against single-process baselines; ``workers == 1`` keeps the
    historical key shape, so committed baselines stay comparable.
    """
    workers = getattr(record, "workers", 1)
    suffix = f"|w{workers}" if workers != 1 else ""
    return (
        f"{record.engine}|{record.dataset}|{record.variant}"
        f"|size={record.pattern_size}|{record.pattern_name or '-'}{suffix}"
    )


def build_history(
    figure: str,
    records: Sequence,
    machine: dict | None = None,
) -> dict:
    """Fold harness :class:`ExperimentRecord` rows into a history document.

    Records sharing a :func:`config_key` (repeat runs) are averaged; a
    configuration counts as timed-out/unsupported when *any* repeat was —
    censored measurements poison the mean, so the whole config is flagged
    incomparable instead.
    """
    groups: dict[str, list] = {}
    for record in records:
        groups.setdefault(config_key(record), []).append(record)
    configs = []
    for key in sorted(groups):
        members = groups[key]
        first = members[0]
        configs.append(
            {
                "key": key,
                "engine": first.engine,
                "dataset": first.dataset,
                "variant": first.variant,
                "pattern_size": first.pattern_size,
                "pattern_name": first.pattern_name,
                "workers": getattr(first, "workers", 1),
                "n": len(members),
                "embeddings": round(
                    statistics.fmean(m.embeddings for m in members), 1
                ),
                "total_seconds": statistics.fmean(
                    m.total_seconds for m in members
                ),
                "execute_seconds": statistics.fmean(
                    m.execute_seconds for m in members
                ),
                "read_seconds": statistics.fmean(
                    m.read_seconds for m in members
                ),
                "plan_seconds": statistics.fmean(
                    m.plan_seconds for m in members
                ),
                "timed_out": any(m.timed_out for m in members),
                "truncated": any(m.truncated for m in members),
                "unsupported": any(m.unsupported for m in members),
            }
        )
    return {
        "format": BENCH_FORMAT,
        "version": BENCH_VERSION,
        "figure": figure,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "machine": machine if machine is not None else machine_fingerprint(),
        "configs": configs,
    }


# ----------------------------------------------------------------------
# Validation / IO (schema core shared with run-reports)
# ----------------------------------------------------------------------
def validate_bench_history(doc: dict) -> None:
    """Raise :class:`FormatError` unless ``doc`` is a valid v1 history."""
    from repro.obs.report import schema_problems

    problems = schema_problems(doc, BENCH_SCHEMA, label="bench-history")
    if not problems:
        if doc["format"] != BENCH_FORMAT:
            problems.append(f"format is {doc['format']!r}")
        if doc["version"] != BENCH_VERSION:
            problems.append(f"unsupported version {doc['version']!r}")
        for i, config in enumerate(doc["configs"]):
            if not isinstance(config, dict):
                problems.append(f"configs[{i}] is not an object")
                continue
            if "key" not in config:
                problems.append(f"configs[{i}] missing 'key'")
            for name in _CONFIG_NUMERIC:
                if not isinstance(config.get(name), (int, float)):
                    problems.append(
                        f"configs[{i}].{name} missing or non-numeric"
                    )
    if problems:
        raise FormatError("invalid bench-history: " + "; ".join(problems))


def write_history(doc: dict, path: str | os.PathLike) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(json.dumps(doc, indent=2, default=str) + "\n")


def load_history(path: str | os.PathLike) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        doc = json.load(handle)
    validate_bench_history(doc)
    return doc


# ----------------------------------------------------------------------
# Comparison / regression gating
# ----------------------------------------------------------------------
@dataclass
class ConfigDelta:
    """One configuration's baseline-vs-current verdict."""

    key: str
    status: str  # ok | improved | regression | incomparable | new | missing
    baseline_seconds: float | None = None
    current_seconds: float | None = None
    ratio: float | None = None  # normalized current / baseline
    note: str = ""

    def row(self) -> dict:
        return {
            "config": self.key,
            "baseline_s": (
                "-" if self.baseline_seconds is None
                else f"{self.baseline_seconds:.4f}"
            ),
            "current_s": (
                "-" if self.current_seconds is None
                else f"{self.current_seconds:.4f}"
            ),
            "ratio": "-" if self.ratio is None else f"{self.ratio:.2f}x",
            "status": self.status + (f" ({self.note})" if self.note else ""),
        }


@dataclass
class BenchComparison:
    """The full comparison: per-config deltas plus the gate verdict."""

    threshold: float
    deltas: list[ConfigDelta] = field(default_factory=list)

    @property
    def regressions(self) -> list[ConfigDelta]:
        return [d for d in self.deltas if d.status == "regression"]

    @property
    def exit_code(self) -> int:
        return 1 if self.regressions else 0

    def summary(self) -> str:
        counts: dict[str, int] = {}
        for delta in self.deltas:
            counts[delta.status] = counts.get(delta.status, 0) + 1
        parts = [f"{n} {status}" for status, n in sorted(counts.items())]
        verdict = (
            f"FAIL: {len(self.regressions)} regression(s)"
            f" above {self.threshold:g}x"
            if self.regressions
            else f"OK: no regression above {self.threshold:g}x"
        )
        return f"{verdict} — {', '.join(parts) if parts else 'no configs'}"


def compare_histories(
    baseline: dict,
    current: dict,
    threshold: float = DEFAULT_THRESHOLD,
    min_seconds: float = DEFAULT_MIN_SECONDS,
    metric: str = "total_seconds",
) -> BenchComparison:
    """Per-config deltas between two history documents (see module doc)."""
    base_cal = float(baseline.get("machine", {}).get("calibration_seconds") or 1.0)
    cur_cal = float(current.get("machine", {}).get("calibration_seconds") or 1.0)
    base_configs = {c["key"]: c for c in baseline.get("configs", [])}
    cur_configs = {c["key"]: c for c in current.get("configs", [])}

    comparison = BenchComparison(threshold=threshold)
    for key in sorted(set(base_configs) | set(cur_configs)):
        base = base_configs.get(key)
        cur = cur_configs.get(key)
        if base is None:
            comparison.deltas.append(
                ConfigDelta(
                    key,
                    "new",
                    current_seconds=cur.get(metric),
                    note="no baseline entry",
                )
            )
            continue
        if cur is None:
            comparison.deltas.append(
                ConfigDelta(
                    key,
                    "missing",
                    baseline_seconds=base.get(metric),
                    note="config dropped from sweep",
                )
            )
            continue
        delta = ConfigDelta(
            key,
            "ok",
            baseline_seconds=base.get(metric),
            current_seconds=cur.get(metric),
        )
        incomparable = _incomparable_reason(base, cur)
        if incomparable:
            delta.status = "incomparable"
            delta.note = incomparable
            comparison.deltas.append(delta)
            continue
        base_norm = base[metric] / base_cal
        cur_norm = cur[metric] / cur_cal
        delta.ratio = cur_norm / base_norm if base_norm > 0 else None
        if base[metric] < min_seconds:
            delta.note = "below noise floor"
        elif delta.ratio is not None and delta.ratio > threshold:
            delta.status = "regression"
        elif delta.ratio is not None and delta.ratio < 1.0 / threshold:
            delta.status = "improved"
        comparison.deltas.append(delta)
    return comparison


def _incomparable_reason(base: dict, cur: dict) -> str:
    """Why two config entries cannot be compared as timings, if at all."""
    if base.get("unsupported") or cur.get("unsupported"):
        return "unsupported combination"
    if base.get("timed_out") and cur.get("timed_out"):
        return "both timed out (censored at the time limit)"
    if base.get("timed_out"):
        return "baseline timed out (censored)"
    if cur.get("timed_out"):
        return "current timed out (censored)"
    if (
        not base.get("truncated")
        and not cur.get("truncated")
        and base.get("embeddings") != cur.get("embeddings")
    ):
        return (
            f"embedding counts differ"
            f" ({base.get('embeddings')} vs {cur.get('embeddings')})"
        )
    return ""
