"""Plain-text rendering of paper-style tables and figure series."""

from __future__ import annotations

from typing import Iterable, Sequence


def format_table(rows: Sequence[dict], columns: Sequence[str] | None = None) -> str:
    """Render dict rows as an aligned text table (headers from keys)."""
    if not rows:
        return "(no rows)"
    if columns is None:
        columns = list(rows[0])
    widths = {
        col: max(len(str(col)), *(len(str(row.get(col, ""))) for row in rows))
        for col in columns
    }
    header = "  ".join(str(col).ljust(widths[col]) for col in columns)
    rule = "  ".join("-" * widths[col] for col in columns)
    lines = [header, rule]
    for row in rows:
        lines.append(
            "  ".join(str(row.get(col, "")).ljust(widths[col]) for col in columns)
        )
    return "\n".join(lines)


def print_table(
    rows: Sequence[dict],
    columns: Sequence[str] | None = None,
    title: str = "",
) -> None:
    """Print a table with an optional title banner."""
    if title:
        print(f"\n=== {title} ===")
    print(format_table(rows, columns))


def print_series(
    title: str,
    x_label: str,
    xs: Iterable,
    series: dict[str, Sequence[float]],
    fmt: str = "{:.4g}",
) -> None:
    """Print one figure panel: x values as columns, one row per series."""
    xs = list(xs)
    rows = []
    for name, values in series.items():
        row = {x_label: name}
        for x, value in zip(xs, values):
            row[str(x)] = fmt.format(value) if value is not None else "-"
        rows.append(row)
    print_table(rows, [x_label] + [str(x) for x in xs], title=title)
