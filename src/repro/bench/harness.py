"""The sweep runner behind every figure/table benchmark.

Mirrors the paper's protocol (Section VII): per configuration, run each
engine on the same sampled patterns with a time limit; record total time
(read + optimization + execution), embedding counts, and throughput; on
failure/timeout record the time limit, following the convention of existing
works. Scaled down: seconds-level limits instead of 1e4 s.
"""

from __future__ import annotations

import logging
import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable, Sequence

from repro.baselines import (
    BacktrackingMatcher,
    FailingSetMatcher,
    GraphflowMatcher,
    SymmetryBreakingMatcher,
    VF2Matcher,
    WCOJMatcher,
)
from repro.core.csce import CSCE
from repro.core.executor import MatchResult
from repro.core.variants import Variant
from repro.errors import VariantError
from repro.graph.model import Graph
from repro.obs import Observation, build_run_report, write_run_report

logger = logging.getLogger(__name__)

DEFAULT_TIME_LIMIT = 5.0

#: Engine name -> factory(data graph) -> object with a CSCE-like ``match``.
ENGINES: dict[str, Callable[[Graph], object]] = {
    "CSCE": CSCE,
    "GraphPi": SymmetryBreakingMatcher,
    "Graphflow": GraphflowMatcher,
    "GuP": BacktrackingMatcher,
    "RapidMatch": WCOJMatcher,
    "VEQ": FailingSetMatcher,
    "VF3": VF2Matcher,
}


def make_engine(name: str, graph: Graph):
    """Instantiate a registered engine over a data graph."""
    try:
        factory = ENGINES[name]
    except KeyError:
        raise VariantError(
            f"unknown engine {name!r}; available: {', '.join(ENGINES)}"
        ) from None
    return factory(graph)


@dataclass
class ExperimentRecord:
    """One (engine, pattern, variant) measurement — a point in a figure."""

    experiment: str
    engine: str
    dataset: str
    variant: str
    pattern_size: int
    pattern_name: str = ""
    embeddings: int = 0
    total_seconds: float = 0.0
    execute_seconds: float = 0.0
    read_seconds: float = 0.0
    plan_seconds: float = 0.0
    timed_out: bool = False
    truncated: bool = False
    unsupported: bool = False
    workers: int = 1
    """Worker processes the task ran on (1 = classic in-process run).
    Only CSCE honors ``workers > 1``; baselines always record 1."""

    peak_mb: float | None = None
    extra: dict = field(default_factory=dict)
    report: dict | None = None
    """Full run-report (:func:`repro.obs.build_run_report`) when the sweep
    ran with ``collect_reports=True``; ``None`` otherwise."""

    @property
    def throughput(self) -> float:
        if self.execute_seconds <= 0:
            return 0.0
        return self.embeddings / self.execute_seconds

    def row(self) -> dict:
        status = "ok"
        if self.unsupported:
            status = "n/a"
        elif self.timed_out:
            status = "timeout"
        elif self.truncated:
            status = "truncated"
        return {
            "experiment": self.experiment,
            "engine": self.engine,
            "dataset": self.dataset,
            "variant": self.variant,
            "size": self.pattern_size,
            "embeddings": self.embeddings,
            "total_s": round(self.total_seconds, 4),
            "throughput": round(self.throughput, 1),
            "status": status,
        }


def run_task(
    experiment: str,
    engine_name: str,
    engine,
    dataset: str,
    pattern: Graph,
    variant: Variant | str,
    time_limit: float = DEFAULT_TIME_LIMIT,
    max_embeddings: int | None = None,
    count_only: bool = True,
    track_memory: bool = False,
    collect_reports: bool = False,
    trace: bool = False,
    observed: bool = False,
    workers: int = 1,
) -> ExperimentRecord:
    """Run one engine on one pattern, recording the paper's metrics.

    Unsupported (engine, variant, graph-type) combinations — Table III's
    empty cells — come back flagged ``unsupported`` instead of raising.
    Timeouts record the time limit as the total, the existing-works
    convention the paper follows. ``track_memory`` runs the task under a
    :class:`~repro.obs.profile.Profiler` and records its ``peak_mb`` — the
    same tracemalloc quantity ``--profile`` run-reports expose — at a
    roughly 2x slowdown, so it is off by default. ``collect_reports``
    attaches a full run-report to the record (with span trees when
    ``trace`` is also set); reports ride in ``record.report``, so
    ``record.row()`` stays flat. ``observed`` attaches a minimal
    :class:`~repro.obs.Observation` (no spans, no profiling — counters +
    the always-on flight recorder + progress estimation), which is how
    the perf-smoke gate measures the always-on observability overhead.
    ``workers > 1`` runs CSCE tasks on the multi-process pool
    (:mod:`repro.engine.pool`) in count mode; baselines (and enumeration
    tasks) silently stay single-process and record ``workers=1``.
    """
    pool_workers = (
        workers if workers > 1 and count_only and isinstance(engine, CSCE)
        else 1
    )
    record = ExperimentRecord(
        experiment=experiment,
        engine=engine_name,
        dataset=dataset,
        variant=str(Variant.parse(variant)),
        pattern_size=pattern.num_vertices,
        pattern_name=pattern.name,
        workers=pool_workers,
    )
    obs = (
        Observation(trace=trace, profile=track_memory)
        if (collect_reports or track_memory)
        else Observation(trace=False) if observed else None
    )
    start = time.perf_counter()
    try:
        result: MatchResult = engine.match(
            pattern,
            variant,
            count_only=count_only,
            max_embeddings=max_embeddings,
            time_limit=time_limit,
            obs=obs,
            **({"workers": pool_workers} if pool_workers > 1 else {}),
        )
    except VariantError:
        record.unsupported = True
        if obs is not None:
            obs.finish()
        return record
    wall = time.perf_counter() - start
    if obs is not None:
        obs.finish(result)
    if track_memory:
        record.peak_mb = obs.profile.peak_mb
    record.embeddings = result.count
    record.execute_seconds = result.elapsed
    record.read_seconds = result.read_seconds
    record.plan_seconds = result.plan_seconds
    record.truncated = result.truncated
    record.timed_out = result.timed_out
    record.total_seconds = time_limit if result.timed_out else wall
    record.extra = dict(result.stats)
    record.extra["compile_seconds"] = result.compile_seconds
    if result.shards is not None:
        record.extra["shards"] = dict(result.shards)
    if collect_reports and obs is not None:
        record.report = build_run_report(
            result,
            engine=engine_name,
            obs=obs,
            dataset=dataset,
            pattern=pattern,
            extra={"experiment": experiment},
        )
    logger.debug(
        "bench %s/%s size=%d: count=%d total=%.4fs",
        engine_name,
        record.variant,
        record.pattern_size,
        record.embeddings,
        record.total_seconds,
    )
    return record


def sweep(
    experiment: str,
    graph: Graph,
    patterns: Sequence[Graph],
    engine_names: Iterable[str],
    variant: Variant | str,
    time_limit: float = DEFAULT_TIME_LIMIT,
    max_embeddings: int | None = None,
    collect_reports: bool = False,
    trace: bool = False,
    track_memory: bool = False,
    observed: bool = False,
    workers: int = 1,
) -> list[ExperimentRecord]:
    """Run every engine on every pattern; one record per (engine, pattern).

    Engines are constructed once per sweep (their build/index time is part
    of the offline stage, exactly as the paper treats CCSR construction).
    ``collect_reports`` / ``trace`` attach run-reports to each record
    (see :func:`run_task`); :func:`save_reports` streams them to JSONL;
    ``observed`` runs every task with the minimal always-on instruments
    (flight recorder + progress) to measure their overhead.
    """
    records: list[ExperimentRecord] = []
    for name in engine_names:
        try:
            engine = make_engine(name, graph)
        except VariantError:
            continue
        for pattern in patterns:
            records.append(
                run_task(
                    experiment,
                    name,
                    engine,
                    graph.name,
                    pattern,
                    variant,
                    time_limit=time_limit,
                    max_embeddings=max_embeddings,
                    collect_reports=collect_reports,
                    trace=trace,
                    track_memory=track_memory,
                    observed=observed,
                    workers=workers,
                )
            )
    return records


def save_reports(records: Sequence[ExperimentRecord], path: str) -> int:
    """Persist every attached run-report; returns the number written.

    ``.jsonl`` paths get one report per line (appending); any other path
    gets one JSON array. Records without reports are skipped.
    """
    reports = [r.report for r in records if r.report is not None]
    if str(path).endswith(".jsonl"):
        for report in reports:
            write_run_report(report, path)
    else:
        import json

        with open(path, "w", encoding="utf-8") as handle:
            json.dump(reports, handle, indent=2, default=str)
    return len(reports)


def save_records(
    records: Sequence[ExperimentRecord], path: str, fmt: str | None = None
) -> None:
    """Persist experiment records as JSON or CSV (inferred from suffix).

    JSON keeps the full record including ``extra`` stats; CSV flattens to
    the table columns — handy for external plotting of the figures.
    """
    import csv
    import json

    if fmt is None:
        fmt = "csv" if str(path).endswith(".csv") else "json"
    if fmt == "json":
        payload = [
            {**record.row(), "extra": record.extra} for record in records
        ]
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2)
        return
    if fmt == "csv":
        rows = [record.row() for record in records]
        if not rows:
            with open(path, "w", encoding="utf-8") as handle:
                handle.write("")
            return
        with open(path, "w", encoding="utf-8", newline="") as handle:
            writer = csv.DictWriter(handle, fieldnames=list(rows[0]))
            writer.writeheader()
            writer.writerows(rows)
        return
    raise ValueError(f"unknown format {fmt!r}; use 'json' or 'csv'")


def average_by(
    records: Sequence[ExperimentRecord],
    key: Callable[[ExperimentRecord], tuple],
) -> dict[tuple, dict[str, float]]:
    """Aggregate records (the paper averages 10 patterns per setting)."""
    groups: dict[tuple, list[ExperimentRecord]] = {}
    for record in records:
        if record.unsupported:
            continue
        groups.setdefault(key(record), []).append(record)
    summary: dict[tuple, dict[str, float]] = {}
    for group_key, members in groups.items():
        summary[group_key] = {
            "total_s": statistics.fmean(m.total_seconds for m in members),
            "embeddings": statistics.fmean(m.embeddings for m in members),
            "throughput": statistics.fmean(m.throughput for m in members),
            "timeouts": sum(1 for m in members if m.timed_out),
            "n": len(members),
        }
    return summary
