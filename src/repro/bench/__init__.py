"""Benchmark harness: engine registry, sweep runner, and table printing."""

from repro.bench.harness import (
    ENGINES,
    ExperimentRecord,
    make_engine,
    run_task,
    sweep,
)
from repro.bench.tables import format_table, print_series, print_table

__all__ = [
    "ENGINES",
    "ExperimentRecord",
    "make_engine",
    "run_task",
    "sweep",
    "format_table",
    "print_series",
    "print_table",
]
