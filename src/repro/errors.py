"""Exception hierarchy for the CSCE reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the common cases (bad graph input, bad plan, resource
limits) when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """An operation on a :class:`~repro.graph.Graph` received invalid input.

    Examples: adding an edge whose endpoint does not exist, self-loops
    (disallowed by the paper's graph model), or duplicate parallel edges
    with the same label and direction.
    """


class FormatError(ReproError):
    """A graph file could not be parsed."""

    def __init__(self, message: str, line_number: int | None = None):
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


class PlanError(ReproError):
    """Plan construction or validation failed.

    Raised when a matching order is not a permutation of the pattern
    vertices, is not connected where connectivity is required, or is not a
    topological order of the dependency DAG.
    """


class VariantError(ReproError):
    """An engine was asked to solve a subgraph-matching variant it does not
    support (used mainly by the baseline matchers, mirroring Table III)."""


class LimitExceeded(ReproError):
    """A configured resource limit was hit during matching.

    Attributes
    ----------
    partial_count:
        Number of embeddings found before the limit triggered.
    """

    def __init__(self, message: str, partial_count: int = 0):
        super().__init__(message)
        self.partial_count = partial_count


class TimeLimitExceeded(LimitExceeded):
    """The wall-clock time limit was exceeded during matching."""


class EmbeddingLimitExceeded(LimitExceeded):
    """The configured maximum number of embeddings was produced.

    This is not a failure in the usual sense: the engine uses it internally
    to stop early, and the public API converts it into a truncated result.
    """
