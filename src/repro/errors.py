"""Exception hierarchy for the CSCE reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the common cases (bad graph input, bad plan, resource
limits) when they need to.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class GraphError(ReproError):
    """An operation on a :class:`~repro.graph.Graph` received invalid input.

    Examples: adding an edge whose endpoint does not exist, self-loops
    (disallowed by the paper's graph model), or duplicate parallel edges
    with the same label and direction.
    """


class FormatError(ReproError):
    """A graph file could not be parsed."""

    def __init__(self, message: str, line_number: int | None = None):
        if line_number is not None:
            message = f"line {line_number}: {message}"
        super().__init__(message)
        self.line_number = line_number


class PlanError(ReproError):
    """Plan construction or validation failed.

    Raised when a matching order is not a permutation of the pattern
    vertices, is not connected where connectivity is required, or is not a
    topological order of the dependency DAG.
    """


class PlanVerificationError(PlanError):
    """The ahead-of-execution verifier (:mod:`repro.engine.verify`)
    rejected a plan.

    Attributes
    ----------
    diagnostics:
        The list of :class:`repro.engine.verify.Diagnostic` records that
        failed — each carries a stable ``code`` (e.g. ``"dag-cycle"``,
        ``"cluster-key-unknown"``) plus a human-readable message.
    """

    def __init__(self, message: str, diagnostics: list | None = None):
        super().__init__(message)
        self.diagnostics = list(diagnostics or [])


class VariantError(ReproError):
    """An engine was asked to solve a subgraph-matching variant it does not
    support (used mainly by the baseline matchers, mirroring Table III)."""


class LimitExceeded(ReproError):
    """A configured resource limit was hit during matching.

    Attributes
    ----------
    partial_count:
        Number of embeddings found before the limit triggered.
    """

    def __init__(self, message: str, partial_count: int = 0):
        super().__init__(message)
        self.partial_count = partial_count


class TimeLimitExceeded(LimitExceeded):
    """The wall-clock time limit was exceeded during matching."""


class EmbeddingLimitExceeded(LimitExceeded):
    """The configured maximum number of embeddings was produced.

    This is not a failure in the usual sense: the engine uses it internally
    to stop early, and the public API converts it into a truncated result.
    """


class MemoryLimitExceeded(LimitExceeded):
    """The memory budget was exceeded and the degradation ladder bottomed
    out (memo eviction and memo disabling did not relieve the pressure), so
    the run was suspended with a partial count."""


class MatchCancelled(LimitExceeded):
    """The run's :class:`~repro.engine.governor.CancelToken` was tripped
    (operator interrupt, shutdown, or an injected fault) and the engine
    stopped cooperatively with a partial count."""


class StoreError(ReproError):
    """A CCSR store operation failed at runtime (as opposed to receiving
    invalid input, which is :class:`GraphError`)."""


class ClusterReadError(StoreError):
    """Reading/decompressing a cluster failed during ``ReadCSR``.

    In production this would wrap an I/O failure from a spilled cluster;
    in this repository it is raised by the fault-injection registry
    (:mod:`repro.testing.faults`) to drive the chaos suite.
    """


class CheckpointError(ReproError):
    """A checkpoint could not be read, failed validation, or does not match
    the store/pattern it is being resumed onto (e.g. the store mutated
    since the checkpoint was written)."""


class PoolError(ReproError):
    """A parallel worker pool could not complete the match: a work unit
    exhausted its retry budget after repeated worker deaths, or the
    requested execution mode is not supported across process
    boundaries (e.g. streaming enumeration with ``workers > 1``)."""


class InspectorError(ReproError):
    """A live-inspection request could not be served: unknown command,
    unreachable inspector endpoint, a control action with no target (no
    governor / no checkpoint sink), or a command that timed out waiting
    for the run to reach a safe service point."""


class WireError(InspectorError):
    """A frame on the inspector wire protocol was malformed: not valid
    JSON, not a JSON object, oversized, or carrying an unknown
    format/version/command. Subclasses :class:`InspectorError` so clients
    can catch both with one clause."""
