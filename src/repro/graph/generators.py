"""Seeded random graph generators.

These are the building blocks for the dataset stand-ins in
:mod:`repro.datasets`: each generator reproduces one *shape* of real-world
graph the paper evaluates on (power-law protein/social networks, grid-like
road networks, preferential-attachment citation networks, planted-partition
communication networks). All generators are deterministic given a seed.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.errors import GraphError
from repro.graph.model import Graph


def assign_labels_zipf(
    count: int,
    num_labels: int,
    rng: random.Random,
    exponent: float = 1.0,
) -> list[int]:
    """Draw ``count`` vertex labels from a Zipf-like distribution.

    Real label distributions are heavily skewed (a few protein families
    dominate); a Zipf draw reproduces that skew. ``num_labels == 0`` returns
    the all-zero labeling used for unlabeled graphs.
    """
    if num_labels <= 0:
        return [0] * count
    weights = [1.0 / (rank**exponent) for rank in range(1, num_labels + 1)]
    return rng.choices(range(num_labels), weights=weights, k=count)


def _dedupe_edges(
    pairs: Sequence[tuple[int, int]], directed: bool
) -> list[tuple[int, int]]:
    seen: set[tuple[int, int]] = set()
    result = []
    for a, b in pairs:
        if a == b:
            continue
        key = (a, b) if directed else (min(a, b), max(a, b))
        if key in seen:
            continue
        seen.add(key)
        result.append((a, b))
    return result


def erdos_renyi(
    num_vertices: int,
    num_edges: int,
    num_labels: int = 0,
    directed: bool = False,
    seed: int = 0,
    name: str = "erdos-renyi",
) -> Graph:
    """A G(n, m) random graph with Zipf-distributed vertex labels."""
    rng = random.Random(seed)
    max_edges = num_vertices * (num_vertices - 1)
    if not directed:
        max_edges //= 2
    if num_edges > max_edges:
        raise GraphError(f"{num_edges} edges do not fit in {num_vertices} vertices")
    edges: set[tuple[int, int]] = set()
    while len(edges) < num_edges:
        a = rng.randrange(num_vertices)
        b = rng.randrange(num_vertices)
        if a == b:
            continue
        key = (a, b) if directed else (min(a, b), max(a, b))
        edges.add(key)
    labels = assign_labels_zipf(num_vertices, num_labels, rng)
    return Graph.from_edges(
        num_vertices, sorted(edges), vertex_labels=labels, directed=directed, name=name
    )


def power_law_graph(
    num_vertices: int,
    edges_per_vertex: int,
    num_labels: int = 0,
    directed: bool = False,
    seed: int = 0,
    name: str = "power-law",
) -> Graph:
    """A preferential-attachment (Barabási–Albert style) graph.

    Produces the heavy-tailed degree distributions of protein interaction
    and social networks. When ``directed``, new vertices point *at* their
    chosen targets, giving the skewed in-degrees of citation graphs.
    """
    if edges_per_vertex < 1:
        raise GraphError("edges_per_vertex must be >= 1")
    core = edges_per_vertex + 1
    if num_vertices < core:
        raise GraphError(
            f"need at least {core} vertices for {edges_per_vertex} edges per vertex"
        )
    rng = random.Random(seed)
    pairs: list[tuple[int, int]] = []
    # Repeated endpoints make high-degree vertices proportionally likely.
    endpoint_pool: list[int] = []
    for a in range(core):
        for b in range(a + 1, core):
            pairs.append((a, b))
            endpoint_pool.extend((a, b))
    for v in range(core, num_vertices):
        targets: set[int] = set()
        while len(targets) < edges_per_vertex:
            targets.add(rng.choice(endpoint_pool))
        for t in targets:
            pairs.append((v, t))
            endpoint_pool.extend((v, t))
    labels = assign_labels_zipf(num_vertices, num_labels, rng)
    return Graph.from_edges(
        num_vertices,
        _dedupe_edges(pairs, directed),
        vertex_labels=labels,
        directed=directed,
        name=name,
    )


def grid_graph(
    rows: int,
    cols: int,
    extra_edge_prob: float = 0.05,
    num_labels: int = 0,
    seed: int = 0,
    name: str = "grid",
) -> Graph:
    """A perturbed 2-D lattice — the RoadCA stand-in.

    Average degree sits near RoadCA's 2.8 once a fraction of lattice edges
    is removed and a few diagonal shortcuts added.
    """
    rng = random.Random(seed)
    num_vertices = rows * cols

    def vid(r: int, c: int) -> int:
        return r * cols + c

    pairs: list[tuple[int, int]] = []
    for r in range(rows):
        for c in range(cols):
            # Drop ~30% of lattice edges to reach road-network sparsity.
            if c + 1 < cols and rng.random() > 0.3:
                pairs.append((vid(r, c), vid(r, c + 1)))
            if r + 1 < rows and rng.random() > 0.3:
                pairs.append((vid(r, c), vid(r + 1, c)))
            if (
                r + 1 < rows
                and c + 1 < cols
                and rng.random() < extra_edge_prob
            ):
                pairs.append((vid(r, c), vid(r + 1, c + 1)))
    labels = assign_labels_zipf(num_vertices, num_labels, rng)
    return Graph.from_edges(
        num_vertices,
        _dedupe_edges(pairs, directed=False),
        vertex_labels=labels,
        name=name,
    )


def planted_partition(
    num_communities: int,
    community_size: int,
    p_in: float,
    p_out: float,
    seed: int = 0,
    name: str = "planted-partition",
) -> tuple[Graph, list[int]]:
    """A planted-partition graph and its ground-truth community per vertex.

    Stand-in for EMAIL-EU: members of the same department email each other
    densely (``p_in``) and across departments sparsely (``p_out``). Vertex
    labels are all ``0`` — community ids are the *hidden* ground truth, so
    returning them separately keeps the clustering case study honest.
    """
    if not (0.0 <= p_out <= p_in <= 1.0):
        raise GraphError("need 0 <= p_out <= p_in <= 1")
    rng = random.Random(seed)
    num_vertices = num_communities * community_size
    membership = [v // community_size for v in range(num_vertices)]
    pairs: list[tuple[int, int]] = []
    for a in range(num_vertices):
        for b in range(a + 1, num_vertices):
            p = p_in if membership[a] == membership[b] else p_out
            if rng.random() < p:
                pairs.append((a, b))
    graph = Graph.from_edges(num_vertices, pairs, name=name)
    return graph, membership


def random_edge_labels(
    graph: Graph,
    num_edge_labels: int,
    seed: int = 0,
    name: str = "",
) -> Graph:
    """A copy of ``graph`` with random edge labels from ``0..k-1``.

    Used to exercise edge-label heterogeneity (Graphflow-style directed
    labeled workloads, Fig. 6 m/n).
    """
    if num_edge_labels < 1:
        raise GraphError("num_edge_labels must be >= 1")
    rng = random.Random(seed)
    out = Graph(name=name or graph.name)
    out.add_vertices(graph.vertex_labels)
    for e in graph.edges():
        out.add_edge(e.src, e.dst, rng.randrange(num_edge_labels), e.directed)
    return out
