"""Heterogeneous graph substrate.

This subpackage provides everything the matching engines need from a graph:
the :class:`Graph` model itself (vertex labels, edge labels, per-edge
direction), text I/O, synthetic generators standing in for the paper's
datasets, random-walk pattern sampling, and small graph algorithms
(degrees, connectivity, automorphism counting).
"""

from repro.graph.model import Edge, Graph
from repro.graph.io import load_graph, save_graph, parse_graph_text
from repro.graph.dsl import format_pattern, parse_pattern, pattern
from repro.graph.sampling import sample_pattern, pattern_density, is_dense_pattern
from repro.graph.algorithms import (
    average_degree,
    connected_components,
    count_automorphisms,
    degree_statistics,
    is_connected,
    label_frequencies,
)

__all__ = [
    "Edge",
    "Graph",
    "load_graph",
    "save_graph",
    "parse_graph_text",
    "format_pattern",
    "parse_pattern",
    "pattern",
    "sample_pattern",
    "pattern_density",
    "is_dense_pattern",
    "average_degree",
    "connected_components",
    "count_automorphisms",
    "degree_statistics",
    "is_connected",
    "label_frequencies",
]
