"""Text I/O for graphs.

The on-disk format extends the de-facto ``.graph`` format used by VEQ and
RapidMatch so that it can carry heterogeneity:

.. code-block:: text

    t <num_vertices> <num_edges>
    v <id> <label>
    e <src> <dst> [<edge_label>] [d|u]

* vertex ids must be ``0 .. n-1`` and appear in order;
* ``<edge_label>`` is optional; ``-`` (or omission) means "no label";
* the trailing ``d``/``u`` flag marks the edge directed/undirected and
  defaults to undirected;
* blank lines and lines starting with ``#`` are ignored.

Labels that look like integers are parsed as ``int``; anything else is kept
as ``str``. This matches how the public datasets ship integer labels while
letting users write symbolic ones.

Parsers run in **strict** mode by default: any malformed line raises
:class:`~repro.errors.FormatError` carrying its line number. With
``strict=False`` (for scraped or truncated real-world files), malformed
lines are skipped with a logged warning and counted on the returned
graph's ``parse_warnings`` attribute, so callers can gate on "how dirty
was this file" instead of dying on the first bad byte.
"""

from __future__ import annotations

import logging
import os
from typing import Hashable, Iterable

from repro.errors import FormatError
from repro.graph.model import Graph

logger = logging.getLogger(__name__)


def _parse_label(token: str) -> Hashable:
    if token == "-":
        return None
    try:
        return int(token)
    except ValueError:
        return token


def _format_label(label: Hashable) -> str:
    if label is None:
        return "-"
    return str(label)


def parse_graph_text(text: str, name: str = "", strict: bool = True) -> Graph:
    """Parse a graph from the text format described in the module docstring.

    In strict mode (default) any malformed line raises
    :class:`FormatError` with its line number. With ``strict=False``,
    malformed lines are skipped with a logged warning; the returned graph
    carries the skip count as ``graph.parse_warnings`` (0 for a clean
    file). Skipping a ``v`` line can cascade (later ids stop being
    consecutive) — each casualty counts as its own warning.
    """
    graph = Graph(name=name)
    declared: tuple[int, int] | None = None
    next_vertex = 0
    warnings = 0

    def problem(exc: FormatError) -> None:
        nonlocal warnings
        if strict:
            raise exc
        warnings += 1
        logger.warning("%s: skipping graph line — %s", name or "<text>", exc)

    for line_number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        fields = line.split()
        kind = fields[0]
        if kind == "t":
            if declared is not None:
                problem(FormatError("duplicate 't' header", line_number))
                continue
            if len(fields) < 3:
                problem(FormatError(
                    "'t' header needs vertex and edge counts", line_number
                ))
                continue
            try:
                declared = (int(fields[1]), int(fields[2]))
            except ValueError as exc:
                problem(FormatError(f"bad 't' header: {exc}", line_number))
        elif kind == "v":
            if len(fields) < 2:
                problem(FormatError("'v' line needs an id", line_number))
                continue
            try:
                vertex_id = int(fields[1])
            except ValueError as exc:
                problem(FormatError(f"bad vertex id: {exc}", line_number))
                continue
            if vertex_id != next_vertex:
                problem(FormatError(
                    f"vertex ids must be consecutive; expected {next_vertex},"
                    f" got {vertex_id}",
                    line_number,
                ))
                continue
            label = _parse_label(fields[2]) if len(fields) > 2 else 0
            graph.add_vertex(label if label is not None else 0)
            next_vertex += 1
        elif kind == "e":
            if len(fields) < 3:
                problem(FormatError("'e' line needs two endpoints", line_number))
                continue
            try:
                src, dst = int(fields[1]), int(fields[2])
            except ValueError as exc:
                problem(FormatError(f"bad edge endpoints: {exc}", line_number))
                continue
            label: Hashable = None
            directed = False
            for token in fields[3:]:
                if token == "d":
                    directed = True
                elif token == "u":
                    directed = False
                else:
                    label = _parse_label(token)
            try:
                graph.add_edge(src, dst, label=label, directed=directed)
            except Exception as exc:
                problem(FormatError(str(exc), line_number))
        else:
            problem(FormatError(f"unknown record type {kind!r}", line_number))
    if declared is not None:
        n, m = declared
        if graph.num_vertices != n:
            problem(FormatError(
                f"header declared {n} vertices but file has {graph.num_vertices}"
            ))
        if graph.num_edges != m:
            problem(FormatError(
                f"header declared {m} edges but file has {graph.num_edges}"
            ))
    graph.parse_warnings = warnings
    return graph


def format_graph_text(graph: Graph) -> str:
    """Serialize a graph to the text format (inverse of parse_graph_text)."""
    lines = [f"t {graph.num_vertices} {graph.num_edges}"]
    for v in graph.vertices():
        lines.append(f"v {v} {_format_label(graph.vertex_label(v))}")
    for e in graph.edges():
        flag = "d" if e.directed else "u"
        lines.append(f"e {e.src} {e.dst} {_format_label(e.label)} {flag}")
    return "\n".join(lines) + "\n"


def load_graph(
    path: str | os.PathLike, name: str = "", strict: bool = True
) -> Graph:
    """Load a graph from a file in the library text format.

    ``strict=False`` skips malformed lines instead of raising (see
    :func:`parse_graph_text`); the skip count lands on the returned
    graph's ``parse_warnings``."""
    with open(path, encoding="utf-8") as handle:
        text = handle.read()
    return parse_graph_text(
        text, name=name or os.path.basename(str(path)), strict=strict
    )


def save_graph(graph: Graph, path: str | os.PathLike) -> None:
    """Write a graph to ``path`` in the library text format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(format_graph_text(graph))


def load_edge_list(
    path: str | os.PathLike,
    directed: bool = False,
    name: str = "",
    strict: bool = True,
) -> Graph:
    """Load a SNAP-style whitespace edge list (one ``src dst`` pair per line).

    Vertex ids are compacted to ``0 .. n-1`` in first-appearance order and
    all vertices get label ``0``. Duplicate pairs and self-loops are skipped,
    matching how the paper's datasets are cleaned. ``strict=False`` skips
    malformed lines with a logged warning (count on ``parse_warnings``)
    instead of raising :class:`FormatError`.
    """
    pairs: list[tuple[int, int]] = []
    index: dict[int, int] = {}
    seen: set[tuple[int, int]] = set()
    warnings = 0
    with open(path, encoding="utf-8") as handle:
        for line_number, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            fields = line.split()
            if len(fields) < 2:
                exc = FormatError("edge list line needs two fields", line_number)
                if strict:
                    raise exc
                warnings += 1
                logger.warning("%s: skipping edge — %s", path, exc)
                continue
            try:
                a, b = int(fields[0]), int(fields[1])
            except ValueError as err:
                exc = FormatError(f"bad edge: {err}", line_number)
                if strict:
                    raise exc from err
                warnings += 1
                logger.warning("%s: skipping edge — %s", path, exc)
                continue
            if a == b:
                continue
            for v in (a, b):
                if v not in index:
                    index[v] = len(index)
            a, b = index[a], index[b]
            key = (a, b) if directed else (min(a, b), max(a, b))
            if key in seen:
                continue
            seen.add(key)
            pairs.append((a, b))
    graph = Graph.from_edges(
        len(index), pairs, directed=directed, name=name or os.path.basename(str(path))
    )
    graph.parse_warnings = warnings
    return graph


def write_edge_list(graph: Graph, path: str | os.PathLike) -> None:
    """Write the bare edge list (labels are dropped)."""
    with open(path, "w", encoding="utf-8") as handle:
        for e in graph.edges():
            handle.write(f"{e.src} {e.dst}\n")


def iter_graph_files(directory: str | os.PathLike, suffix: str = ".graph") -> Iterable[str]:
    """Yield graph file paths under ``directory`` (sorted, non-recursive)."""
    for entry in sorted(os.listdir(directory)):
        if entry.endswith(suffix):
            yield os.path.join(str(directory), entry)
