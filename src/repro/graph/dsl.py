"""A Cypher-flavored pattern DSL.

Subgraph matching is the core of graph query languages (Section II cites
M-Cypher and Kùzu); writing patterns as ASCII art is far more readable than
``add_vertex``/``add_edge`` calls:

.. code-block:: text

    (a:Person)-[:knows]-(b:Person), (a)-[:works_on]->(p:Project),
    (b)-[:works_on]->(p)

Grammar (whitespace-insensitive)::

    pattern   := clause (',' clause)*
    clause    := node (edge node)*
    node      := '(' [name] [':' label] ')'
    edge      := '-' [body] '->'          directed, left to right
               | '<-' [body] '-'          directed, right to left
               | '-' [body] '-'           undirected
    body      := '[' [name] [':' label] ']'
    name      := identifier               binds/reuses a pattern vertex
    label     := identifier | integer

* A named node (``(a)``) may appear in many clauses and always denotes the
  same pattern vertex; its label must be given at most once.
* An anonymous node (``()``) is a fresh vertex each time.
* Omitted node labels default to ``0`` (the unlabeled convention); omitted
  edge labels default to ``None``. Matching is label-exact — unlike
  Cypher, ``()`` is *not* a wildcard, so anonymous nodes in heterogeneous
  graphs should still carry a label (``(:Project)``).
* Edge-body names (``[r:x]``) are accepted for Cypher familiarity but not
  bound to anything — subgraph matching has no edge variables.

:func:`parse_pattern` returns ``(Graph, bindings)`` where ``bindings`` maps
names to vertex ids; :func:`pattern` returns just the graph.
"""

from __future__ import annotations

import re
from typing import Hashable, NamedTuple

from repro.errors import FormatError
from repro.graph.model import Graph

_TOKEN_RE = re.compile(
    r"""
    (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<lbracket>\[)
  | (?P<rbracket>\])
  | (?P<arrow_right>->)
  | (?P<arrow_left><-)
  | (?P<dash>-)
  | (?P<colon>:)
  | (?P<comma>,)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<number>\d+)
  | (?P<space>\s+)
""",
    re.VERBOSE,
)


class _Token(NamedTuple):
    kind: str
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens = []
    index = 0
    while index < len(text):
        match = _TOKEN_RE.match(text, index)
        if match is None:
            raise FormatError(
                f"unexpected character {text[index]!r} at position {index}"
            )
        kind = match.lastgroup
        if kind != "space":
            tokens.append(_Token(kind, match.group(), index))
        index = match.end()
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0
        self.graph = Graph(name="pattern")
        self.bindings: dict[str, int] = {}
        self.labeled: set[str] = set()

    # -- token helpers -------------------------------------------------
    def _peek(self) -> _Token | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise FormatError("unexpected end of pattern")
        self.index += 1
        return token

    def _expect(self, kind: str) -> _Token:
        token = self._next()
        if token.kind != kind:
            raise FormatError(
                f"expected {kind} at position {token.position},"
                f" found {token.text!r}"
            )
        return token

    def _accept(self, kind: str) -> _Token | None:
        token = self._peek()
        if token is not None and token.kind == kind:
            self.index += 1
            return token
        return None

    # -- grammar -------------------------------------------------------
    def parse(self) -> tuple[Graph, dict[str, int]]:
        if not self.tokens:
            raise FormatError("empty pattern")
        self._clause()
        while self._accept("comma"):
            self._clause()
        trailing = self._peek()
        if trailing is not None:
            raise FormatError(
                f"unexpected {trailing.text!r} at position {trailing.position}"
            )
        return self.graph, self.bindings

    def _clause(self) -> None:
        left = self._node()
        while True:
            token = self._peek()
            if token is None or token.kind == "comma":
                return
            direction, label = self._edge()
            right = self._node()
            if direction == "right":
                self._add_edge(left, right, label, directed=True)
            elif direction == "left":
                self._add_edge(right, left, label, directed=True)
            else:
                self._add_edge(left, right, label, directed=False)
            left = right

    def _node(self) -> int:
        self._expect("lparen")
        name_token = self._accept("name")
        label: Hashable | None = None
        if self._accept("colon"):
            label = self._label()
        self._expect("rparen")

        if name_token is None:
            return self.graph.add_vertex(label if label is not None else 0)
        name = name_token.text
        if name not in self.bindings:
            self.bindings[name] = self.graph.add_vertex(
                label if label is not None else 0
            )
            if label is not None:
                self.labeled.add(name)
            return self.bindings[name]
        vertex = self.bindings[name]
        if label is not None:
            if name in self.labeled and self.graph.vertex_label(vertex) != label:
                raise FormatError(
                    f"node {name!r} labeled twice with different labels"
                )
            if name not in self.labeled:
                # Late labeling: patch the earlier default.
                self.graph.vertex_labels[vertex] = label
                self.labeled.add(name)
        return vertex

    def _edge(self) -> tuple[str, Hashable]:
        """Returns (direction, edge_label); direction in right/left/none."""
        token = self._next()
        if token.kind == "arrow_left":
            label = self._edge_body()
            self._expect("dash")
            return "left", label
        if token.kind != "dash":
            raise FormatError(
                f"expected an edge at position {token.position},"
                f" found {token.text!r}"
            )
        label = self._edge_body()
        closing = self._next()
        if closing.kind == "arrow_right":
            return "right", label
        if closing.kind == "dash":
            return "none", label
        raise FormatError(
            f"unterminated edge at position {closing.position}:"
            f" expected '-' or '->', found {closing.text!r}"
        )

    def _edge_body(self) -> Hashable:
        if not self._accept("lbracket"):
            return None
        self._accept("name")  # optional edge variable, ignored
        label: Hashable = None
        if self._accept("colon"):
            label = self._label()
        self._expect("rbracket")
        return label

    def _label(self) -> Hashable:
        token = self._next()
        if token.kind == "name":
            return token.text
        if token.kind == "number":
            return int(token.text)
        raise FormatError(
            f"expected a label at position {token.position},"
            f" found {token.text!r}"
        )

    def _add_edge(
        self, src: int, dst: int, label: Hashable, directed: bool
    ) -> None:
        try:
            self.graph.add_edge(src, dst, label=label, directed=directed)
        except Exception as exc:
            raise FormatError(str(exc)) from exc


def parse_pattern(text: str) -> tuple[Graph, dict[str, int]]:
    """Parse a pattern expression; returns (graph, name -> vertex id)."""
    return _Parser(text).parse()


def pattern(text: str) -> Graph:
    """Parse a pattern expression and return just the graph."""
    graph, _ = parse_pattern(text)
    return graph


def format_pattern(graph: Graph, names: dict[int, str] | None = None) -> str:
    """Render a pattern graph back into DSL text (one clause per edge,
    isolated vertices as bare nodes). Inverse of :func:`parse_pattern` up
    to clause grouping."""
    if names is None:
        names = {v: f"v{v}" for v in graph.vertices()}

    def node(v: int) -> str:
        label = graph.vertex_label(v)
        if label == 0:
            return f"({names[v]})"
        return f"({names[v]}:{label})"

    def body(label: Hashable) -> str:
        return "" if label is None else f"[:{label}]"

    clauses = []
    touched: set[int] = set()
    for e in graph.edges():
        touched.update(e.endpoints())
        if e.directed:
            clauses.append(f"{node(e.src)}-{body(e.label)}->{node(e.dst)}")
        else:
            clauses.append(f"{node(e.src)}-{body(e.label)}-{node(e.dst)}")
    for v in graph.vertices():
        if v not in touched:
            clauses.append(node(v))
    return ", ".join(clauses)
