"""A catalog of standard benchmark patterns.

The subgraph-matching literature reuses a small zoo of structural patterns
(paths, cycles, cliques, stars, trees, and the "house"/"double-triangle"
shapes of the GraphPi/Peregrine suites). These builders construct them as
:class:`~repro.graph.Graph` objects, optionally labeled, so examples,
tests, and benchmarks share one source of truth.
"""

from __future__ import annotations

import itertools
import random
from typing import Hashable, Sequence

from repro.errors import GraphError
from repro.graph.model import Graph


def _apply_labels(
    graph: Graph, labels: Sequence[Hashable] | None, name: str
) -> Graph:
    if labels is None:
        graph.name = name
        return graph
    if len(labels) != graph.num_vertices:
        raise GraphError(
            f"{name} needs {graph.num_vertices} labels, got {len(labels)}"
        )
    out = graph.relabeled(labels, name=name)
    return out


def path(k: int, labels: Sequence[Hashable] | None = None) -> Graph:
    """The path P_k on k vertices."""
    if k < 1:
        raise GraphError("paths need at least one vertex")
    g = Graph.from_edges(k, [(i, i + 1) for i in range(k - 1)])
    return _apply_labels(g, labels, f"path-{k}")


def cycle(k: int, labels: Sequence[Hashable] | None = None) -> Graph:
    """The cycle C_k on k >= 3 vertices."""
    if k < 3:
        raise GraphError("cycles need at least three vertices")
    edges = [(i, (i + 1) % k) for i in range(k)]
    g = Graph.from_edges(k, edges)
    return _apply_labels(g, labels, f"cycle-{k}")


def clique(k: int, labels: Sequence[Hashable] | None = None) -> Graph:
    """The complete graph K_k."""
    if k < 2:
        raise GraphError("cliques need at least two vertices")
    g = Graph.from_edges(k, list(itertools.combinations(range(k), 2)))
    return _apply_labels(g, labels, f"clique-{k}")


def star(leaves: int, labels: Sequence[Hashable] | None = None) -> Graph:
    """A star: one center (vertex 0) with ``leaves`` leaves."""
    if leaves < 1:
        raise GraphError("stars need at least one leaf")
    g = Graph.from_edges(leaves + 1, [(0, i) for i in range(1, leaves + 1)])
    return _apply_labels(g, labels, f"star-{leaves}")


def complete_bipartite(
    a: int, b: int, labels: Sequence[Hashable] | None = None
) -> Graph:
    """K_{a,b}: vertices 0..a-1 on one side, a..a+b-1 on the other."""
    if a < 1 or b < 1:
        raise GraphError("both sides of a bipartite pattern need vertices")
    edges = [(i, a + j) for i in range(a) for j in range(b)]
    g = Graph.from_edges(a + b, edges)
    return _apply_labels(g, labels, f"bipartite-{a}x{b}")


def house() -> Graph:
    """The 5-vertex "house": a square with a roof triangle (GraphPi suite)."""
    return Graph.from_edges(
        5,
        [(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (1, 4)],
        name="house",
    )


def double_triangle() -> Graph:
    """Two triangles sharing an edge (the 4-vertex "diamond")."""
    return Graph.from_edges(
        4, [(0, 1), (1, 2), (0, 2), (1, 3), (2, 3)], name="double-triangle"
    )


def random_tree(
    k: int, seed: int = 0, labels: Sequence[Hashable] | None = None
) -> Graph:
    """A uniformly random labeled tree on k vertices (Prüfer sequence)."""
    if k < 1:
        raise GraphError("trees need at least one vertex")
    if k <= 2:
        g = Graph.from_edges(k, [(0, 1)] if k == 2 else [])
        return _apply_labels(g, labels, f"tree-{k}")
    rng = random.Random(seed)
    prufer = [rng.randrange(k) for _ in range(k - 2)]
    degree = [1] * k
    for v in prufer:
        degree[v] += 1
    edges = []
    import heapq

    leaves = [v for v in range(k) if degree[v] == 1]
    heapq.heapify(leaves)
    for v in prufer:
        leaf = heapq.heappop(leaves)
        edges.append((leaf, v))
        degree[leaf] -= 1  # consumed: never a leaf again
        degree[v] -= 1
        if degree[v] == 1:
            heapq.heappush(leaves, v)
    last = [v for v in range(k) if degree[v] == 1]
    edges.append((last[0], last[1]))
    g = Graph.from_edges(k, edges)
    return _apply_labels(g, labels, f"tree-{k}")


def directed_cycle(k: int, labels: Sequence[Hashable] | None = None) -> Graph:
    """The directed cycle on k >= 2 vertices."""
    if k < 2:
        raise GraphError("directed cycles need at least two vertices")
    edges = [(i, (i + 1) % k) for i in range(k)]
    g = Graph.from_edges(k, edges, directed=True)
    return _apply_labels(g, labels, f"directed-cycle-{k}")


#: The named catalog used by the CLI and benchmark helpers.
CATALOG = {
    "triangle": lambda: clique(3),
    "diamond": double_triangle,
    "house": house,
    "square": lambda: cycle(4),
    "k4": lambda: clique(4),
    "k5": lambda: clique(5),
    "path4": lambda: path(4),
    "path8": lambda: path(8),
    "star4": lambda: star(4),
    "star8": lambda: star(8),
    "cycle8": lambda: cycle(8),
    "clique8": lambda: clique(8),
    "bipartite33": lambda: complete_bipartite(3, 3),
}


def by_name(name: str) -> Graph:
    """Look up a catalog pattern by name."""
    try:
        return CATALOG[name]()
    except KeyError:
        raise GraphError(
            f"unknown pattern {name!r}; available: {', '.join(sorted(CATALOG))}"
        ) from None
