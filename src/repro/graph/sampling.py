"""Pattern sampling from data graphs.

The paper (Section VII) follows RapidMatch/VEQ/GuP: for graphs without
published pattern suites, patterns are sampled from the data graph itself so
that every pattern has at least one embedding. RapidMatch classifies a
pattern as *dense* when its average degree exceeds two and *sparse*
otherwise; we reuse that definition.
"""

from __future__ import annotations

import random
from typing import Iterable

from repro.errors import GraphError
from repro.graph.model import Edge, Graph


def pattern_density(pattern: Graph) -> float:
    """Average degree 2|E| / |V| of the pattern."""
    if pattern.num_vertices == 0:
        return 0.0
    return 2.0 * pattern.num_edges / pattern.num_vertices


def is_dense_pattern(pattern: Graph) -> bool:
    """RapidMatch's density rule: average degree greater than two."""
    return pattern_density(pattern) > 2.0


def _random_walk_vertices(
    graph: Graph, size: int, rng: random.Random, max_steps: int
) -> list[int] | None:
    """Collect ``size`` distinct vertices by a restarting random walk."""
    start = rng.randrange(graph.num_vertices)
    collected = [start]
    member = {start}
    current = start
    for _ in range(max_steps):
        if len(collected) == size:
            return collected
        neighbors = graph.neighbors(current)
        if not neighbors:
            current = rng.choice(collected)
            continue
        nxt = rng.choice(neighbors)
        if nxt not in member:
            member.add(nxt)
            collected.append(nxt)
        # Occasionally jump back to keep the sample compact, which raises
        # induced density — mirrors how RM's dense patterns are obtained.
        current = nxt if rng.random() < 0.8 else rng.choice(collected)
    return collected if len(collected) == size else None


def _sparsify(pattern: Graph, rng: random.Random) -> Graph:
    """Prune edges down to a connected pattern with average degree <= 2.

    Keeps a random spanning tree (guaranteeing connectivity) and then adds
    random extra edges while the density stays within the sparse regime.
    """
    n = pattern.num_vertices
    edges = list(pattern.edges())
    rng.shuffle(edges)
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    tree: list[Edge] = []
    extra: list[Edge] = []
    for e in edges:
        ra, rb = find(e.src), find(e.dst)
        if ra != rb:
            parent[ra] = rb
            tree.append(e)
        else:
            extra.append(e)
    budget = max(0, n - len(tree))  # keep |E| <= |V|  =>  density <= 2
    kept = tree + extra[:budget]
    sub = Graph(name=pattern.name)
    sub.add_vertices(pattern.vertex_labels)
    for e in kept:
        sub.add_edge(e.src, e.dst, e.label, e.directed)
    return sub


def sample_pattern(
    graph: Graph,
    size: int,
    rng: random.Random | int | None = None,
    style: str = "induced",
    max_tries: int = 50,
) -> Graph:
    """Sample a connected pattern with ``size`` vertices from ``graph``.

    Parameters
    ----------
    style:
        ``"induced"`` returns the vertex-induced subgraph of the sampled
        vertices (whatever density that yields); ``"dense"`` retries until
        the induced pattern is dense (average degree > 2, RM's rule);
        ``"sparse"`` prunes the induced pattern to a connected subgraph with
        average degree <= 2.
    rng:
        A :class:`random.Random`, a seed, or ``None`` for a fresh generator.

    The sampled pattern always has at least one embedding in ``graph`` under
    every variant the sampling style guarantees: ``"induced"``/``"dense"``
    patterns embed vertex-induced; ``"sparse"`` patterns embed edge-induced.
    """
    if size < 2:
        raise GraphError("patterns need at least 2 vertices")
    if size > graph.num_vertices:
        raise GraphError(
            f"cannot sample {size} vertices from a graph with {graph.num_vertices}"
        )
    if style not in ("induced", "dense", "sparse"):
        raise GraphError(f"unknown sampling style {style!r}")
    if not isinstance(rng, random.Random):
        rng = random.Random(rng)

    last: Graph | None = None
    for _ in range(max_tries):
        vertices = _random_walk_vertices(graph, size, rng, max_steps=size * 200)
        if vertices is None:
            continue
        pattern = graph.induced_subgraph(vertices, name=f"{style}-{size}")
        last = pattern
        if style == "dense":
            if is_dense_pattern(pattern):
                return pattern
            continue
        if style == "sparse":
            return _sparsify(pattern, rng)
        return pattern
    if last is None:
        raise GraphError(
            f"random walk could not collect {size} connected vertices;"
            " is the graph too fragmented?"
        )
    # Dense requested but never achieved: fall back to the densest sample.
    return last


def sample_pattern_suite(
    graph: Graph,
    sizes: Iterable[int],
    per_size: int = 10,
    style: str = "induced",
    seed: int = 0,
) -> dict[int, list[Graph]]:
    """Sample ``per_size`` patterns for each size (the paper averages 10)."""
    rng = random.Random(seed)
    suite: dict[int, list[Graph]] = {}
    for size in sizes:
        suite[size] = [
            sample_pattern(graph, size, rng=rng, style=style) for _ in range(per_size)
        ]
    return suite
