"""The heterogeneous graph model.

The paper's graph definition (Section II): a graph is a set of vertices and
edges with label functions on both; an undirected edge ``v_a - v_b`` behaves
like the pair of directed edges ``(v_a, v_b)`` and ``(v_b, v_a)``; graphs may
mix directed and undirected edges; self-loops are disallowed. A graph with
more than one vertex label or any edge label is *heterogeneous*.

Vertices are dense integers ``0 .. n-1`` so that downstream structures (CCSR
arrays) can index them directly. Labels are arbitrary hashable values;
``0`` is the conventional label of "unlabeled" graphs.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, NamedTuple, Sequence

from repro.errors import GraphError


class Edge(NamedTuple):
    """One edge of a :class:`Graph`.

    ``directed`` distinguishes ``src -> dst`` from ``src - dst``. For an
    undirected edge the (src, dst) order is storage order only and carries
    no meaning.
    """

    src: int
    dst: int
    label: Hashable
    directed: bool

    def endpoints(self) -> tuple[int, int]:
        return self.src, self.dst

    def reversed(self) -> "Edge":
        return Edge(self.dst, self.src, self.label, self.directed)


class Graph:
    """A heterogeneous graph with labeled vertices and labeled, optionally
    directed edges.

    The class is a construction-time container: the matching engines convert
    data graphs into :class:`~repro.ccsr.CCSRStore` and never touch ``Graph``
    again, while small pattern graphs are used directly through the adjacency
    accessors below.

    Parameters
    ----------
    name:
        Optional human-readable name, shown in dataset tables.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._vertex_labels: list[Hashable] = []
        self._edges: list[Edge] = []
        # (src, dst, label, directed) for directed edges and both
        # orientations of undirected edges; used for duplicate detection and
        # has_edge queries.
        self._edge_keys: set[tuple[int, int, Hashable, bool]] = set()
        # v -> sorted later; built lazily, invalidated on mutation.
        self._out: list[list[int]] | None = None
        self._in: list[list[int]] | None = None
        self._nbr: list[list[int]] | None = None
        self._incident: list[list[int]] | None = None  # edge indices per vertex

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_vertex(self, label: Hashable = 0) -> int:
        """Append a vertex with the given label and return its id."""
        self._vertex_labels.append(label)
        self._invalidate()
        return len(self._vertex_labels) - 1

    def add_vertices(self, labels: Iterable[Hashable]) -> list[int]:
        """Append one vertex per label; return the new vertex ids."""
        start = len(self._vertex_labels)
        self._vertex_labels.extend(labels)
        self._invalidate()
        return list(range(start, len(self._vertex_labels)))

    def add_edge(
        self,
        src: int,
        dst: int,
        label: Hashable = None,
        directed: bool = False,
    ) -> Edge:
        """Add an edge between existing vertices.

        Raises
        ------
        GraphError
            If an endpoint does not exist, the edge is a self-loop, or an
            identical edge (same endpoints, label, and direction) already
            exists.
        """
        n = len(self._vertex_labels)
        if not (0 <= src < n and 0 <= dst < n):
            raise GraphError(f"edge ({src}, {dst}) references a missing vertex")
        if src == dst:
            raise GraphError(f"self-loop on vertex {src} is not allowed")
        key = (src, dst, label, directed)
        if key in self._edge_keys:
            raise GraphError(f"duplicate edge {key}")
        if not directed and (dst, src, label, False) in self._edge_keys:
            raise GraphError(f"duplicate undirected edge ({src}, {dst}, {label!r})")
        edge = Edge(src, dst, label, directed)
        self._edges.append(edge)
        self._edge_keys.add(key)
        if not directed:
            self._edge_keys.add((dst, src, label, False))
        self._invalidate()
        return edge

    @classmethod
    def from_edges(
        cls,
        num_vertices: int,
        edges: Iterable[tuple[int, int]],
        vertex_labels: Sequence[Hashable] | None = None,
        edge_labels: Sequence[Hashable] | None = None,
        directed: bool = False,
        name: str = "",
    ) -> "Graph":
        """Build a graph from an edge list in one call.

        ``vertex_labels`` defaults to all-``0``; ``edge_labels`` defaults to
        all-``None``; ``directed`` applies to every edge.
        """
        graph = cls(name=name)
        if vertex_labels is None:
            graph.add_vertices([0] * num_vertices)
        else:
            if len(vertex_labels) != num_vertices:
                raise GraphError(
                    f"{len(vertex_labels)} labels given for {num_vertices} vertices"
                )
            graph.add_vertices(vertex_labels)
        edges = list(edges)
        if edge_labels is None:
            edge_labels = [None] * len(edges)
        elif len(edge_labels) != len(edges):
            raise GraphError(
                f"{len(edge_labels)} edge labels given for {len(edges)} edges"
            )
        for (src, dst), label in zip(edges, edge_labels):
            graph.add_edge(src, dst, label=label, directed=directed)
        return graph

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self._vertex_labels)

    @property
    def num_edges(self) -> int:
        """Number of edges; an undirected edge counts once (Table IV)."""
        return len(self._edges)

    def vertices(self) -> range:
        return range(len(self._vertex_labels))

    def edges(self) -> Iterator[Edge]:
        return iter(self._edges)

    def vertex_label(self, v: int) -> Hashable:
        return self._vertex_labels[v]

    @property
    def vertex_labels(self) -> list[Hashable]:
        """The label list, indexable by vertex id (read-only by convention)."""
        return self._vertex_labels

    def distinct_vertex_labels(self) -> set[Hashable]:
        return set(self._vertex_labels)

    def distinct_edge_labels(self) -> set[Hashable]:
        return {e.label for e in self._edges}

    @property
    def is_directed(self) -> bool:
        """True if any edge is directed (the paper's graph-level notion)."""
        return any(e.directed for e in self._edges)

    @property
    def is_heterogeneous(self) -> bool:
        """True when l_v + l_e > 2 (Section II)."""
        return len(self.distinct_vertex_labels()) + len(self.distinct_edge_labels()) > 2

    def has_edge(self, src: int, dst: int) -> bool:
        """True if some edge allows travel ``src -> dst`` (any label)."""
        self._build_adjacency()
        return dst in self._out_sets[src]

    def edges_between(self, a: int, b: int) -> list[Edge]:
        """All edges connecting ``a`` and ``b`` in either direction."""
        result = []
        for idx in self._incident_edges(a):
            e = self._edges[idx]
            if (e.src, e.dst) in ((a, b), (b, a)):
                result.append(e)
        return result

    # ------------------------------------------------------------------
    # Adjacency
    # ------------------------------------------------------------------
    def out_neighbors(self, v: int) -> list[int]:
        """Vertices reachable from ``v`` over one edge (undirected counts)."""
        self._build_adjacency()
        return self._out[v]

    def in_neighbors(self, v: int) -> list[int]:
        """Vertices with an edge into ``v`` (undirected counts)."""
        self._build_adjacency()
        return self._in[v]

    def neighbors(self, v: int) -> list[int]:
        """All distinct vertices adjacent to ``v`` in either direction."""
        self._build_adjacency()
        return self._nbr[v]

    def degree(self, v: int) -> int:
        """Number of distinct neighbor vertices (paper's d(v))."""
        return len(self.neighbors(v))

    def in_degree(self, v: int) -> int:
        return len(self.in_neighbors(v))

    def out_degree(self, v: int) -> int:
        return len(self.out_neighbors(v))

    def incident_edges(self, v: int) -> list[Edge]:
        """All edges touching ``v``."""
        return [self._edges[i] for i in self._incident_edges(v)]

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def induced_subgraph(self, vertices: Sequence[int], name: str = "") -> "Graph":
        """The vertex-induced subgraph G[vertices].

        Vertices are renumbered ``0 .. len(vertices)-1`` in the order given.
        """
        index = {v: i for i, v in enumerate(vertices)}
        if len(index) != len(vertices):
            raise GraphError("duplicate vertices in induced_subgraph")
        sub = Graph(name=name)
        sub.add_vertices(self._vertex_labels[v] for v in vertices)
        for e in self._edges:
            if e.src in index and e.dst in index:
                sub.add_edge(index[e.src], index[e.dst], e.label, e.directed)
        return sub

    def edge_subgraph(self, edges: Sequence[Edge], name: str = "") -> "Graph":
        """The edge-induced subgraph over the given edges.

        Vertices are renumbered in first-appearance order.
        """
        index: dict[int, int] = {}
        for e in edges:
            for v in e.endpoints():
                if v not in index:
                    index[v] = len(index)
        order = sorted(index, key=index.get)
        sub = Graph(name=name)
        sub.add_vertices(self._vertex_labels[v] for v in order)
        for e in edges:
            sub.add_edge(index[e.src], index[e.dst], e.label, e.directed)
        return sub

    def relabeled(self, labels: Sequence[Hashable], name: str = "") -> "Graph":
        """A copy of this graph with new vertex labels (Fig. 11 sweeps)."""
        if len(labels) != self.num_vertices:
            raise GraphError("relabeled() needs one label per vertex")
        out = Graph(name=name or self.name)
        out.add_vertices(labels)
        for e in self._edges:
            out.add_edge(e.src, e.dst, e.label, e.directed)
        return out

    def copy(self) -> "Graph":
        out = Graph(name=self.name)
        out.add_vertices(self._vertex_labels)
        for e in self._edges:
            out.add_edge(e.src, e.dst, e.label, e.directed)
        return out

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _invalidate(self) -> None:
        self._out = None
        self._in = None
        self._nbr = None
        self._incident = None

    def _build_adjacency(self) -> None:
        if self._out is not None:
            return
        n = len(self._vertex_labels)
        out_sets: list[set[int]] = [set() for _ in range(n)]
        in_sets: list[set[int]] = [set() for _ in range(n)]
        incident: list[list[int]] = [[] for _ in range(n)]
        for idx, e in enumerate(self._edges):
            out_sets[e.src].add(e.dst)
            in_sets[e.dst].add(e.src)
            incident[e.src].append(idx)
            incident[e.dst].append(idx)
            if not e.directed:
                out_sets[e.dst].add(e.src)
                in_sets[e.src].add(e.dst)
        self._out_sets = out_sets
        self._out = [sorted(s) for s in out_sets]
        self._in = [sorted(s) for s in in_sets]
        self._nbr = [sorted(o | i) for o, i in zip(out_sets, in_sets)]
        self._incident = incident

    def _incident_edges(self, v: int) -> list[int]:
        self._build_adjacency()
        return self._incident[v]

    # ------------------------------------------------------------------
    # Dunder conveniences
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self.num_vertices

    def __repr__(self) -> str:
        tag = f" {self.name!r}" if self.name else ""
        return (
            f"<Graph{tag} |V|={self.num_vertices} |E|={self.num_edges}"
            f" directed={self.is_directed}>"
        )

    def __eq__(self, other: object) -> bool:
        """Structural equality: same labels and the same edge set.

        Undirected edges compare orientation-insensitively. This is identity
        up to nothing — not isomorphism — and exists mainly for I/O
        round-trip tests.
        """
        if not isinstance(other, Graph):
            return NotImplemented
        if self._vertex_labels != other._vertex_labels:
            return False
        return self._canonical_edge_set() == other._canonical_edge_set()

    def __hash__(self) -> int:  # graphs are mutable
        raise TypeError("Graph objects are unhashable")

    def fingerprint(self) -> tuple:
        """A hashable structural identity: labels plus canonical edges.

        Graphs themselves are mutable and unhashable; the fingerprint is a
        snapshot usable as a dict key — e.g. the plan-cache key of
        :class:`repro.engine.MatchSession`. Equal fingerprints mean equal
        graphs in the :meth:`__eq__` sense (structural, not isomorphic).
        """
        return (
            tuple(self._vertex_labels),
            frozenset(self._canonical_edge_set()),
        )

    def _canonical_edge_set(self) -> set[tuple]:
        canon = set()
        for e in self._edges:
            if e.directed:
                canon.add((e.src, e.dst, e.label, True))
            else:
                a, b = sorted((e.src, e.dst))
                canon.add((a, b, e.label, False))
        return canon
