"""Small graph algorithms used across the library.

These operate on :class:`~repro.graph.Graph` directly and are intended for
pattern-sized graphs or one-off dataset statistics — the hot matching path
never goes through this module.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass
from typing import Iterator

from repro.graph.model import Graph


@dataclass(frozen=True)
class DegreeStatistics:
    """The per-graph degree columns of Table IV."""

    average_degree: float
    max_in_degree: int
    max_out_degree: int
    max_degree: int


def degree_statistics(graph: Graph) -> DegreeStatistics:
    """Compute the degree statistics the paper reports per dataset."""
    n = graph.num_vertices
    if n == 0:
        return DegreeStatistics(0.0, 0, 0, 0)
    degrees = [graph.degree(v) for v in graph.vertices()]
    return DegreeStatistics(
        average_degree=sum(degrees) / n,
        max_in_degree=max(graph.in_degree(v) for v in graph.vertices()),
        max_out_degree=max(graph.out_degree(v) for v in graph.vertices()),
        max_degree=max(degrees),
    )


def average_degree(graph: Graph) -> float:
    """Average number of distinct neighbors per vertex."""
    if graph.num_vertices == 0:
        return 0.0
    return sum(graph.degree(v) for v in graph.vertices()) / graph.num_vertices


def label_frequencies(graph: Graph) -> Counter:
    """How many vertices carry each vertex label."""
    return Counter(graph.vertex_labels)


def connected_components(graph: Graph) -> list[list[int]]:
    """Connected components of the undirected view, as sorted vertex lists."""
    seen = [False] * graph.num_vertices
    components: list[list[int]] = []
    for start in graph.vertices():
        if seen[start]:
            continue
        queue = deque([start])
        seen[start] = True
        component = []
        while queue:
            v = queue.popleft()
            component.append(v)
            for w in graph.neighbors(v):
                if not seen[w]:
                    seen[w] = True
                    queue.append(w)
        components.append(sorted(component))
    return components


def is_connected(graph: Graph) -> bool:
    """True when the undirected view has exactly one component (or is empty)."""
    if graph.num_vertices == 0:
        return True
    return len(connected_components(graph)) == 1


def _edge_descriptor(graph: Graph, a: int, b: int) -> frozenset | None:
    """A direction/label-exact summary of the edges between ``a`` and ``b``.

    Two vertex pairs are interchangeable under isomorphism iff their
    descriptors are equal. ``None`` means "no edge".
    """
    edges = graph.edges_between(a, b)
    if not edges:
        return None
    summary = []
    for e in edges:
        if e.directed:
            orient = "fwd" if (e.src, e.dst) == (a, b) else "rev"
        else:
            orient = "und"
        summary.append((orient, e.label))
    return frozenset(Counter(summary).items())


def iter_automorphisms(graph: Graph) -> Iterator[dict[int, int]]:
    """Yield every automorphism of ``graph`` as a vertex mapping.

    Exact on labels, edge labels, and direction. Exponential in the worst
    case — callers use it on pattern-sized graphs only (the symmetry-breaking
    baseline and Fig. 14).
    """
    n = graph.num_vertices
    order = sorted(graph.vertices(), key=lambda v: -graph.degree(v))
    signature = [
        (graph.vertex_label(v), graph.degree(v), graph.in_degree(v), graph.out_degree(v))
        for v in graph.vertices()
    ]

    mapping: dict[int, int] = {}
    used = [False] * n

    def backtrack(position: int) -> Iterator[dict[int, int]]:
        if position == n:
            yield dict(mapping)
            return
        u = order[position]
        for v in graph.vertices():
            if used[v] or signature[u] != signature[v]:
                continue
            ok = True
            for prior in order[:position]:
                if _edge_descriptor(graph, u, prior) != _edge_descriptor(
                    graph, v, mapping[prior]
                ):
                    ok = False
                    break
            if not ok:
                continue
            mapping[u] = v
            used[v] = True
            yield from backtrack(position + 1)
            used[v] = False
            del mapping[u]

    yield from backtrack(0)


def count_automorphisms(graph: Graph) -> int:
    """The size of the automorphism group of ``graph``."""
    return sum(1 for _ in iter_automorphisms(graph))
