#!/usr/bin/env python
"""Layering gate: the engine must not depend on the CLI or bench layers.

``repro.engine`` is the execution core that ``repro.core``, the baselines,
the bench harness, and the CLI all sit on. A dependency in the other
direction (engine -> cli / engine -> bench) would be an import cycle
waiting to happen and would drag argparse/IO machinery into every library
import.

Two checks, both cheap enough for CI's lint job:

1. **Dynamic**: import ``repro.engine`` in a fresh interpreter and assert
   that neither ``repro.cli`` nor ``repro.bench`` was pulled into
   ``sys.modules`` transitively.
2. **Static**: grep the engine sources for ``repro.cli`` / ``repro.bench``
   imports, which also catches lazy (function-local) imports the dynamic
   check cannot see.

Exit status 0 when clean, 1 with a diagnostic per violation otherwise.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
ENGINE_DIR = REPO / "src" / "repro" / "engine"
FORBIDDEN = ("repro.cli", "repro.bench")

_IMPORT_RE = re.compile(
    r"^\s*(?:from\s+(repro\.(?:cli|bench)\S*)\s+import|"
    r"import\s+(repro\.(?:cli|bench)\S*))",
    re.MULTILINE,
)


def static_check() -> list[str]:
    problems = []
    for path in sorted(ENGINE_DIR.rglob("*.py")):
        text = path.read_text(encoding="utf-8")
        for match in _IMPORT_RE.finditer(text):
            module = match.group(1) or match.group(2)
            line = text.count("\n", 0, match.start()) + 1
            problems.append(
                f"{path.relative_to(REPO)}:{line}: imports {module}"
            )
    return problems


def dynamic_check() -> list[str]:
    probe = (
        "import sys; import repro.engine; "
        "bad = [m for m in sys.modules "
        f"if m == 'repro.cli' or m.startswith('repro.bench')]; "
        "print('\\n'.join(bad)); sys.exit(1 if bad else 0)"
    )
    result = subprocess.run(
        [sys.executable, "-c", probe],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO / "src")},
    )
    if result.returncode == 0:
        return []
    loaded = [m for m in result.stdout.splitlines() if m]
    if loaded:
        return [
            f"importing repro.engine transitively loaded {module}"
            for module in loaded
        ]
    return [f"probe interpreter failed:\n{result.stderr.strip()}"]


def main() -> int:
    problems = static_check() + dynamic_check()
    if problems:
        print("layering violations (engine must not import cli/bench):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print("layering OK: repro.engine is independent of repro.cli/repro.bench")
    return 0


if __name__ == "__main__":
    sys.exit(main())
