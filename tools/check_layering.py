#!/usr/bin/env python
"""Layering gate: core library layers must not depend on the CLI or bench.

``repro.engine`` is the execution core that ``repro.core``, the baselines,
the bench harness, and the CLI all sit on; ``repro.testing`` (the
fault-injection registry) is imported from engine/ccsr hot paths. A
dependency in the other direction (engine/testing -> cli / bench) would be
an import cycle waiting to happen and would drag argparse/IO machinery
into every library import.

Two checks per guarded package, both cheap enough for CI's lint job:

1. **Dynamic**: import the package in a fresh interpreter and assert that
   neither ``repro.cli`` nor ``repro.bench`` was pulled into
   ``sys.modules`` transitively.
2. **Static**: grep the package sources for ``repro.cli`` / ``repro.bench``
   imports, which also catches lazy (function-local) imports the dynamic
   check cannot see.

Exit status 0 when clean, 1 with a diagnostic per violation otherwise.
"""

from __future__ import annotations

import re
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Packages that must stay independent of the CLI/bench layers.
GUARDED = ("repro.engine", "repro.testing")
FORBIDDEN = ("repro.cli", "repro.bench")

_IMPORT_RE = re.compile(
    r"^\s*(?:from\s+(repro\.(?:cli|bench)\S*)\s+import|"
    r"import\s+(repro\.(?:cli|bench)\S*))",
    re.MULTILINE,
)


def _package_dir(package: str) -> Path:
    return REPO / "src" / Path(*package.split("."))


def static_check(package: str) -> list[str]:
    problems = []
    for path in sorted(_package_dir(package).rglob("*.py")):
        text = path.read_text(encoding="utf-8")
        for match in _IMPORT_RE.finditer(text):
            module = match.group(1) or match.group(2)
            line = text.count("\n", 0, match.start()) + 1
            problems.append(
                f"{path.relative_to(REPO)}:{line}: imports {module}"
            )
    return problems


def dynamic_check(package: str) -> list[str]:
    probe = (
        f"import sys; import {package}; "
        "bad = [m for m in sys.modules "
        "if m == 'repro.cli' or m.startswith('repro.bench')]; "
        "print('\\n'.join(bad)); sys.exit(1 if bad else 0)"
    )
    result = subprocess.run(
        [sys.executable, "-c", probe],
        capture_output=True,
        text=True,
        env={"PYTHONPATH": str(REPO / "src")},
    )
    if result.returncode == 0:
        return []
    loaded = [m for m in result.stdout.splitlines() if m]
    if loaded:
        return [
            f"importing {package} transitively loaded {module}"
            for module in loaded
        ]
    return [f"probe interpreter failed:\n{result.stderr.strip()}"]


def main() -> int:
    problems = []
    for package in GUARDED:
        problems += static_check(package)
        problems += dynamic_check(package)
    if problems:
        print(
            "layering violations"
            f" ({'/'.join(GUARDED)} must not import cli/bench):"
        )
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(
        "layering OK: "
        + " and ".join(GUARDED)
        + " are independent of repro.cli/repro.bench"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
