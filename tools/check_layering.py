#!/usr/bin/env python
"""Layering gate — compatibility shim.

The check lives in ``tools/reprolint/passes/layering.py`` now (with the
rest of the repository's invariant passes); this wrapper keeps the old
entry point working for scripts and muscle memory::

    python tools/check_layering.py
    python -m tools.reprolint --select layering   # equivalent

The move also fixed the original script's subprocess environment: the
import probe used to run with ``env={"PYTHONPATH": ...}``, wiping the
inherited environment (``PATH``, any pre-set ``PYTHONPATH``); the pass
extends ``os.environ`` instead.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def main() -> int:
    if str(REPO) not in sys.path:
        sys.path.insert(0, str(REPO))
    from tools.reprolint.__main__ import main as reprolint_main

    return reprolint_main(["--select", "layering"])


if __name__ == "__main__":
    sys.exit(main())
