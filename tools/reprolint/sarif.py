"""SARIF 2.1.0 output for reprolint violations.

``python -m tools.reprolint --sarif`` emits one SARIF log so CI can
upload lint results to GitHub code scanning and violations render as
inline annotations on pull requests. One rule per registered pass (the
pass catalog *is* the rule catalog), one result per violation, every
result ``error``-level — reprolint has no warnings, a violated invariant
fails the build.
"""

from __future__ import annotations

from tools.reprolint import LintPass, Violation

SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def sarif_report(
    registry: dict[str, LintPass], violations: list[Violation]
) -> dict:
    """Build the SARIF log object for one lint run."""
    rules = [
        {
            "id": name,
            "name": name,
            "shortDescription": {"text": lint_pass.description},
            "defaultConfiguration": {"level": "error"},
        }
        for name, lint_pass in registry.items()
    ]
    results = [
        {
            "ruleId": violation.pass_name,
            "level": "error",
            "message": {"text": violation.message},
            "locations": [
                {
                    "physicalLocation": {
                        "artifactLocation": {
                            "uri": violation.path.replace("\\", "/"),
                            "uriBaseId": "%SRCROOT%",
                        },
                        "region": {"startLine": max(1, violation.line)},
                    }
                }
            ],
        }
        for violation in violations
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": "2.1.0",
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "rules": rules,
                    }
                },
                "results": results,
            }
        ],
    }
