"""Inspector-commands pass: command-name literals must be registered.

The live-inspection wire protocol (:mod:`repro.obs.wire`) is string-keyed
the same way the counters/metrics/events contracts are: clients send a
command name, the server dispatches it through
``MatchInspector.HANDLERS``, and the docs/CLI render from the same
registry. A typo'd command produces a runtime "unknown command" error at
attach time — on a live production run, the worst moment to find out.
This pass closes the loop ahead of execution: every string literal passed
as the first argument of a ``.request()`` / ``.handle()`` call, and every
string key of a dict literal assigned to a name ``HANDLERS``, must be a
member of ``repro.obs.wire.KNOWN_COMMANDS``. Adding a genuinely new
command means adding it to the registry — which is the point.
"""

from __future__ import annotations

import ast
from pathlib import Path

from tools.reprolint import LintContext, LintPass, Violation, register

COMMAND_METHODS = ("request", "handle")
HANDLERS_NAME = "HANDLERS"


def _registry(ctx: LintContext) -> frozenset:
    ctx.ensure_importable()
    from repro.obs.wire import KNOWN_COMMANDS

    return frozenset(KNOWN_COMMANDS)


def _literal_first_arg(node: ast.Call) -> str | None:
    if node.args and isinstance(node.args[0], ast.Constant) \
            and isinstance(node.args[0].value, str):
        return node.args[0].value
    return None


def _handlers_dicts(node: ast.AST) -> list[ast.Dict]:
    """Dict literals assigned (or annotated-assigned) to ``HANDLERS``."""
    targets: list[ast.expr] = []
    value: ast.expr | None = None
    if isinstance(node, ast.Assign):
        targets, value = node.targets, node.value
    elif isinstance(node, ast.AnnAssign) and node.value is not None:
        targets, value = [node.target], node.value
    if not isinstance(value, ast.Dict):
        return []
    for target in targets:
        name = target.id if isinstance(target, ast.Name) else (
            target.attr if isinstance(target, ast.Attribute) else None
        )
        if name == HANDLERS_NAME:
            return [value]
    return []


@register
class InspectorCommandsPass(LintPass):
    name = "inspector_commands"
    description = (
        "inspector command literals passed to .request()/.handle() and"
        " the string keys of HANDLERS dict literals must be in"
        " KNOWN_COMMANDS (repro.obs.wire)"
    )

    def run(self, ctx: LintContext) -> list[Violation]:
        known = _registry(ctx)
        violations: list[Violation] = []
        for path in ctx.files("src/repro"):
            violations.extend(self._check_file(ctx, path, known))
        return violations

    def _check_file(
        self, ctx: LintContext, path: Path, known: frozenset
    ) -> list[Violation]:
        violations = []
        for node in ast.walk(ctx.tree(path)):
            if isinstance(node, ast.Call) \
                    and isinstance(node.func, ast.Attribute) \
                    and node.func.attr in COMMAND_METHODS:
                literal = _literal_first_arg(node)
                if literal is not None and literal not in known:
                    violations.append(self.violation(
                        ctx, path, node.lineno,
                        f"inspector command {literal!r} is not in"
                        " KNOWN_COMMANDS (repro.obs.wire) — register it"
                        " or fix the typo",
                    ))
                continue
            for mapping in _handlers_dicts(node):
                for key in mapping.keys:
                    if isinstance(key, ast.Constant) \
                            and isinstance(key.value, str) \
                            and key.value not in known:
                        violations.append(self.violation(
                            ctx, path, key.lineno,
                            f"HANDLERS key {key.value!r} is not in"
                            " KNOWN_COMMANDS (repro.obs.wire) — register"
                            " it or fix the typo",
                        ))
        return violations
