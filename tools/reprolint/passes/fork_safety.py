"""Fork-safety pass: worker entrypoint modules carry no module-level
mutable registries.

The worker pool (:mod:`repro.engine.pool`) forks child processes whose
entrypoints import :mod:`repro.engine.pool` and
:mod:`repro.engine.workunit`. Any module-level mutable container in those
files is a trap twice over:

* state mutated in the parent **after** fork is silently invisible to the
  children (and vice versa) — counts diverge with no error;
* state mutated at import time makes a worker's behavior depend on import
  order, which differs between the spawn and fork start methods.

Constants must therefore be immutable (tuples, frozensets, numbers,
strings) in these scopes. The check flags every module-level assignment
whose right-hand side is a mutable-container display (``[...]``,
``{...}``, a comprehension) or a call to a known mutable constructor
(``dict``/``list``/``set``/``bytearray``/``deque``/``defaultdict``/
``Counter``/``OrderedDict``). ``logging.getLogger`` and friends are fine:
the allowlist below names the idiomatic module singletons whose sharing
semantics are deliberate.
"""

from __future__ import annotations

import ast
from pathlib import Path

from tools.reprolint import LintContext, LintPass, Violation, register

#: The worker-entrypoint modules that must stay free of module-level
#: mutable state.
SCOPES = (
    "src/repro/engine/pool.py",
    "src/repro/engine/workunit.py",
)

#: Module-level names allowed to hold mutable objects: idiomatic
#: singletons whose cross-process sharing semantics are deliberate and
#: documented where they are defined.
ALLOWED_NAMES = frozenset({"logger"})

#: Constructors that produce mutable containers.
MUTABLE_CALLS = frozenset({
    "dict", "list", "set", "bytearray",
    "deque", "defaultdict", "Counter", "OrderedDict",
})

MUTABLE_DISPLAYS = (
    ast.List, ast.Dict, ast.Set,
    ast.ListComp, ast.DictComp, ast.SetComp,
)


def _is_mutable_value(node: ast.AST) -> bool:
    if isinstance(node, MUTABLE_DISPLAYS):
        return True
    if isinstance(node, ast.Call):
        target = node.func
        name = (
            target.id if isinstance(target, ast.Name)
            else target.attr if isinstance(target, ast.Attribute)
            else None
        )
        return name in MUTABLE_CALLS
    return False


def _target_names(node: ast.AST) -> list[str]:
    if isinstance(node, ast.Name):
        return [node.id]
    if isinstance(node, (ast.Tuple, ast.List)):
        names: list[str] = []
        for element in node.elts:
            names.extend(_target_names(element))
        return names
    return []


@register
class ForkSafetyPass(LintPass):
    name = "fork_safety"
    description = (
        "worker entrypoint modules (engine/pool.py, engine/workunit.py)"
        " must not define module-level mutable registries — fork shares"
        " them by copy, so post-fork mutations silently diverge"
    )

    def run(self, ctx: LintContext) -> list[Violation]:
        violations: list[Violation] = []
        for path in ctx.files(*SCOPES):
            violations.extend(self._check_file(ctx, path))
        return violations

    def _check_file(self, ctx: LintContext, path: Path) -> list[Violation]:
        violations = []
        for node in ctx.tree(path).body:
            if isinstance(node, ast.Assign):
                targets = node.targets
                value = node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets = [node.target]
                value = node.value
            else:
                continue
            names = []
            for target in targets:
                if (
                    isinstance(target, (ast.Tuple, ast.List))
                    and isinstance(value, (ast.Tuple, ast.List))
                    and len(target.elts) == len(value.elts)
                ):
                    # Paired unpacking: flag only the names bound to a
                    # mutable element.
                    for t, v in zip(target.elts, value.elts):
                        if _is_mutable_value(v):
                            names.extend(_target_names(t))
                elif _is_mutable_value(value):
                    names.extend(_target_names(target))
            names = [n for n in names if n not in ALLOWED_NAMES]
            for name in names:
                violations.append(self.violation(
                    ctx, path, node.lineno,
                    f"module-level mutable {name!r} in a fork entrypoint —"
                    " parent-side mutations after fork never reach the"
                    " workers; use an immutable constant (tuple/frozenset)"
                    " or pass state explicitly through the work unit",
                ))
        return violations
