"""Message-protocol pass: the pool's parent↔worker kinds form a closed set.

The pool's exactness argument ("merged counts are correct for any prefix
of a worker's message stream") only holds for messages the parent
actually routes: an unregistered kind would fall through
``_PoolDriver._handle``'s dispatch and silently drop a progress delta.
So ``engine/pool.py`` declares ``MESSAGE_KINDS`` and this pass checks,
purely from the file's AST:

* every send site — ``<queue>.put(("kind", ...))`` with a literal string
  head — uses a registered kind (tuples headed by a non-literal, like the
  task queue's ``(uid, payload, cap)`` dispatch, are not protocol sends);
* a dispatcher exists: a function containing ``kind = <param>[0]``;
* every kind literal the dispatcher compares against is registered (no
  dead or typo'd branches);
* the dispatch is exhaustive — every registered kind appears in a
  comparison, so adding a kind without routing it fails lint.
"""

from __future__ import annotations

import ast
from pathlib import Path

from tools.reprolint import LintContext, LintPass, Violation, register

SCOPE = "src/repro/engine/pool.py"

REGISTRY_NAME = "MESSAGE_KINDS"


def _registry(tree: ast.Module) -> tuple[tuple[str, ...], int] | None:
    for node in tree.body:
        targets = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if not targets or not isinstance(value, (ast.Tuple, ast.List)):
            continue
        for target in targets:
            if isinstance(target, ast.Name) and target.id == REGISTRY_NAME:
                kinds = tuple(
                    e.value for e in value.elts
                    if isinstance(e, ast.Constant) and isinstance(e.value, str)
                )
                return kinds, node.lineno
    return None


def _send_sites(tree: ast.Module) -> list[tuple[int, str]]:
    """(line, kind) of every ``<expr>.put(("kind", ...))`` call."""
    sites: list[tuple[int, str]] = []
    for node in ast.walk(tree):
        if not (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "put"
                and node.args
                and isinstance(node.args[0], ast.Tuple)
                and node.args[0].elts):
            continue
        head = node.args[0].elts[0]
        if isinstance(head, ast.Constant) and isinstance(head.value, str):
            sites.append((node.lineno, head.value))
    return sites


def _dispatchers(tree: ast.Module) -> list[tuple[ast.FunctionDef, str, int]]:
    """Functions containing ``<var> = <param>[0]``: (def, var, line)."""
    found = []
    for node in ast.walk(tree):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        params = {a.arg for a in node.args.posonlyargs + node.args.args}
        for child in ast.walk(node):
            if (isinstance(child, ast.Assign)
                    and len(child.targets) == 1
                    and isinstance(child.targets[0], ast.Name)
                    and isinstance(child.value, ast.Subscript)
                    and isinstance(child.value.value, ast.Name)
                    and child.value.value.id in params
                    and isinstance(child.value.slice, ast.Constant)
                    and child.value.slice.value == 0):
                found.append((node, child.targets[0].id, child.lineno))
                break
    return found


def _compared_kinds(func: ast.AST, var: str) -> set[str]:
    """String literals ``var`` is compared against (== or ``in`` tuple)."""
    kinds: set[str] = set()
    for node in ast.walk(func):
        if not (isinstance(node, ast.Compare)
                and isinstance(node.left, ast.Name)
                and node.left.id == var
                and len(node.comparators) == 1):
            continue
        comparator = node.comparators[0]
        if isinstance(comparator, ast.Constant) and isinstance(
            comparator.value, str
        ):
            kinds.add(comparator.value)
        elif isinstance(comparator, (ast.Tuple, ast.List, ast.Set)):
            kinds.update(
                e.value for e in comparator.elts
                if isinstance(e, ast.Constant) and isinstance(e.value, str)
            )
    return kinds


@register
class MessageProtocolPass(LintPass):
    name = "message_protocol"
    description = (
        "pool send sites must use registered MESSAGE_KINDS and the parent"
        " dispatch must handle every registered kind"
    )

    def run(self, ctx: LintContext) -> list[Violation]:
        violations: list[Violation] = []
        for path in ctx.files(SCOPE):
            violations.extend(self._check_file(ctx, path))
        return violations

    def _check_file(self, ctx: LintContext, path: Path) -> list[Violation]:
        tree = ctx.tree(path)
        violations: list[Violation] = []
        registry = _registry(tree)
        sites = _send_sites(tree)
        if registry is None:
            if sites:
                violations.append(self.violation(
                    ctx, path, sites[0][0],
                    "file sends protocol messages but declares no"
                    f" module-level {REGISTRY_NAME} tuple",
                ))
            return violations
        kinds, registry_line = registry
        registered = set(kinds)
        for line, kind in sites:
            if kind not in registered:
                violations.append(self.violation(
                    ctx, path, line,
                    f"send site uses unregistered message kind {kind!r} —"
                    f" not in {REGISTRY_NAME} (line {registry_line}); the"
                    " parent dispatch would drop it",
                ))

        dispatchers = _dispatchers(tree)
        if not dispatchers:
            violations.append(self.violation(
                ctx, path, registry_line,
                f"{REGISTRY_NAME} is declared but no dispatcher"
                " (a function unpacking 'kind = msg[0]') exists to route"
                " the kinds",
            ))
            return violations
        handled: set[str] = set()
        for func, var, line in dispatchers:
            compared = _compared_kinds(func, var)
            for kind in sorted(compared - registered):
                violations.append(self.violation(
                    ctx, path, line,
                    f"dispatcher {func.name}() compares against"
                    f" unregistered kind {kind!r} — dead branch or typo"
                    f" (registry: {', '.join(kinds)})",
                ))
            handled |= compared
        for kind in kinds:
            if kind not in handled:
                func, _, line = dispatchers[0]
                violations.append(self.violation(
                    ctx, path, line,
                    f"registered message kind {kind!r} is not handled by"
                    f" the dispatch in {func.name}() — an unroutable"
                    " message silently drops a worker's progress delta",
                ))
        return violations
