"""No-recursion pass: the engine's hot paths must stay iterative.

PR 3 deleted the recursive interpreter on purpose: the streaming executor
and the factorized counter run on explicit frame stacks, so deep patterns
never hit Python's recursion limit and suspend/resume can serialize the
whole search state. A recursive helper sneaking back into
``repro.engine.executor`` or ``repro.engine.counting`` would silently
reintroduce both failure modes.

The check builds a name-based intra-module call graph — module-level
functions called by bare name, methods called through ``self.`` within
their class — and flags every function on a call-graph cycle (including
direct self-calls). Name-based resolution is deliberately conservative:
it cannot see dynamic dispatch, but the hot paths are plain functions and
the false-positive risk within two files is negligible.
"""

from __future__ import annotations

import ast
from pathlib import Path

from tools.reprolint import LintContext, LintPass, Violation, register

#: The recursion-free hot paths.
SCOPES = (
    "src/repro/engine/executor.py",
    "src/repro/engine/counting.py",
    "src/repro/engine/pool.py",
    "src/repro/engine/workunit.py",
)

FuncKey = tuple[str, str]  # (class name or "", function name)


def _called_names(func: ast.AST) -> tuple[set[str], set[str]]:
    """(bare names called, self-method names called) within ``func``."""
    bare: set[str] = set()
    methods: set[str] = set()
    for node in ast.walk(func):
        if not isinstance(node, ast.Call):
            continue
        target = node.func
        if isinstance(target, ast.Name):
            bare.add(target.id)
        elif (
            isinstance(target, ast.Attribute)
            and isinstance(target.value, ast.Name)
            and target.value.id == "self"
        ):
            methods.add(target.attr)
    return bare, methods


def _collect(tree: ast.Module) -> dict[FuncKey, tuple[int, set[FuncKey]]]:
    """Map each function to (lineno, callees-within-the-module)."""
    defs: dict[FuncKey, ast.AST] = {}

    def visit(node: ast.AST, cls: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # Nested defs share their enclosing scope's key space: a
                # closure calling its own name is recursion all the same.
                defs.setdefault((cls, child.name), child)
                visit(child, cls)
            elif isinstance(child, ast.ClassDef):
                visit(child, child.name)
            else:
                visit(child, cls)

    visit(tree, "")

    graph: dict[FuncKey, tuple[int, set[FuncKey]]] = {}
    module_funcs = {name for scope, name in defs if scope == ""}
    for (cls, name), func in defs.items():
        bare, methods = _called_names(func)
        callees: set[FuncKey] = set()
        for called in bare & module_funcs:
            callees.add(("", called))
        if cls:
            for called in methods:
                if (cls, called) in defs:
                    callees.add((cls, called))
        graph[(cls, name)] = (func.lineno, callees)
    return graph


def _cycle_members(graph: dict[FuncKey, tuple[int, set[FuncKey]]]) -> set[FuncKey]:
    """Every function on some call-graph cycle (iterative Tarjan SCC)."""
    index: dict[FuncKey, int] = {}
    lowlink: dict[FuncKey, int] = {}
    on_stack: set[FuncKey] = set()
    stack: list[FuncKey] = []
    counter = [0]
    members: set[FuncKey] = set()

    for root in graph:
        if root in index:
            continue
        work: list[tuple[FuncKey, list[FuncKey]]] = [
            (root, sorted(graph[root][1]))
        ]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack.add(root)
        while work:
            node, children = work[-1]
            advanced = False
            while children:
                child = children.pop()
                if child not in index:
                    index[child] = lowlink[child] = counter[0]
                    counter[0] += 1
                    stack.append(child)
                    on_stack.add(child)
                    work.append((child, sorted(graph[child][1])))
                    advanced = True
                    break
                if child in on_stack:
                    lowlink[node] = min(lowlink[node], index[child])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                scc = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    scc.append(member)
                    if member == node:
                        break
                if len(scc) > 1:
                    members.update(scc)
                elif scc[0] in graph[scc[0]][1]:  # direct self-call
                    members.update(scc)
    return members


@register
class NoRecursionPass(LintPass):
    name = "no_recursion"
    description = (
        "engine hot paths (executor, counting) must stay recursion-free:"
        " no function may sit on an intra-module call-graph cycle"
    )

    def run(self, ctx: LintContext) -> list[Violation]:
        violations: list[Violation] = []
        for path in ctx.files(*SCOPES):
            violations.extend(self._check_file(ctx, path))
        return violations

    def _check_file(self, ctx: LintContext, path: Path) -> list[Violation]:
        graph = _collect(ctx.tree(path))
        violations = []
        for cls, name in sorted(_cycle_members(graph)):
            lineno = graph[(cls, name)][0]
            label = f"{cls}.{name}" if cls else name
            violations.append(self.violation(
                ctx, path, lineno,
                f"{label} is (mutually) recursive; the engine hot paths"
                " must use explicit stacks (see PR 3's iterative executor)",
            ))
        return violations
