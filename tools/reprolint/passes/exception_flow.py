"""Exception-flow pass: limit raises must reach a stop-reason handler.

The engine's robustness contract is that a budget breach never crashes a
match: every raise of the ``LimitExceeded`` family
(``TimeLimitExceeded``, ``EmbeddingLimitExceeded``,
``MemoryLimitExceeded``, ``MatchCancelled``) is caught somewhere up the
call chain by a handler that converts it into a typed partial result — a
``STOP_REASONS`` member, a ``truncated``/``timed_out`` flag, a
``partial_count``. A new raise path that misses its handler yields an
untyped crash instead, which no per-file check can see.

This pass closes the loophole interprocedurally: it builds the
:class:`~tools.reprolint.model.ProgramModel` call graph over the engine
sources, finds every family raise site, and propagates the escape along
the (conservatively resolved) call edges:

* a raise inside a ``try`` whose matching handler *maps* the exception
  (references ``stop_reason``/``truncated``/``timed_out``/
  ``partial_count``/``STOP_REASONS``/``raise_stop``) is sound;
* a matching handler that merely re-raises passes the escape through to
  the caller's callers;
* a matching handler that does neither is flagged — it swallows the
  budget signal without producing the typed partial result;
* an escape that survives to a call-graph root (a function with no
  resolved in-repo callers — an API boundary) is flagged at the origin
  raise site: that raise can reach user code as a crash.
"""

from __future__ import annotations

import ast
from pathlib import Path

from tools.reprolint import LintContext, LintPass, Violation, register

SCOPE = "src/repro"

#: The budget/limit family (base class last — catching it catches all).
FAMILY = frozenset((
    "TimeLimitExceeded",
    "EmbeddingLimitExceeded",
    "MemoryLimitExceeded",
    "MatchCancelled",
    "LimitExceeded",
))

#: Handler types that catch any family member.
CATCH_ALL = frozenset((
    "LimitExceeded", "ReproError", "Exception", "BaseException",
))

#: A handler "maps" the exception when it references the machinery that
#: turns a budget breach into a typed partial result.
MAPPING_MARKERS = frozenset((
    "stop_reason", "truncated", "timed_out", "partial_count", "raise_stop",
))


def _terminal_name(node: ast.AST) -> str | None:
    if isinstance(node, ast.Call):
        node = node.func
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    return None


def _handler_names(handler: ast.ExceptHandler) -> set[str] | None:
    """Exception names a handler catches (None = bare ``except:``)."""
    if handler.type is None:
        return None
    types = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    names = set()
    for node in types:
        name = _terminal_name(node)
        if name:
            names.add(name)
    return names


def _catches(handler: ast.ExceptHandler, exc_name: str) -> bool:
    names = _handler_names(handler)
    if names is None:
        return True
    return exc_name in names or bool(names & CATCH_ALL)


def _classify(handler: ast.ExceptHandler) -> str:
    """'maps' | 'reraise' | 'swallows' for a matching handler body."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Name) and (
            node.id in MAPPING_MARKERS or node.id.startswith("STOP_")
        ):
            return "maps"
        if isinstance(node, ast.Attribute) and node.attr in MAPPING_MARKERS:
            return "maps"
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return "reraise"
    return "swallows"


class _FunctionScan:
    """Per-function: family raise sites and call sites, each with the
    stack of ``try`` handlers active at that point (innermost last)."""

    def __init__(self, func: ast.AST) -> None:
        self.raises: list[tuple[ast.Raise, str, list]] = []
        self.call_handlers: dict[int, list] = {}
        self._visit_body(
            getattr(func, "body", []), []
        )

    def _visit_body(self, body, stack) -> None:
        for stmt in body:
            self._visit(stmt, stack)

    def _visit(self, node: ast.AST, stack: list) -> None:
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            return  # separate scope, scanned on its own
        if isinstance(node, ast.Try):
            self._visit_body(node.body, stack + [node.handlers])
            for handler in node.handlers:
                self._visit_body(handler.body, stack)
            self._visit_body(node.orelse, stack)
            self._visit_body(node.finalbody, stack)
            return
        if isinstance(node, ast.Raise) and node.exc is not None:
            name = _terminal_name(node.exc)
            if name in FAMILY:
                self.raises.append((node, name, list(stack)))
        if isinstance(node, ast.Call):
            self.call_handlers[id(node)] = list(stack)
        for child in ast.iter_child_nodes(node):
            self._visit(child, stack)


@register
class ExceptionFlowPass(LintPass):
    name = "exception_flow"
    description = (
        "every raise of the LimitExceeded family must reach a handler"
        " mapping it to a STOP_REASONS outcome"
    )

    def run(self, ctx: LintContext) -> list[Violation]:
        model = ctx.program_model()
        paths = [Path(p) for p in ctx.files(SCOPE)]
        graph = model.call_graph(paths)
        scans = {fid: _FunctionScan(node) for fid, node in graph.nodes.items()}

        violations: list[Violation] = []
        flagged_handlers: set[int] = set()
        # escapes[fid][exc_name] = set of origin (path, line) raise sites
        escapes: dict = {}

        def first_match(stack: list, exc_name: str):
            for handlers in reversed(stack):
                for handler in handlers:
                    if _catches(handler, exc_name):
                        return handler
            return None

        def flag_handler(path: Path, handler: ast.ExceptHandler,
                         exc_name: str) -> None:
            if id(handler) in flagged_handlers:
                return
            flagged_handlers.add(id(handler))
            violations.append(self.violation(
                ctx, path, handler.lineno,
                f"handler catches {exc_name} but neither maps it to a"
                " STOP_REASONS outcome (stop_reason / truncated /"
                " timed_out / partial_count) nor re-raises — the budget"
                " signal is swallowed",
            ))

        worklist: list = []
        for fid, scan in scans.items():
            for raise_node, exc_name, stack in scan.raises:
                handler = first_match(stack, exc_name)
                if handler is None:
                    origin = (fid[0], raise_node.lineno, exc_name)
                    escapes.setdefault(fid, {}).setdefault(
                        exc_name, set()
                    ).add(origin)
                    continue
                outcome = _classify(handler)
                if outcome == "maps":
                    continue
                if outcome == "reraise":
                    origin = (fid[0], raise_node.lineno, exc_name)
                    escapes.setdefault(fid, {}).setdefault(
                        exc_name, set()
                    ).add(origin)
                else:
                    flag_handler(fid[0], handler, exc_name)
            if fid in escapes:
                worklist.append(fid)

        while worklist:
            fid = worklist.pop()
            for caller in list(graph.callers.get(fid, ())):
                scan = scans[caller]
                grew = False
                for call, targets in graph.calls.get(caller, []):
                    if fid not in targets:
                        continue
                    stack = scan.call_handlers.get(id(call), [])
                    for exc_name, origins in escapes.get(fid, {}).items():
                        handler = first_match(stack, exc_name)
                        if handler is not None:
                            outcome = _classify(handler)
                            if outcome == "maps":
                                continue
                            if outcome == "swallows":
                                flag_handler(caller[0], handler, exc_name)
                                continue
                        bucket = escapes.setdefault(
                            caller, {}
                        ).setdefault(exc_name, set())
                        if not origins <= bucket:
                            bucket.update(origins)
                            grew = True
                if grew:
                    worklist.append(caller)

        # One violation per origin raise site, naming the roots it
        # escaped through (the same raise can surface at several API
        # boundaries).
        escaped_origins: dict[tuple, set[str]] = {}
        for fid, by_exc in escapes.items():
            if graph.callers.get(fid):
                continue  # escapes further; judged at the roots only
            path, qual = fid
            root = f"{ctx.rel(path)}:{qual}"
            for origins in by_exc.values():
                for origin in origins:
                    escaped_origins.setdefault(origin, set()).add(root)
        for (opath, oline, oname), roots in sorted(
            escaped_origins.items(), key=lambda item: (str(item[0][0]),
                                                       item[0][1])
        ):
            violations.append(self.violation(
                ctx, opath, oline,
                f"raise of {oname} escapes to the call-graph root(s)"
                f" {', '.join(sorted(roots))} without any handler mapping"
                " it to a STOP_REASONS outcome — a budget breach on this"
                " path is an untyped crash",
            ))
        return violations
