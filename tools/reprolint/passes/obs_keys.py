"""Obs-keys pass: counter/metric name literals must exist in a registry.

The observability contract is string-keyed: hot paths bump counters by
name (``counters.inc("ccsr.rows_read")``), the metrics pump creates typed
time series by name (``registry.gauge("read_seconds")``), and downstream
consumers (run-reports, exporters, the bench tables) look those names up
again. A typo produces a silently separate counter — no exception, just a
metric nobody reads. This pass closes the loop: every string literal
passed to ``.inc()`` / ``._count()`` must be a member of
``repro.obs.counters.STAT_KEYS`` or ``KNOWN_COUNTERS``, and every literal
passed to ``.gauge()`` / ``.counter()`` / ``.histogram()`` must be in
``repro.obs.metrics.KNOWN_METRICS``, and every literal passed to
``.record()`` must be in ``repro.obs.recorder.KNOWN_EVENTS`` (the flight
recorder's event vocabulary, which post-mortem tooling matches on).
Adding a genuinely new name means adding it to the registry — which is
the point.
"""

from __future__ import annotations

import ast
from pathlib import Path

from tools.reprolint import LintContext, LintPass, Violation, register

COUNTER_METHODS = ("inc", "_count")
METRIC_METHODS = ("gauge", "counter", "histogram")
EVENT_METHODS = ("record",)


def _registries(ctx: LintContext) -> tuple[frozenset, frozenset, frozenset]:
    ctx.ensure_importable()
    from repro.obs.counters import KNOWN_COUNTERS, STAT_KEYS
    from repro.obs.metrics import KNOWN_METRICS
    from repro.obs.recorder import KNOWN_EVENTS

    return (
        frozenset(STAT_KEYS) | frozenset(KNOWN_COUNTERS),
        frozenset(KNOWN_METRICS),
        frozenset(KNOWN_EVENTS),
    )


def _literal_first_arg(node: ast.Call) -> str | None:
    if node.args and isinstance(node.args[0], ast.Constant) \
            and isinstance(node.args[0].value, str):
        return node.args[0].value
    return None


@register
class ObsKeysPass(LintPass):
    name = "obs_keys"
    description = (
        "counter literals passed to .inc()/._count() must be in"
        " STAT_KEYS/KNOWN_COUNTERS; metric literals passed to"
        " .gauge()/.counter()/.histogram() must be in KNOWN_METRICS;"
        " event literals passed to .record() must be in KNOWN_EVENTS"
    )

    def run(self, ctx: LintContext) -> list[Violation]:
        counters, metrics, events = _registries(ctx)
        violations: list[Violation] = []
        for path in ctx.files("src/repro"):
            violations.extend(
                self._check_file(ctx, path, counters, metrics, events)
            )
        return violations

    def _check_file(
        self, ctx: LintContext, path: Path,
        counters: frozenset, metrics: frozenset, events: frozenset,
    ) -> list[Violation]:
        violations = []
        for node in ast.walk(ctx.tree(path)):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            method = node.func.attr
            literal = _literal_first_arg(node)
            if literal is None:
                continue
            if method in COUNTER_METHODS and literal not in counters:
                violations.append(self.violation(
                    ctx, path, node.lineno,
                    f"counter {literal!r} is not in STAT_KEYS or"
                    " KNOWN_COUNTERS (repro.obs.counters) — register it"
                    " or fix the typo",
                ))
            elif method in METRIC_METHODS and literal not in metrics:
                violations.append(self.violation(
                    ctx, path, node.lineno,
                    f"metric {literal!r} is not in KNOWN_METRICS"
                    " (repro.obs.metrics) — register it or fix the typo",
                ))
            elif method in EVENT_METHODS and literal not in events:
                violations.append(self.violation(
                    ctx, path, node.lineno,
                    f"recorder event {literal!r} is not in KNOWN_EVENTS"
                    " (repro.obs.recorder) — register it or fix the typo",
                ))
        return violations
