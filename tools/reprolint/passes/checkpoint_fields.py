"""Checkpoint-fields pass: the document schema must track its version.

A checkpoint written by one build must be readable by the next, so the
document's top-level sections are frozen per ``CHECKPOINT_VERSION``: this
pass carries a manifest of the key set every published version emits and
compares it against the dict literal ``checkpoint_payload`` returns.
Adding or removing a top-level field without bumping the version (and
extending the manifest) is exactly the silent compatibility break the
pass exists to catch. The counters carried across the suspend/resume
boundary (``_RUNTIME_COUNTERS`` / ``_CANDIDATE_COUNTERS``) must also stay
a subset of ``STAT_KEYS`` — resume writes them back into the runtime, so
an unknown key would desynchronize the unified stats contract.
"""

from __future__ import annotations

import ast
from pathlib import Path

from tools.reprolint import LintContext, LintPass, Violation, register

SCOPE = "src/repro/engine/checkpoint.py"

#: Top-level checkpoint-document keys, frozen per CHECKPOINT_VERSION.
#: Changing the payload requires bumping the version in checkpoint.py AND
#: adding the new version's key set here (keep old entries: they document
#: what published checkpoints look like).
VERSION_MANIFEST: dict[int, frozenset] = {
    1: frozenset((
        "format", "version", "pattern", "store",
        "query", "limits", "progress", "state",
    )),
}

COUNTER_TUPLES = ("_RUNTIME_COUNTERS", "_CANDIDATE_COUNTERS")


def _module_int(tree: ast.Module, name: str) -> tuple[int, int] | None:
    """(value, lineno) of a module-level ``NAME = <int>`` assignment."""
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (isinstance(target, ast.Name) and target.id == name
                        and isinstance(node.value, ast.Constant)
                        and isinstance(node.value.value, int)):
                    return node.value.value, node.lineno
    return None


def _module_str_tuple(tree: ast.Module, name: str) -> tuple[list[str], int] | None:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if (isinstance(target, ast.Name) and target.id == name
                        and isinstance(node.value, (ast.Tuple, ast.List))):
                    values = [
                        e.value for e in node.value.elts
                        if isinstance(e, ast.Constant)
                        and isinstance(e.value, str)
                    ]
                    return values, node.lineno
    return None


def _returned_dict_keys(
    tree: ast.Module, func_name: str, depth: int = 0
) -> tuple[set[str], int] | None:
    """String keys of the dict literal ``func_name`` returns.

    A ``**helper(...)`` spread whose helper is a module-level function in
    the same file is inlined (one level deep) — the checkpoint serializer
    shares its query-identity sections with the pool's per-shard writer
    through such a helper, and the frozen manifest covers the *document*,
    not the code layout.
    """
    for node in tree.body:
        if (isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name == func_name):
            for child in ast.walk(node):
                if (isinstance(child, ast.Return)
                        and isinstance(child.value, ast.Dict)):
                    keys: set[str] = set()
                    for key, value in zip(
                        child.value.keys, child.value.values
                    ):
                        if (isinstance(key, ast.Constant)
                                and isinstance(key.value, str)):
                            keys.add(key.value)
                        elif (key is None and depth == 0
                                and isinstance(value, ast.Call)
                                and isinstance(value.func, ast.Name)):
                            inlined = _returned_dict_keys(
                                tree, value.func.id, depth=1
                            )
                            if inlined is not None:
                                keys.update(inlined[0])
                    return keys, child.lineno
    return None


def _payload_keys(tree: ast.Module) -> tuple[set[str], int] | None:
    """String keys of the document ``checkpoint_payload`` returns."""
    return _returned_dict_keys(tree, "checkpoint_payload")


@register
class CheckpointFieldsPass(LintPass):
    name = "checkpoint_fields"
    description = (
        "checkpoint_payload's top-level keys must match the frozen"
        " manifest for CHECKPOINT_VERSION; carried counters must be"
        " STAT_KEYS members"
    )

    def run(self, ctx: LintContext) -> list[Violation]:
        violations: list[Violation] = []
        for path in ctx.files(SCOPE):
            violations.extend(self._check_file(ctx, path))
        return violations

    def _check_file(self, ctx: LintContext, path: Path) -> list[Violation]:
        tree = ctx.tree(path)
        violations: list[Violation] = []

        version = _module_int(tree, "CHECKPOINT_VERSION")
        payload = _payload_keys(tree)
        if version is None:
            violations.append(self.violation(
                ctx, path, 1,
                "no module-level integer CHECKPOINT_VERSION assignment",
            ))
        if payload is None:
            violations.append(self.violation(
                ctx, path, 1,
                "checkpoint_payload() does not return a dict literal"
                " (the pass needs statically visible top-level keys)",
            ))
        if version is not None and payload is not None:
            value, version_line = version
            keys, payload_line = payload
            expected = VERSION_MANIFEST.get(value)
            if expected is None:
                violations.append(self.violation(
                    ctx, path, version_line,
                    f"CHECKPOINT_VERSION {value} has no entry in the"
                    " reprolint VERSION_MANIFEST — freeze the new"
                    " version's key set in"
                    " tools/reprolint/passes/checkpoint_fields.py",
                ))
            else:
                for missing in sorted(expected - keys):
                    violations.append(self.violation(
                        ctx, path, payload_line,
                        f"checkpoint_payload() dropped top-level key"
                        f" {missing!r} without bumping CHECKPOINT_VERSION",
                    ))
                for extra in sorted(keys - expected):
                    violations.append(self.violation(
                        ctx, path, payload_line,
                        f"checkpoint_payload() added top-level key"
                        f" {extra!r} without bumping CHECKPOINT_VERSION",
                    ))

        ctx.ensure_importable()
        from repro.obs.counters import STAT_KEYS

        stat_keys = frozenset(STAT_KEYS)
        for tuple_name in COUNTER_TUPLES:
            found = _module_str_tuple(tree, tuple_name)
            if found is None:
                continue
            values, lineno = found
            for key in values:
                if key not in stat_keys:
                    violations.append(self.violation(
                        ctx, path, lineno,
                        f"{tuple_name} carries {key!r}, which is not a"
                        " STAT_KEYS member — resume would desynchronize"
                        " the unified stats contract",
                    ))
        return violations
