"""Clock-discipline pass: no naked ``except:``, no ``time.time()`` in the
engine.

Two small hygiene contracts with outsized blast radius:

* a naked ``except:`` swallows ``KeyboardInterrupt``/``SystemExit`` —
  fatal for an engine whose cancellation story is a *cooperative* token
  tripped from a SIGINT handler. Forbidden everywhere under ``src/repro``.
* the engine layer must not read wall clocks directly: the governor owns
  deadline arithmetic (monotonic ``perf_counter`` budgets), and a stray
  ``time.time()`` in the hot path would both duplicate that authority and
  make runs non-reproducible under clock adjustments. ``time.time()`` is
  forbidden under ``src/repro/engine``; the obs layer (exporter
  timestamps) legitimately uses it and is not scanned for clocks.
"""

from __future__ import annotations

import ast
from pathlib import Path

from tools.reprolint import LintContext, LintPass, Violation, register

ENGINE_PREFIX = ("src", "repro", "engine")


def _wall_clock_aliases(tree: ast.Module) -> tuple[set[str], set[str]]:
    """(module aliases of ``time``, direct aliases of ``time.time``)."""
    modules: set[str] = set()
    functions: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    modules.add(alias.asname or "time")
        elif isinstance(node, ast.ImportFrom) and node.module == "time":
            for alias in node.names:
                if alias.name == "time":
                    functions.add(alias.asname or "time")
    return modules, functions


@register
class ClockDisciplinePass(LintPass):
    name = "clock_discipline"
    description = (
        "no naked except: anywhere in src/repro; no time.time() in the"
        " engine layer (the governor owns clocks)"
    )

    def run(self, ctx: LintContext) -> list[Violation]:
        violations: list[Violation] = []
        for path in ctx.files("src/repro"):
            violations.extend(self._check_file(ctx, path))
        return violations

    def _in_engine(self, ctx: LintContext, path: Path) -> bool:
        if ctx.fixture_mode:
            return True  # fixtures exercise the strictest scoping
        rel = ctx.rel(path)
        return rel.replace("\\", "/").startswith("/".join(ENGINE_PREFIX))

    def _check_file(self, ctx: LintContext, path: Path) -> list[Violation]:
        tree = ctx.tree(path)
        violations = []
        for node in ast.walk(tree):
            if isinstance(node, ast.ExceptHandler) and node.type is None:
                violations.append(self.violation(
                    ctx, path, node.lineno,
                    "naked 'except:' swallows KeyboardInterrupt/SystemExit"
                    " — catch a concrete exception type"
                    " (or 'except Exception:' at minimum)",
                ))
        if not self._in_engine(ctx, path):
            return violations
        modules, functions = _wall_clock_aliases(tree)
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            target = node.func
            is_wall_clock = (
                isinstance(target, ast.Attribute)
                and target.attr == "time"
                and isinstance(target.value, ast.Name)
                and target.value.id in modules
            ) or (
                isinstance(target, ast.Name) and target.id in functions
            )
            if is_wall_clock:
                violations.append(self.violation(
                    ctx, path, node.lineno,
                    "time.time() in the engine layer — the governor owns"
                    " deadline clocks; use time.perf_counter() for"
                    " durations or route budgets through the governor",
                ))
        return violations
