"""Pass modules; importing this package registers every pass.

Add a new pass by creating a module here with a ``@register``-decorated
:class:`~tools.reprolint.LintPass` subclass, importing it below, and
dropping a known-bad snippet in ``tools/reprolint/fixtures/<name>.py``
(covered automatically by ``tests/test_reprolint.py``).
"""

from tools.reprolint.passes import (  # noqa: F401  (registration side effect)
    api_all,
    checkpoint_fields,
    clock_discipline,
    exception_flow,
    fork_safety,
    inspector_commands,
    layering,
    message_protocol,
    no_recursion,
    obs_keys,
    signal_safety,
    stop_reasons,
    wire_schema,
)
