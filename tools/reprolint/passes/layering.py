"""Layering pass: core library layers must not depend on the CLI or bench.

``repro.engine`` is the execution core that ``repro.core``, the baselines,
the bench harness, and the CLI all sit on; ``repro.testing`` (the
fault-injection registry) is imported from engine/ccsr hot paths. A
dependency in the other direction (engine/testing -> cli / bench) would be
an import cycle waiting to happen and would drag argparse/IO machinery
into every library import.

Two checks per guarded package (this pass absorbed the former
``tools/check_layering.py`` script, since removed — the entry point is
``python -m tools.reprolint --select layering``):

1. **Static**: walk each module's AST for ``repro.cli`` / ``repro.bench``
   imports — including lazy (function-local) ones the dynamic check
   cannot see.
2. **Dynamic**: import the package in a fresh interpreter and assert that
   neither forbidden module was pulled into ``sys.modules`` transitively.
   Skipped in fixture mode (a snippet is not an importable package).
"""

from __future__ import annotations

import ast
import os
import subprocess
import sys
from pathlib import Path

from tools.reprolint import LintContext, LintPass, Violation, register

#: Packages that must stay independent of the CLI/bench layers.
GUARDED = ("repro.engine", "repro.testing")
FORBIDDEN = ("repro.cli", "repro.bench")


def _forbidden_module(module: str | None) -> str | None:
    if not module:
        return None
    for forbidden in FORBIDDEN:
        if module == forbidden or module.startswith(forbidden + "."):
            return forbidden
    return None


@register
class LayeringPass(LintPass):
    name = "layering"
    description = (
        "repro.engine / repro.testing must not import repro.cli or"
        " repro.bench (static AST scan + fresh-interpreter import probe)"
    )

    def run(self, ctx: LintContext) -> list[Violation]:
        violations: list[Violation] = []
        scopes = tuple(
            "src/" + pkg.replace(".", "/") for pkg in GUARDED
        )
        for path in ctx.files(*scopes):
            violations.extend(self._static_check(ctx, path))
        if not ctx.fixture_mode:
            for package in GUARDED:
                violations.extend(self._dynamic_check(ctx, package))
        return violations

    # ------------------------------------------------------------------
    def _static_check(self, ctx: LintContext, path: Path) -> list[Violation]:
        violations = []
        for node in ast.walk(ctx.tree(path)):
            modules: list[str] = []
            if isinstance(node, ast.Import):
                modules = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom) and node.level == 0:
                modules = [node.module or ""]
            for module in modules:
                bad = _forbidden_module(module)
                if bad is not None:
                    violations.append(self.violation(
                        ctx, path, node.lineno,
                        f"imports {module} (guarded layers must not"
                        f" depend on {bad})",
                    ))
        return violations

    def _dynamic_check(self, ctx: LintContext, package: str) -> list[Violation]:
        probe = (
            f"import sys; import {package}; "
            "bad = [m for m in sys.modules "
            "if m == 'repro.cli' or m.startswith('repro.bench')]; "
            "print('\\n'.join(bad)); sys.exit(1 if bad else 0)"
        )
        src = str(ctx.root / "src")
        # Extend the inherited environment instead of replacing it: a bare
        # env={...} would drop PATH (and any pre-set PYTHONPATH), breaking
        # the probe interpreter on some platforms.
        env = dict(os.environ)
        existing = env.get("PYTHONPATH")
        env["PYTHONPATH"] = (
            src + os.pathsep + existing if existing else src
        )
        result = subprocess.run(
            [sys.executable, "-c", probe],
            capture_output=True,
            text=True,
            env=env,
        )
        package_init = (
            ctx.root / "src" / Path(*package.split(".")) / "__init__.py"
        )
        if result.returncode == 0:
            return []
        loaded = [m for m in result.stdout.splitlines() if m]
        if loaded:
            return [
                self.violation(
                    ctx, package_init, 1,
                    f"importing {package} transitively loaded {module}",
                )
                for module in loaded
            ]
        return [self.violation(
            ctx, package_init, 1,
            f"import probe for {package} failed:"
            f" {result.stderr.strip()}",
        )]
