"""API-``__all__`` pass: the declared public surface must be real.

``from repro.engine import *`` and the docs both trust ``__all__``; a
stale entry (renamed function, dropped class) raises only at star-import
time, which nothing in CI exercises. For every module under ``src/repro``
declaring a module-level ``__all__`` this pass checks that the literal is
a list/tuple of unique strings and that every named symbol is actually
bound at module top level (def, class, import, or assignment).
"""

from __future__ import annotations

import ast
from pathlib import Path

from tools.reprolint import LintContext, LintPass, Violation, register


def _top_level_bindings(tree: ast.Module) -> set[str]:
    names: set[str] = set()
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            names.add(node.name)
        elif isinstance(node, ast.Import):
            for alias in node.names:
                names.add((alias.asname or alias.name).split(".")[0])
        elif isinstance(node, ast.ImportFrom):
            for alias in node.names:
                names.add(alias.asname or alias.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                for name_node in ast.walk(target):
                    if isinstance(name_node, ast.Name):
                        names.add(name_node.id)
        elif isinstance(node, ast.AnnAssign):
            if isinstance(node.target, ast.Name):
                names.add(node.target.id)
        elif isinstance(node, (ast.If, ast.Try)):
            # Conditional definitions (TYPE_CHECKING blocks, fallbacks)
            # still bind at top level on some branch.
            for child in ast.walk(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                      ast.ClassDef)):
                    names.add(child.name)
                elif isinstance(child, ast.Import):
                    for alias in child.names:
                        names.add((alias.asname or alias.name).split(".")[0])
                elif isinstance(child, ast.ImportFrom):
                    for alias in child.names:
                        names.add(alias.asname or alias.name)
                elif isinstance(child, ast.Assign):
                    for target in child.targets:
                        for name_node in ast.walk(target):
                            if isinstance(name_node, ast.Name):
                                names.add(name_node.id)
    return names


def _all_declaration(tree: ast.Module) -> tuple[ast.AST, list] | None:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    if isinstance(node.value, (ast.List, ast.Tuple)):
                        return node, node.value.elts
                    return node, []
    return None


@register
class ApiAllPass(LintPass):
    name = "api_all"
    description = (
        "every module-level __all__ must be a literal of unique strings,"
        " each bound at module top level"
    )

    def run(self, ctx: LintContext) -> list[Violation]:
        violations: list[Violation] = []
        for path in ctx.files("src/repro"):
            violations.extend(self._check_file(ctx, path))
        return violations

    def _check_file(self, ctx: LintContext, path: Path) -> list[Violation]:
        tree = ctx.tree(path)
        declaration = _all_declaration(tree)
        if declaration is None:
            return []
        node, elements = declaration
        violations = []
        entries: list[str] = []
        for element in elements:
            if (isinstance(element, ast.Constant)
                    and isinstance(element.value, str)):
                entries.append(element.value)
            else:
                violations.append(self.violation(
                    ctx, path, getattr(element, "lineno", node.lineno),
                    "__all__ entries must be string literals",
                ))
        seen: set[str] = set()
        bindings = _top_level_bindings(tree)
        for entry in entries:
            if entry in seen:
                violations.append(self.violation(
                    ctx, path, node.lineno,
                    f"__all__ lists {entry!r} twice",
                ))
            seen.add(entry)
            if entry not in bindings:
                violations.append(self.violation(
                    ctx, path, node.lineno,
                    f"__all__ exports {entry!r}, which is not bound at"
                    " module top level (stale export?)",
                ))
        return violations
