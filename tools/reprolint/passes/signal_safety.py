"""Signal-safety pass: installed handler bodies stay on an allowlist.

CPython runs signal handlers between bytecodes on the main thread, so
the classic async-signal-safety rules relax — but not to nothing: a
handler that acquires a lock the interrupted code may hold deadlocks, a
handler writing buffered stdout can interleave with an in-progress
write, and allocation-heavy work stretches the window where a second
signal lands re-entrantly. The repo's handlers (SIGINT cancel trip,
SIGUSR1 recorder dump, SIGUSR2 checkpoint request) are deliberately
restricted to *flag sets, queue appends, and audited bounded calls*.

This pass finds every ``signal.signal(sig, handler)`` install whose
handler resolves to a local ``def`` (``SIG_IGN``/``SIG_DFL`` and
restored previous-handler variables are skipped) and restricts the
handler body:

* calls must be ``print(..., file=sys.stderr)`` (unbuffered-enough,
  never stdout), ``os.write``/``os.kill`` (genuinely async-signal-safe),
  or a method on the allowlist — cancel-token trips, event flags, queue
  appends, the inspector's checkpoint request, and the flight recorder's
  ``format_dump`` (audited: bounded, lock-free, in-memory);
* ``with`` blocks are flagged outright — that is how locks are taken.
"""

from __future__ import annotations

import ast
from pathlib import Path

from tools.reprolint import LintContext, LintPass, Violation, register

SCOPE = "src/repro"

#: Handler sentinels that install no Python-level body.
SENTINELS = ("SIG_IGN", "SIG_DFL")

#: Method names a handler may call: cooperative flags and bounded,
#: lock-free appends — plus the two audited inspector/recorder entry
#: points (request_checkpoint only enqueues; format_dump renders the
#: in-memory ring without locks or I/O).
ALLOWED_METHODS = frozenset((
    "trip",
    "set",
    "clear",
    "append",
    "appendleft",
    "put_nowait",
    "request_checkpoint",
    "format_dump",
))

#: ``os.<attr>`` calls that are async-signal-safe at the OS level.
ALLOWED_OS_CALLS = frozenset(("write", "kill"))


def _is_signal_install(node: ast.Call) -> bool:
    func = node.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "signal"
        and isinstance(func.value, ast.Name)
        and func.value.id == "signal"
        and len(node.args) >= 2
    )


def _stderr_keyword(call: ast.Call) -> bool:
    for keyword in call.keywords:
        if (keyword.arg == "file"
                and isinstance(keyword.value, ast.Attribute)
                and keyword.value.attr == "stderr"
                and isinstance(keyword.value.value, ast.Name)
                and keyword.value.value.id == "sys"):
            return True
    return False


@register
class SignalSafetyPass(LintPass):
    name = "signal_safety"
    description = (
        "installed signal-handler bodies restricted to an"
        " async-signal-safe allowlist (flag sets, queue appends, stderr)"
    )

    def run(self, ctx: LintContext) -> list[Violation]:
        violations: list[Violation] = []
        for path in ctx.files(SCOPE):
            violations.extend(self._check_file(ctx, path))
        return violations

    def _check_file(self, ctx: LintContext, path: Path) -> list[Violation]:
        model = ctx.program_model()
        mod = model.module(path)
        violations: list[Violation] = []
        checked: set[int] = set()
        # Install sites live inside functions (qualified scope chain) or
        # at module level (empty qual).
        scopes: list[tuple[str, ast.AST]] = [("", mod.tree)]
        scopes.extend(mod.functions.items())
        for qual, scope in scopes:
            for node in ast.walk(scope):
                if not (isinstance(node, ast.Call)
                        and _is_signal_install(node)):
                    continue
                handler = self._resolve_handler(mod, qual, node.args[1])
                if handler is None or id(handler) in checked:
                    continue
                checked.add(id(handler))
                violations.extend(
                    self._check_handler(ctx, path, node, handler)
                )
        return violations

    def _resolve_handler(self, mod, qual: str, node: ast.AST):
        """The local ``def`` a handler argument names, or None for
        sentinels, restored previous-handler variables, and anything
        else not statically resolvable."""
        if isinstance(node, ast.Attribute) and node.attr in SENTINELS:
            return None
        if not isinstance(node, ast.Name):
            return None  # starred restore, lambda, partial — skip
        name = node.id
        prefix = qual
        while prefix:
            if prefix == qual or prefix in mod.functions:
                nested = f"{prefix}.{name}"
                if nested in mod.functions:
                    return mod.functions[nested]
            prefix = prefix.rpartition(".")[0]
        return mod.functions.get(name)

    def _check_handler(self, ctx: LintContext, path: Path,
                       install: ast.Call, handler) -> list[Violation]:
        violations: list[Violation] = []
        where = (
            f"signal handler {handler.name}() (installed line"
            f" {install.lineno})"
        )
        for node in ast.walk(handler):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                violations.append(self.violation(
                    ctx, path, node.lineno,
                    f"{where} enters a context manager — if that is a"
                    " lock the interrupted code may already hold it;"
                    " handlers must stay lock-free",
                ))
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if isinstance(func, ast.Name):
                if func.id == "print":
                    if not _stderr_keyword(node):
                        violations.append(self.violation(
                            ctx, path, node.lineno,
                            f"{where} prints without file=sys.stderr —"
                            " buffered stdout is not reentrant under a"
                            " signal",
                        ))
                    continue
                violations.append(self.violation(
                    ctx, path, node.lineno,
                    f"{where} calls {func.id}(), which is not on the"
                    " async-signal-safe allowlist (flag sets, queue"
                    " appends, os.write, print to stderr)",
                ))
            elif isinstance(func, ast.Attribute):
                if (isinstance(func.value, ast.Name)
                        and func.value.id == "os"
                        and func.attr in ALLOWED_OS_CALLS):
                    continue
                if func.attr in ALLOWED_METHODS:
                    continue
                violations.append(self.violation(
                    ctx, path, node.lineno,
                    f"{where} calls .{func.attr}(), which is not on the"
                    " async-signal-safe allowlist"
                    f" ({', '.join(sorted(ALLOWED_METHODS))})",
                ))
        return violations
