"""Stop-reasons pass: ``stop_reason`` string literals must be canonical.

``MatchResult.stop_reason`` is a string contract shared by the executor,
the governor, checkpoints, run-report validation, and the CLI. The live
code writes it through the ``STOP_*`` constants, but a raw literal —
``stop_reason="time-limit"`` with the wrong spelling — would type-check,
run, and then fail every downstream comparison. This pass flags any
string literal flowing into a ``stop_reason`` position (keyword argument,
comparison, or attribute/name assignment) that is not a member of
``repro.engine.results.STOP_REASONS``.
"""

from __future__ import annotations

import ast
from pathlib import Path

from tools.reprolint import LintContext, LintPass, Violation, register

ATTR = "stop_reason"


def _stop_reasons(ctx: LintContext) -> frozenset:
    ctx.ensure_importable()
    from repro.engine.results import STOP_REASONS

    return frozenset(STOP_REASONS)


def _is_stop_reason_ref(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Attribute) and node.attr == ATTR
    ) or (
        isinstance(node, ast.Name) and node.id == ATTR
    )


def _str_constants(node: ast.AST) -> list[tuple[int, str]]:
    """String constants in a literal expression (bare, tuple, list, set)."""
    out: list[tuple[int, str]] = []
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        out.append((node.lineno, node.value))
    elif isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        for element in node.elts:
            out.extend(_str_constants(element))
    return out


@register
class StopReasonsPass(LintPass):
    name = "stop_reasons"
    description = (
        "string literals assigned/compared/passed as stop_reason must be"
        " members of repro.engine.results.STOP_REASONS"
    )

    def run(self, ctx: LintContext) -> list[Violation]:
        valid = _stop_reasons(ctx)
        violations: list[Violation] = []
        for path in ctx.files("src/repro"):
            violations.extend(self._check_file(ctx, path, valid))
        return violations

    def _check_file(
        self, ctx: LintContext, path: Path, valid: frozenset
    ) -> list[Violation]:
        candidates: list[tuple[int, str]] = []
        for node in ast.walk(ctx.tree(path)):
            if isinstance(node, ast.Call):
                for keyword in node.keywords:
                    if keyword.arg == ATTR:
                        candidates.extend(_str_constants(keyword.value))
            elif isinstance(node, ast.Compare):
                sides = [node.left, *node.comparators]
                if any(_is_stop_reason_ref(side) for side in sides):
                    for side in sides:
                        candidates.extend(_str_constants(side))
            elif isinstance(node, ast.Assign):
                if any(_is_stop_reason_ref(t) for t in node.targets):
                    candidates.extend(_str_constants(node.value))
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                if _is_stop_reason_ref(node.target):
                    candidates.extend(_str_constants(node.value))
        return [
            self.violation(
                ctx, path, lineno,
                f"stop_reason literal {value!r} is not in STOP_REASONS"
                " (repro.engine.results) — use the STOP_* constants",
            )
            for lineno, value in candidates
            if value not in valid
        ]
