"""Wire-schema pass: encoder/decoder key parity against declared manifests.

Every versioned wire format (checkpoint v1 and its quarantine residue,
the run-report, the inspector frames, the worker snapshot) declares a
``WIRE_MANIFESTS`` table in its defining module: the format/version
stamps, the frozen top-level key set, and which functions encode and
decode the document. This pass derives — through the
:class:`~tools.reprolint.model.ProgramModel` dict-key dataflow — the key
set each encoder actually writes and each decoder actually reads, and
requires:

* every encoder writes only declared keys, and stamps ``format`` and
  ``version``;
* the encoders together write *exactly* the declared key set (a key no
  encoder emits is dead schema; a key outside the manifest is silent
  drift);
* every decoder reads only declared keys, and the decoders together
  check the ``format``/``version`` stamps;
* an unresolvable construct (a ``**`` spread the dataflow cannot follow,
  a non-literal key) is itself a violation — the manifest is only a
  guarantee if the document stays statically visible.

``reprolint --diff BASE`` adds the version-bump discipline on top:
:func:`diff_violations` compares each manifest's key set against the
merge-base revision and fails any change that did not bump the format's
version (see docs/static-analysis.md).
"""

from __future__ import annotations

import ast
from pathlib import Path

from tools.reprolint import LintContext, LintPass, Violation, register

SCOPES = (
    "src/repro/engine/checkpoint.py",
    "src/repro/obs/report.py",
    "src/repro/obs/wire.py",
)

#: Manifest names each live module must declare (live-tree mode only —
#: fixtures declare whatever they exercise).
REQUIRED_MANIFESTS = {
    "src/repro/engine/checkpoint.py": {"checkpoint", "quarantine-residue"},
    "src/repro/obs/report.py": {"run-report"},
    "src/repro/obs/wire.py": {"inspect-frame", "worker-snapshot"},
}

_MANIFEST_FIELDS = ("format", "version", "keys", "encoders", "decoders")


def _module_constants(tree: ast.Module) -> dict[str, object]:
    consts: dict[str, object] = {}
    for node in tree.body:
        if isinstance(node, ast.Assign) and isinstance(node.value, ast.Constant):
            if isinstance(node.value.value, (str, int)):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        consts[target.id] = node.value.value
    return consts


def _resolve(consts: dict[str, object], node: ast.AST) -> object | None:
    if isinstance(node, ast.Constant):
        return node.value
    if isinstance(node, ast.Name):
        return consts.get(node.id)
    return None


def _str_tuple(node: ast.AST) -> tuple[str, ...] | None:
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    values = []
    for elt in node.elts:
        if not (isinstance(elt, ast.Constant) and isinstance(elt.value, str)):
            return None
        values.append(elt.value)
    return tuple(values)


def manifest_signatures(tree: ast.Module) -> dict[str, dict]:
    """Parse a module's ``WIRE_MANIFESTS``: name -> parsed entry.

    Each entry holds ``format``/``version`` (resolved through module-level
    constants, None when unresolvable), ``keys``/``encoders``/``decoders``
    (tuples of strings, None when not literal tuples), and ``line`` (the
    entry's location). Shared by the lint pass and the ``--diff``
    version-bump check, which parses the merge-base revision with the
    same function.
    """
    consts = _module_constants(tree)
    table: ast.Dict | None = None
    for node in tree.body:
        targets = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if targets and isinstance(value, ast.Dict):
            for target in targets:
                if isinstance(target, ast.Name) and target.id == "WIRE_MANIFESTS":
                    table = value
    if table is None:
        return {}
    entries: dict[str, dict] = {}
    for key, value in zip(table.keys, table.values):
        if not (isinstance(key, ast.Constant) and isinstance(key.value, str)):
            continue
        entry: dict = {"line": key.lineno, "format": None, "version": None,
                       "keys": None, "encoders": None, "decoders": None}
        if isinstance(value, ast.Dict):
            for fkey, fvalue in zip(value.keys, value.values):
                if not (isinstance(fkey, ast.Constant)
                        and fkey.value in _MANIFEST_FIELDS):
                    continue
                if fkey.value in ("format", "version"):
                    entry[fkey.value] = _resolve(consts, fvalue)
                else:
                    entry[fkey.value] = _str_tuple(fvalue)
        entries[key.value] = entry
    return entries


@register
class WireSchemaPass(LintPass):
    name = "wire_schema"
    description = (
        "encoder-written and decoder-read keys of every versioned wire"
        " format must match its declared WIRE_MANIFESTS entry"
    )

    def run(self, ctx: LintContext) -> list[Violation]:
        violations: list[Violation] = []
        for path in ctx.files(*SCOPES):
            violations.extend(self._check_file(ctx, path))
        return violations

    def _check_file(self, ctx: LintContext, path: Path) -> list[Violation]:
        tree = ctx.tree(path)
        model = ctx.program_model()
        mod = model.module(path)
        violations: list[Violation] = []

        entries = manifest_signatures(tree)
        if not ctx.fixture_mode:
            required = REQUIRED_MANIFESTS.get(ctx.rel(path), set())
            for name in sorted(required - set(entries)):
                violations.append(self.violation(
                    ctx, path, 1,
                    f"module must declare wire manifest {name!r} in"
                    " WIRE_MANIFESTS",
                ))
        for name, entry in sorted(entries.items()):
            violations.extend(
                self._check_manifest(ctx, path, mod, name, entry)
            )
        return violations

    def _check_manifest(self, ctx: LintContext, path: Path, mod,
                        name: str, entry: dict) -> list[Violation]:
        model = ctx.program_model()
        line = entry["line"]
        violations: list[Violation] = []
        if not isinstance(entry["format"], str):
            violations.append(self.violation(
                ctx, path, line,
                f"manifest {name!r}: 'format' must resolve to a string"
                " constant",
            ))
        if not isinstance(entry["version"], int):
            violations.append(self.violation(
                ctx, path, line,
                f"manifest {name!r}: 'version' must resolve to an integer"
                " constant",
            ))
        for field in ("keys", "encoders", "decoders"):
            if entry[field] is None:
                violations.append(self.violation(
                    ctx, path, line,
                    f"manifest {name!r}: {field!r} must be a literal tuple"
                    " of strings",
                ))
        if violations:
            return violations
        keys = set(entry["keys"])
        for stamp in ("format", "version"):
            if stamp not in keys:
                violations.append(self.violation(
                    ctx, path, line,
                    f"manifest {name!r}: key set must include the"
                    f" {stamp!r} stamp",
                ))

        written_union: set[str] = set()
        for spec in entry["encoders"]:
            flow = model.written_keys(mod, spec)
            for pline, problem in flow.problems:
                violations.append(self.violation(
                    ctx, path, pline,
                    f"manifest {name!r}: encoder {spec!r}: {problem}",
                ))
            written_union |= flow.keys
            where = flow.line or line
            for extra in sorted(flow.keys - keys):
                violations.append(self.violation(
                    ctx, path, where,
                    f"encoder {spec!r} writes key {extra!r} that is not in"
                    f" the {name!r} manifest (format"
                    f" {entry['format']!r} v{entry['version']}) — add it"
                    " to WIRE_MANIFESTS and bump the version",
                ))
            if flow.keys and not {"format", "version"} <= flow.keys:
                violations.append(self.violation(
                    ctx, path, where,
                    f"encoder {spec!r} does not stamp format/version on"
                    f" the {name!r} document",
                ))
        for missing in sorted(keys - written_union):
            violations.append(self.violation(
                ctx, path, line,
                f"manifest {name!r} (format {entry['format']!r}"
                f" v{entry['version']}) declares key {missing!r} that no"
                " listed encoder writes — dropped encoder key or stale"
                " manifest; changing the key set requires a version bump",
            ))

        read_union: set[str] = set()
        for spec in entry["decoders"]:
            flow = model.read_keys(mod, spec)
            for pline, problem in flow.problems:
                violations.append(self.violation(
                    ctx, path, pline,
                    f"manifest {name!r}: decoder {spec!r}: {problem}",
                ))
            read_union |= flow.keys
            where = flow.line or line
            for extra in sorted(flow.keys - keys):
                violations.append(self.violation(
                    ctx, path, where,
                    f"decoder {spec!r} reads key {extra!r} that is not in"
                    f" the {name!r} manifest (format"
                    f" {entry['format']!r} v{entry['version']}) — the"
                    " encoders never write it",
                ))
        if entry["decoders"] and not {"format", "version"} <= read_union:
            violations.append(self.violation(
                ctx, path, line,
                f"manifest {name!r}: no listed decoder checks the"
                " format/version stamps — a foreign document would be"
                " accepted silently",
            ))
        return violations


def diff_violations(ctx: LintContext, path: Path, old_tree: ast.Module,
                    new_tree: ast.Module) -> list[Violation]:
    """Version-bump discipline between two revisions of one module.

    For every manifest present in both trees: a changed key set with an
    unchanged version is a violation (published documents of that version
    now disagree about their schema). A manifest that disappeared is also
    flagged — formats are retired by version, not by deletion.
    """
    gate = WireSchemaPass()
    old = manifest_signatures(old_tree)
    new = manifest_signatures(new_tree)
    violations: list[Violation] = []
    for name, old_entry in sorted(old.items()):
        new_entry = new.get(name)
        if new_entry is None:
            violations.append(gate.violation(
                ctx, path, 1,
                f"wire manifest {name!r} was removed; formats are retired"
                " by bumping the version, not by deleting the manifest",
            ))
            continue
        old_keys, new_keys = old_entry["keys"], new_entry["keys"]
        if old_keys is None or new_keys is None:
            continue
        if set(old_keys) != set(new_keys) and (
            old_entry["version"] == new_entry["version"]
        ):
            added = sorted(set(new_keys) - set(old_keys))
            removed = sorted(set(old_keys) - set(new_keys))
            detail = "; ".join(
                part for part in (
                    f"added {', '.join(map(repr, added))}" if added else "",
                    f"removed {', '.join(map(repr, removed))}" if removed
                    else "",
                ) if part
            )
            violations.append(gate.violation(
                ctx, path, new_entry["line"],
                f"manifest {name!r} changed its key set ({detail}) without"
                f" bumping the version (still"
                f" {new_entry['version']!r}) — readers of format"
                f" {new_entry['format']!r} cannot tell the documents"
                " apart",
            ))
    return violations
