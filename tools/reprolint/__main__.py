"""CLI entry point: ``python -m tools.reprolint``."""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from tools.reprolint import LintContext, load_passes, run_passes


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="AST-based invariant passes for this repository",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="lint only these files (fixture mode); default: the live tree",
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated pass names to run (default: all)",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_passes",
        help="print the pass catalog and exit",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="machine-readable output (one object with all violations)",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    registry = load_passes()
    if args.list_passes:
        if args.json:
            print(json.dumps(
                {name: p.description for name, p in registry.items()},
                indent=2,
            ))
        else:
            width = max(len(name) for name in registry)
            for name, p in registry.items():
                print(f"{name:<{width}}  {p.description}")
        return 0

    select = None
    if args.select:
        select = [s.strip() for s in args.select.split(",") if s.strip()]
    explicit = None
    if args.paths:
        explicit = [Path(p) for p in args.paths]
        missing = [p for p in explicit if not p.is_file()]
        if missing:
            print(
                f"error: no such file: {', '.join(map(str, missing))}",
                file=sys.stderr,
            )
            return 2

    ctx = LintContext(explicit_paths=explicit)

    def narrate(name: str, found) -> None:
        if not args.json:
            status = "ok" if not found else f"{len(found)} violation(s)"
            print(f"reprolint: {name}: {status}", file=sys.stderr)

    try:
        violations = run_passes(ctx, select=select, on_pass=narrate)
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2

    if args.json:
        print(json.dumps(
            {
                "passes": list(select or registry),
                "violations": [v.as_dict() for v in violations],
                "ok": not violations,
            },
            indent=2,
        ))
    else:
        for violation in violations:
            print(violation.render())
        if violations:
            print(f"reprolint: {len(violations)} violation(s)")
        else:
            print("reprolint: clean")
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
