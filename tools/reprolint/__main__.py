"""CLI entry point: ``python -m tools.reprolint``."""

from __future__ import annotations

import argparse
import ast
import json
import subprocess
import sys
from pathlib import Path

from tools.reprolint import (
    LintContext,
    Violation,
    load_passes,
    run_passes,
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="reprolint",
        description="AST-based invariant passes for this repository",
    )
    parser.add_argument(
        "paths", nargs="*",
        help="lint only these files (fixture mode); default: the live tree",
    )
    parser.add_argument(
        "--select", default=None,
        help="comma-separated pass names to run (default: all)",
    )
    parser.add_argument(
        "--list", action="store_true", dest="list_passes",
        help="print the pass catalog and exit",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="machine-readable output (one object with all violations)",
    )
    parser.add_argument(
        "--sarif", action="store_true",
        help="SARIF 2.1.0 output (for code-scanning upload)",
    )
    parser.add_argument(
        "--diff", metavar="BASE", default=None,
        help="version-bump discipline only: compare each WIRE_MANIFESTS"
             " entry against the git merge-base with BASE and fail key-set"
             " changes that did not bump the format's version",
    )
    return parser


def diff_violations(ctx: LintContext, base: str) -> list[Violation]:
    """The ``--diff`` check: wire-manifest version-bump discipline
    against the merge-base with ``base``.

    Each wire-format module is compared to its merge-base revision via
    :func:`tools.reprolint.passes.wire_schema.diff_violations`; files
    absent at the base (new formats) are skipped — a brand-new manifest
    carries whatever version it likes.
    """
    from tools.reprolint.passes import wire_schema

    merge_base = subprocess.run(
        ["git", "merge-base", base, "HEAD"],
        cwd=ctx.root, capture_output=True, text=True,
    )
    # A shallow clone (or a literal ref like HEAD~1) may have no
    # computable merge-base; fall back to comparing against BASE itself.
    rev = merge_base.stdout.strip() if merge_base.returncode == 0 else base
    violations: list[Violation] = []
    for rel in wire_schema.SCOPES:
        path = ctx.root / rel
        if not path.is_file():
            continue
        shown = subprocess.run(
            ["git", "show", f"{rev}:{rel}"],
            cwd=ctx.root, capture_output=True, text=True,
        )
        if shown.returncode != 0:
            continue  # file did not exist at the base revision
        old_tree = ast.parse(shown.stdout, filename=f"{rev}:{rel}")
        violations.extend(
            wire_schema.diff_violations(ctx, path, old_tree, ctx.tree(path))
        )
    return violations


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    registry = load_passes()
    if args.list_passes:
        if args.json:
            print(json.dumps(
                {name: p.description for name, p in registry.items()},
                indent=2,
            ))
        else:
            width = max(len(name) for name in registry)
            for name, p in registry.items():
                print(f"{name:<{width}}  {p.description}")
        return 0
    if args.diff and args.paths:
        print(
            "error: --diff lints the live tree against a git base and"
            " cannot be combined with explicit paths",
            file=sys.stderr,
        )
        return 2

    select = None
    if args.select:
        select = [s.strip() for s in args.select.split(",") if s.strip()]
    explicit = None
    if args.paths:
        explicit = [Path(p) for p in args.paths]
        missing = [p for p in explicit if not p.is_file()]
        if missing:
            print(
                f"error: no such file: {', '.join(map(str, missing))}",
                file=sys.stderr,
            )
            return 2

    ctx = LintContext(explicit_paths=explicit)

    def narrate(name: str, found) -> None:
        if not args.json and not args.sarif:
            status = "ok" if not found else f"{len(found)} violation(s)"
            print(f"reprolint: {name}: {status}", file=sys.stderr)

    if args.diff:
        rev_check = subprocess.run(
            ["git", "rev-parse", "--verify", f"{args.diff}^{{commit}}"],
            cwd=ctx.root, capture_output=True, text=True,
        )
        if rev_check.returncode != 0:
            print(
                f"error: --diff base {args.diff!r} is not a resolvable"
                " git revision",
                file=sys.stderr,
            )
            return 2
        violations = diff_violations(ctx, args.diff)
        narrate("wire_schema(diff)", violations)
    else:
        try:
            violations = run_passes(ctx, select=select, on_pass=narrate)
        except KeyError as exc:
            print(f"error: {exc.args[0]}", file=sys.stderr)
            return 2

    if args.sarif:
        from tools.reprolint.sarif import sarif_report

        print(json.dumps(sarif_report(registry, violations), indent=2))
    elif args.json:
        print(json.dumps(
            {
                "passes": list(select or registry),
                "violations": [v.as_dict() for v in violations],
                "ok": not violations,
            },
            indent=2,
        ))
    else:
        for violation in violations:
            print(violation.render())
        if violations:
            print(f"reprolint: {len(violations)} violation(s)")
        else:
            print("reprolint: clean")
    return 1 if violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
